//! # repdir
//!
//! Umbrella crate for the `repdir` workspace — a full reproduction of
//! Daniels & Spector, *An Algorithm for Replicated Directories* (PODC
//! 1983): weighted-voting replication for directories with per-range (gap)
//! version numbers.
//!
//! Each subsystem lives in its own crate, re-exported here under a module
//! of the same name:
//!
//! | module | contents |
//! |--------|----------|
//! | [`obs`] | zero-dependency metrics and tracing: counters, histograms, EWMAs, spans |
//! | [`core`] | keys/versions/values, the gap-versioned map, the suite algorithm |
//! | [`rangelock`] | Figure-7 range locking, two-phase locking, deadlock detection |
//! | [`txn`] | transaction ids, lifecycle, undo |
//! | [`storage`] | simulated disk, write-ahead log, recovery, gap-versioned B-tree |
//! | [`net`] | simulated network with latency/drops/partitions and RPC |
//! | [`replica`] | the transactional representative server and clients |
//! | [`repair`] | anti-entropy: summary trees, bucket merge planning, the background repairer |
//! | [`snapshot`] | streamed full-state catch-up: resumable chunked snapshot transfer and guarded install |
//! | [`baselines`] | unanimous update, primary copy, Gifford file voting, static partitions, naive per-entry versions |
//! | [`workload`] | simulation driver, statistics, availability and locality experiments |
//!
//! ## Quickstart
//!
//! ```
//! use repdir::core::suite::{DirSuite, SuiteConfig};
//! use repdir::core::{Key, Value};
//!
//! let mut dir = DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2)?, 7)?;
//! dir.insert(&Key::from("motd"), &Value::from("hello"))?;
//! assert!(dir.lookup(&Key::from("motd"))?.present);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use repdir_baselines as baselines;
pub use repdir_core as core;
pub use repdir_net as net;
pub use repdir_obs as obs;
pub use repdir_rangelock as rangelock;
pub use repdir_repair as repair;
pub use repdir_replica as replica;
pub use repdir_snapshot as snapshot;
pub use repdir_storage as storage;
pub use repdir_txn as txn;
pub use repdir_workload as workload;
