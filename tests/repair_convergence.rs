//! Anti-entropy convergence property: partition an arbitrary member during
//! a random workload, heal, run the repairers to quiescence — and every
//! representative must be byte-identical to the others and agree with a
//! model of the directory, without spending a single quorum collection on
//! the repair itself.
//!
//! The soundness claim under test is the paper's version rule: a version
//! number pins the exact content of an entry or gap, so a representative
//! can adopt a peer's strictly-newer entry (or gap) pointwise. Repair here
//! runs purely against representative-level APIs ([`RepTarget`] /
//! [`LocalRepairPeer`]) — no `DirSuite`, no quorum, no votes — which is the
//! structural form of the "zero quorum collections" requirement.

use repdir::core::rng::StdRng;
use repdir::core::suite::SuiteConfig;
use repdir::core::{Key, SuiteError, UserKey, Value};
use repdir::repair::Repairer;
use repdir::replica::{LocalRepairPeer, RepTarget, ReplicatedDirectory};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One random workload step against the directory and the model. During
/// the partition the suite keeps answering from the two live members
/// (R = W = 2 of 3), so every step must succeed.
fn step(
    dir: &ReplicatedDirectory,
    model: &mut BTreeMap<u8, u8>,
    rng: &mut StdRng,
) -> Result<(), SuiteError> {
    let k = rng.gen_range(0u8..24);
    let key = Key::User(UserKey::from_u64(k as u64));
    let v: u8 = rng.gen();
    match rng.gen_range(0..4u8) {
        0 if !model.contains_key(&k) => dir.insert(&key, &Value::from(vec![v])).map(|_| {
            model.insert(k, v);
        }),
        1 if model.contains_key(&k) => dir.update(&key, &Value::from(vec![v])).map(|_| {
            model.insert(k, v);
        }),
        2 if model.contains_key(&k) => dir.delete(&key).map(|_| {
            model.remove(&k);
        }),
        _ => dir.lookup(&key).map(|out| {
            assert_eq!(out.present, model.contains_key(&k));
        }),
    }
}

fn run_convergence(seed: u64, ops_before: u32, ops_during: u32) {
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: BTreeMap<u8, u8> = BTreeMap::new();

    // Healthy prefix: all three representatives absorb quorum writes.
    for _ in 0..ops_before {
        step(&dir, &mut model, &mut rng).expect("op with all members up");
    }

    // Partition an arbitrary member; the workload continues through the
    // surviving write quorum and the victim silently goes stale.
    let victim = rng.gen_range(0..3usize);
    dir.reps()[victim].set_available(false);
    for _ in 0..ops_during {
        step(&dir, &mut model, &mut rng).expect("op with one member partitioned");
    }
    dir.reps()[victim].set_available(true);

    let reps = dir.reps();
    let diverged = reps[victim].snapshot() != reps[(victim + 1) % 3].snapshot();

    // Heal by anti-entropy alone: each representative repairs from its two
    // peers through representative-level APIs. Nothing here touches a
    // DirSuite, so no quorum is collected for any of it.
    let rounds_before = repdir::obs::global().counter("repair.rounds").get();
    let repairers: Vec<Repairer> = (0..3)
        .map(|i| {
            let peers: Vec<Box<dyn repdir::repair::RepairPeer>> = (0..3)
                .filter(|&j| j != i)
                .map(|j| {
                    Box::new(LocalRepairPeer::new(Arc::clone(&reps[j])))
                        as Box<dyn repdir::repair::RepairPeer>
                })
                .collect();
            Repairer::new(Arc::new(RepTarget::new(Arc::clone(&reps[i]))), peers)
        })
        .collect();
    let mut passes = 0;
    loop {
        let mut applied = 0u64;
        let mut errors = 0u64;
        for r in &repairers {
            let sweep = r.run_sweep();
            applied += sweep.applied.total();
            errors += sweep.errors;
        }
        if errors == 0 && applied == 0 {
            break;
        }
        passes += 1;
        assert!(passes < 16, "seed {seed:#x}: repair failed to quiesce");
    }
    if diverged {
        assert!(
            passes > 0,
            "seed {seed:#x}: divergence healed without repair?"
        );
    }
    assert!(
        repdir::obs::global().counter("repair.rounds").get() > rounds_before,
        "repair rounds were not accounted"
    );

    // Every representative is byte-identical: same entries, same versions,
    // same gap versions.
    let canonical = reps[0].snapshot();
    for (i, rep) in reps.iter().enumerate().skip(1) {
        assert_eq!(
            canonical,
            rep.snapshot(),
            "seed {seed:#x}: representative {i} differs after repair"
        );
    }
    // And their summary trees agree, so a further round finds nothing.
    let root = reps[0].summary_children(0, 0).unwrap();
    for rep in reps.iter().skip(1) {
        assert_eq!(root, rep.summary_children(0, 0).unwrap());
    }

    // The converged state matches the model through the normal read path.
    let listed = dir.scan().expect("final scan");
    let expect: Vec<(UserKey, Value)> = model
        .iter()
        .map(|(mk, mv)| (UserKey::from_u64(*mk as u64), Value::from(vec![*mv])))
        .collect();
    assert_eq!(listed, expect, "seed {seed:#x}: converged state != model");
}

#[test]
fn partitioned_member_converges_by_anti_entropy() {
    run_convergence(0x0009_E9A1, 60, 60);
}

#[test]
fn convergence_holds_across_random_histories() {
    for seed in 0..12u64 {
        run_convergence(0xA11_0000 + seed, 40, 40);
    }
}

#[test]
fn repair_is_idempotent_on_identical_replicas() {
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 0x1DE).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = BTreeMap::new();
    for _ in 0..40 {
        step(&dir, &mut model, &mut rng).expect("healthy op");
    }
    let reps = dir.reps();
    let repairer = Repairer::new(
        Arc::new(RepTarget::new(Arc::clone(&reps[0]))),
        vec![
            Box::new(LocalRepairPeer::new(Arc::clone(&reps[1]))),
            Box::new(LocalRepairPeer::new(Arc::clone(&reps[2]))),
        ],
    );
    let before = reps[0].snapshot();
    let sweep = repairer.run_sweep();
    assert_eq!(sweep.errors, 0);
    assert_eq!(
        sweep.applied.total(),
        0,
        "repair changed an already-converged replica"
    );
    assert_eq!(before, reps[0].snapshot());
}
