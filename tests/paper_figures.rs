//! Integration tests replaying every worked figure of the paper against
//! the public API.

use repdir::core::suite::{DirSuite, FixedPolicy, QuorumPolicy, SuiteConfig};
use repdir::core::{GapMap, Key, LocalRep, RepId, Value, Version};

fn fixed(order: &[usize]) -> Box<dyn QuorumPolicy + Send> {
    Box::new(FixedPolicy::with_order(order.to_vec()))
}

fn suite_322(order: &[usize]) -> DirSuite<LocalRep> {
    let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
    DirSuite::new(
        clients,
        SuiteConfig::symmetric(3, 2, 2).expect("3-2-2"),
        fixed(order),
    )
    .expect("suite")
}

fn k(s: &str) -> Key {
    Key::from(s)
}
fn val(s: &str) -> Value {
    Value::from(s)
}

/// Figure 1's representative layout arises from plain inserts: entries at
/// version 1, gaps at version 0.
#[test]
fn figure1_layout() {
    let mut suite = suite_322(&[0, 1, 2]);
    suite.insert(&k("a"), &val("A")).unwrap();
    suite.insert(&k("c"), &val("C")).unwrap();
    for i in [0usize, 1] {
        let snap: GapMap = suite.member(i).snapshot();
        assert_eq!(snap.version_of(&k("a")), Version::new(1));
        assert_eq!(snap.version_of(&k("c")), Version::new(1));
        // Every gap at version 0: below a, between a and c, above c.
        assert_eq!(snap.version_of(&k("0")), Version::ZERO);
        assert_eq!(snap.version_of(&k("b")), Version::ZERO);
        assert_eq!(snap.version_of(&k("z")), Version::ZERO);
        snap.check_invariants().unwrap();
    }
}

/// Figure 2 + Figure 4: inserting "b" into representatives A and B splits
/// the (a, c) gap; b gets version gap+1 = 1; both half-gaps keep version 0.
#[test]
fn figure2_and_4_insert_b() {
    let mut suite = suite_322(&[0, 1, 2]);
    suite.insert(&k("a"), &val("A")).unwrap();
    suite.insert(&k("c"), &val("C")).unwrap();
    let out = suite.insert(&k("b"), &val("B")).unwrap();
    assert_eq!(out.version, Version::new(1));
    assert_eq!(out.quorum, vec![RepId(0), RepId(1)]);
    let a = suite.member(0).snapshot();
    assert_eq!(a.version_of(&k("b")), Version::new(1));
    assert_eq!(a.version_of(&k("aa")), Version::ZERO); // gap (a, b)
    assert_eq!(a.version_of(&k("bb")), Version::ZERO); // gap (b, c)
                                                       // C never saw b.
    assert!(!suite.member(2).snapshot().contains(&k("b")));
}

/// The Figure 3 ambiguity, resolved: after deleting b via {B, C}, the read
/// quorum {A, C} must answer "absent" even though A still holds the ghost.
#[test]
fn figure3_and_5_delete_ambiguity_resolved() {
    let mut suite = suite_322(&[0, 1, 2]);
    suite.insert(&k("a"), &val("A")).unwrap();
    suite.insert(&k("c"), &val("C")).unwrap();
    suite.insert(&k("b"), &val("B")).unwrap();

    suite.set_policy(fixed(&[1, 2, 0]));
    let del = suite.delete(&k("b")).unwrap();
    assert_eq!(del.predecessor, k("a"));
    assert_eq!(del.successor, k("c"));
    assert_eq!(
        del.gap_version,
        Version::new(2),
        "Figure 5: gap (a, c) at v2"
    );

    // Ghost of b remains physically on A...
    assert!(suite.member(0).snapshot().contains(&k("b")));
    // ...but every read quorum answers correctly.
    for order in [[0usize, 1, 2], [0, 2, 1], [1, 2, 0], [2, 0, 1]] {
        suite.set_policy(fixed(&order));
        let out = suite.lookup(&k("b")).unwrap();
        assert!(!out.present, "quorum order {order:?}");
    }

    // Figure 5's B and C states: gap (a, c) at version 2.
    for i in [1usize, 2] {
        let snap = suite.member(i).snapshot();
        assert!(!snap.contains(&k("b")));
        assert_eq!(snap.version_of(&k("b")), Version::new(2));
    }
}

/// Figures 10-11: the delete of "a" must locate the real successor "bb"
/// through the ghost of "b", copy it to C, and coalesce the ghost away.
#[test]
fn figures10_11_ghosts_and_real_successor() {
    let mut suite = suite_322(&[0, 1, 2]);
    suite.insert(&k("a"), &val("A")).unwrap(); // A, B
    suite.insert(&k("b"), &val("B")).unwrap(); // A, B
    suite.set_policy(fixed(&[1, 2, 0]));
    suite.delete(&k("b")).unwrap(); // coalesce on B, C; ghost stays on A
    suite.set_policy(fixed(&[0, 1, 2]));
    suite.insert(&k("bb"), &val("BB")).unwrap(); // A, B

    // Figure 10 preconditions.
    assert!(suite.member(0).snapshot().contains(&k("b")), "ghost on A");
    assert!(
        !suite.member(2).snapshot().contains(&k("bb")),
        "bb absent from C"
    );

    // Delete "a" with write quorum {A, C} (Figure 11).
    suite.set_policy(fixed(&[0, 2, 1]));
    let del = suite.delete(&k("a")).unwrap();
    assert_eq!(del.predecessor, Key::Low);
    assert_eq!(del.successor, k("bb"));
    assert_eq!(del.copies_inserted, 1, "bb copied to C");
    assert_eq!(del.ghosts_deleted, 1, "ghost of b eliminated from A");
    assert!(del.succ_steps >= 2, "search had to step past the ghost");

    let a = suite.member(0).snapshot();
    assert!(!a.contains(&k("a")));
    assert!(!a.contains(&k("b")), "Figure 11: ghost gone");
    assert!(a.contains(&k("bb")));
    let c = suite.member(2).snapshot();
    assert!(c.contains(&k("bb")), "Figure 11: bb copied to C");
    assert!(!c.contains(&k("a")));

    // And the suite still answers correctly from every quorum.
    for order in [[0usize, 1, 2], [1, 2, 0], [0, 2, 1]] {
        suite.set_policy(fixed(&order));
        assert!(!suite.lookup(&k("a")).unwrap().present);
        assert!(!suite.lookup(&k("b")).unwrap().present);
        assert!(suite.lookup(&k("bb")).unwrap().present);
    }
}

/// Figure 8's tie-breaking: DirSuiteLookup returns the reply with the
/// largest version across the quorum, for both present and absent replies.
#[test]
fn figure8_highest_version_wins() {
    let mut suite = suite_322(&[0, 1, 2]);
    suite.insert(&k("x"), &val("v1")).unwrap(); // A, B at v1
    suite.set_policy(fixed(&[1, 2, 0]));
    suite.update(&k("x"), &val("v2")).unwrap(); // B, C at v2
                                                // Quorum {A, C}: A has v1, C has v2 — the v2 value must win.
    suite.set_policy(fixed(&[0, 2, 1]));
    let out = suite.lookup(&k("x")).unwrap();
    assert_eq!(out.version, Version::new(2));
    assert_eq!(out.value, Some(val("v2")));
}

/// Figure 9: insert uses lookup's version + 1, so versions never regress
/// across delete/reinsert cycles on any representative.
#[test]
fn figure9_versions_monotone_across_reincarnation() {
    let mut suite = suite_322(&[0, 1, 2]);
    suite.insert(&k("x"), &val("1")).unwrap(); // v1
    suite.delete(&k("x")).unwrap(); // gap v2
    let out = suite.insert(&k("x"), &val("2")).unwrap();
    assert_eq!(out.version, Version::new(3));
    suite.delete(&k("x")).unwrap(); // gap v4
    let out = suite.insert(&k("x"), &val("3")).unwrap();
    assert_eq!(out.version, Version::new(5));
}

/// Figure 16 (§5): the locality configuration keeps all inquiries local
/// and balances the single non-local write.
#[test]
fn figure16_locality() {
    let report = repdir::workload::run_locality(3000, 0x16);
    assert_eq!(report.remote_read_rpcs, 0);
    assert!(report.local_read_rpcs > 0);
    let total_remote: u64 = report.remote_write_per_member.iter().sum();
    assert!(total_remote > 0);
    for pair in [[0usize, 1], [2, 3]] {
        let a = report.remote_write_per_member[pair[0]];
        let b = report.remote_write_per_member[pair[1]];
        let hi = a.max(b) as f64;
        let lo = a.min(b).max(1) as f64;
        assert!(hi / lo < 1.3, "remote writes unbalanced: {a} vs {b}");
    }
}
