//! Integration tests for weighted votes and weak representatives (§2) at
//! the suite level.

use repdir::core::suite::{DirSuite, FixedPolicy, QuorumPolicy, RandomPolicy, SuiteConfig};
use repdir::core::{Key, LocalRep, QuorumKind, RepId, SuiteError, Value};
use repdir::workload::weighted_availability;

fn fixed(order: &[usize]) -> Box<dyn QuorumPolicy + Send> {
    Box::new(FixedPolicy::with_order(order.to_vec()))
}

fn suite(
    votes: Vec<u32>,
    r: u32,
    w: u32,
    policy: Box<dyn QuorumPolicy + Send>,
) -> DirSuite<LocalRep> {
    let clients: Vec<LocalRep> = (0..votes.len())
        .map(|i| LocalRep::new(RepId(i as u32)))
        .collect();
    DirSuite::new(clients, SuiteConfig::new(votes, r, w).unwrap(), policy).unwrap()
}

#[test]
fn heavy_representative_dominates_quorums() {
    // Votes [2,1,1], R=2, W=3.
    let mut dir = suite(vec![2, 1, 1], 2, 3, fixed(&[0, 1, 2]));
    dir.insert(&Key::from("x"), &Value::from("1")).unwrap();
    let out = dir.lookup(&Key::from("x")).unwrap();
    assert_eq!(out.quorum, vec![RepId(0)], "2-vote member alone reads");

    // Without the heavy member, both light members together form R.
    dir.member(0).set_available(false);
    let out = dir.lookup(&Key::from("x"));
    // The write quorum was {A, B} (votes 3); reading {B, C} must still see
    // the entry because every read quorum intersects every write quorum by
    // votes — B is the intersection.
    let out = out.unwrap();
    assert!(out.present);
    assert_eq!(out.quorum, vec![RepId(1), RepId(2)]);

    // Writes cannot reach W=3 with only 2 votes up.
    let err = dir.update(&Key::from("x"), &Value::from("2")).unwrap_err();
    assert_eq!(
        err,
        SuiteError::QuorumUnavailable {
            kind: QuorumKind::Write,
            needed: 3,
            gathered: 2
        }
    );
}

#[test]
fn full_workload_on_weighted_suite_stays_correct() {
    let mut dir = suite(vec![2, 1, 1], 2, 3, Box::new(RandomPolicy::new(5)));
    let mut model = std::collections::BTreeMap::new();
    for i in 0..120u64 {
        let key = Key::from(format!("k{:02}", i % 20).as_str());
        match i % 3 {
            0 => {
                if model.insert(i % 20, i).is_some() {
                    dir.update(&key, &Value::from(i.to_string().as_str()))
                        .unwrap();
                } else {
                    dir.insert(&key, &Value::from(i.to_string().as_str()))
                        .unwrap();
                }
            }
            1 => {
                let out = dir.lookup(&key).unwrap();
                assert_eq!(out.present, model.contains_key(&(i % 20)));
            }
            _ => {
                if model.remove(&(i % 20)).is_some() {
                    dir.delete(&key).unwrap();
                }
            }
        }
    }
    for k in 0..20u64 {
        let key = Key::from(format!("k{k:02}").as_str());
        assert_eq!(dir.lookup(&key).unwrap().present, model.contains_key(&k));
    }
}

#[test]
fn weak_representative_is_invisible_to_quorums_but_hears_writes() {
    let mut dir = suite(vec![1, 1, 1, 0], 2, 2, fixed(&[3, 0, 1, 2]));
    dir.set_write_through_weak(true);
    // Policy prefers the weak member first; quorum collection must skip it.
    let out = dir.insert(&Key::from("a"), &Value::from("A")).unwrap();
    assert!(!out.quorum.contains(&RepId(3)));
    assert_eq!(out.quorum.len(), 2);
    // But the weak member received the write as a hint.
    use repdir::core::RepClient;
    assert!(dir.member(3).lookup(&Key::from("a")).unwrap().is_present());

    // Weak member failure never affects availability.
    dir.member(3).set_available(false);
    dir.update(&Key::from("a"), &Value::from("A2")).unwrap();
    assert!(dir.lookup(&Key::from("a")).unwrap().present);
}

#[test]
fn weighted_availability_matches_empirical_quorum_formation() {
    // For votes [2,1,1] with quorum 3: exactly the subsets {A,B}, {A,C},
    // {A,B,C}, {B,C}+A... enumerate by hand: need >= 3 votes:
    // {A,B}=3, {A,C}=3, {A,B,C}=4 — B+C alone = 2 is not enough.
    // P = p^2(1-p) + p^2(1-p) + p^3 = 2p^2 - p^3.
    for p in [0.5f64, 0.9] {
        let expect = 2.0 * p * p - p * p * p;
        let got = weighted_availability(&[2, 1, 1], 3, p);
        assert!((got - expect).abs() < 1e-12, "p={p}: {got} vs {expect}");
    }
}

#[test]
fn votes_and_quorums_engage_the_paper_rule_not_member_counts() {
    // 5 members but a single 3-vote heavyweight: R=W=4 means the heavy
    // member plus any light one — intersection is guaranteed through votes.
    let mut dir = suite(vec![3, 1, 1, 1, 1], 4, 4, Box::new(RandomPolicy::new(9)));
    dir.insert(&Key::from("q"), &Value::from("v")).unwrap();
    for _ in 0..20 {
        assert!(dir.lookup(&Key::from("q")).unwrap().present);
    }
    // The heavyweight down: max reachable votes = 4 == W, still fine...
    dir.member(0).set_available(false);
    dir.update(&Key::from("q"), &Value::from("v2")).unwrap();
    // ...but any further loss kills both quorums.
    dir.member(1).set_available(false);
    assert!(matches!(
        dir.lookup(&Key::from("q")),
        Err(SuiteError::QuorumUnavailable { .. })
    ));
}
