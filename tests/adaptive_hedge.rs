//! Equivalence tests for adaptive wave provisioning and hedged reads.
//!
//! The adaptive executor changes *how many* candidates a quorum wave pings
//! and *which* straggler a hedge duplicates — never what a quorum means: by
//! the paper's §3.1 intersection argument, any member set whose votes reach
//! the threshold is a valid quorum, and every read quorum sees the current
//! version of every key. These tests pin the consequence: on a fault-free
//! fabric the adaptive suite (with and without hedging) agrees op-for-op
//! with the minimal-prefix baseline and with a sequential `BTreeMap` model,
//! and its ping spend stays inside the over-provision cap.

use repdir::core::proptest_mini::prelude::*;
use repdir::core::suite::{DirSuite, SuiteConfig};
use repdir::core::{Key, UserKey, Value};
use std::collections::BTreeMap;

/// An abstract operation over a small key universe.
#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u8),
    Update(u8, u8),
    Delete(u8),
    Lookup(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 16, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k % 16, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 16)),
        any::<u8>().prop_map(|k| Op::Lookup(k % 16)),
    ]
}

fn key_of(k: u8) -> Key {
    Key::User(UserKey::from_u64(k as u64))
}

fn value_of(v: u8) -> Value {
    Value::from(vec![v])
}

#[derive(Clone, Copy)]
enum Mode {
    /// Minimal-prefix waves, no hedging — the pre-adaptive baseline.
    Baseline,
    /// Adaptive wave sizing (the default), no hedging.
    Adaptive,
    /// Adaptive waves plus hedged pings and hedged read-quorum lookups.
    Hedged,
}

/// Replays `ops` against a fresh in-process suite in the given mode and
/// returns a *semantic* transcript plus the total ping count.
///
/// The transcript deliberately omits which members formed each quorum and
/// incidental side-effect counts (`ghosts_deleted`): hedging may substitute
/// a spare member's reply for a straggler's, so quorum composition is
/// allowed to differ — the §3.1 guarantee is that answers, versions, and
/// errors cannot.
fn replay(ops: &[Op], seed: u64, config: SuiteConfig, mode: Mode) -> (Vec<String>, u64) {
    let mut suite = DirSuite::in_process(config, seed).expect("suite");
    match mode {
        Mode::Baseline => suite.set_adaptive_waves(false),
        Mode::Adaptive => assert!(suite.adaptive_waves_enabled(), "adaptive is the default"),
        Mode::Hedged => suite.set_hedge(true),
    }
    let mut log = Vec::with_capacity(ops.len());
    for op in ops {
        let outcome = match *op {
            Op::Insert(k, v) => match suite.insert(&key_of(k), &value_of(v)) {
                Ok(out) => format!("insert v{:?}", out.version),
                Err(e) => format!("insert err {e:?}"),
            },
            Op::Update(k, v) => match suite.update(&key_of(k), &value_of(v)) {
                Ok(out) => format!("update v{:?}", out.version),
                Err(e) => format!("update err {e:?}"),
            },
            Op::Delete(k) => match suite.delete(&key_of(k)) {
                Ok(out) => format!("delete {:?}..{:?}", out.predecessor, out.successor),
                Err(e) => format!("delete err {e:?}"),
            },
            Op::Lookup(k) => match suite.lookup(&key_of(k)) {
                Ok(out) => format!(
                    "lookup present={} v{:?} {:?}",
                    out.present, out.version, out.value
                ),
                Err(e) => format!("lookup err {e:?}"),
            },
        };
        log.push(outcome);
    }
    (log, suite.ping_counts().iter().sum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adaptive waves and hedging agree op-for-op with the minimal-prefix
    /// baseline and with the abstract model; on a fault-free fabric the
    /// adaptive waves *are* the minimal prefixes (identical ping counts),
    /// and hedging stays inside the over-provision cap (at most 2x the
    /// baseline's pings, the default `max_overprovision`).
    #[test]
    fn adaptive_and_hedged_match_baseline_and_model(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
        cfg_choice in 0usize..3,
    ) {
        let (n, r, w) = [(3, 2, 2), (4, 2, 3), (5, 3, 3)][cfg_choice];
        let config = SuiteConfig::symmetric(n, r, w).expect("legal");

        // Adaptive (default) run, checked against the abstract model.
        let mut suite = DirSuite::in_process(config.clone(), seed).expect("suite");
        let mut model: BTreeMap<u8, u8> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let result = suite.insert(&key_of(k), &value_of(v));
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        prop_assert!(result.is_ok());
                        e.insert(v);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Update(k, v) => {
                    let result = suite.update(&key_of(k), &value_of(v));
                    if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(k) {
                        prop_assert!(result.is_ok());
                        e.insert(v);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Delete(k) => {
                    let result = suite.delete(&key_of(k));
                    if model.remove(&k).is_some() {
                        prop_assert!(result.is_ok());
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Lookup(k) => {
                    let out = suite.lookup(&key_of(k)).expect("lookup");
                    prop_assert_eq!(out.present, model.contains_key(&k));
                    if let Some(v) = model.get(&k) {
                        prop_assert_eq!(out.value.clone(), Some(value_of(*v)));
                    }
                }
            }
        }

        // Same seed, three modes: identical semantic transcripts.
        let (log_base, pings_base) = replay(&ops, seed, config.clone(), Mode::Baseline);
        let (log_adapt, pings_adapt) = replay(&ops, seed, config.clone(), Mode::Adaptive);
        let (log_hedge, pings_hedge) = replay(&ops, seed, config, Mode::Hedged);
        prop_assert_eq!(&log_adapt, &log_base, "adaptive diverged from baseline");
        prop_assert_eq!(&log_hedge, &log_base, "hedged diverged from baseline");

        // Fault-free fabric: availability never drops below 1.0, so every
        // adaptive wave is exactly the baseline's minimal prefix.
        prop_assert_eq!(pings_adapt, pings_base);
        // Hedges may fire spuriously under scheduler noise, but each wave
        // (hedges included) is capped at `max_overprovision` (2.0) times
        // its vote deficit, so the run never spends more than twice the
        // baseline's pings.
        prop_assert!(
            pings_hedge <= pings_base * 2,
            "hedged pings {} exceed 2x baseline {}",
            pings_hedge,
            pings_base
        );
    }
}
