//! Side-by-side demonstration of §2: on the same adversarial schedule, the
//! naive per-entry-version scheme is ambiguous (or must consult extra
//! replicas, losing availability), while the gap-versioned algorithm
//! answers from any legal read quorum.

use repdir::baselines::{BaselineError, DirectoryOps, NaiveEntryDirectory};
use repdir::core::suite::{DirSuite, FixedPolicy, QuorumPolicy, SuiteConfig};
use repdir::core::{Key, LocalRep, RepId, UserKey, Value, Version};

fn fixed(order: &[usize]) -> Box<dyn QuorumPolicy + Send> {
    Box::new(FixedPolicy::with_order(order.to_vec()))
}

fn k(s: &str) -> Key {
    Key::from(s)
}
fn uk(s: &str) -> UserKey {
    UserKey::from(s)
}
fn val(s: &str) -> Value {
    Value::from(s)
}

/// The schedule of Figures 1-3: insert b at {A, B}, delete via {B, C}.
struct Schedule;

impl Schedule {
    fn apply_naive(d: &mut NaiveEntryDirectory) {
        d.insert_at(&uk("b"), Version::new(1), &val("B"), &[0, 1]);
        d.delete_at(&uk("b"), &[1, 2]);
    }

    fn apply_repdir(suite: &mut DirSuite<LocalRep>) {
        suite.set_policy(fixed(&[0, 1, 2]));
        suite.insert(&k("b"), &val("B")).unwrap();
        suite.set_policy(fixed(&[1, 2, 0]));
        suite.delete(&k("b")).unwrap();
    }
}

#[test]
fn naive_scheme_needs_extra_replicas_to_decide() {
    let mut d = NaiveEntryDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 1);
    Schedule::apply_naive(&mut d);
    let mut widened = false;
    for _ in 0..30 {
        let before = d.extra_consultations;
        assert_eq!(d.lookup(&k("b")).unwrap(), None);
        widened |= d.extra_consultations > before;
    }
    assert!(
        widened,
        "a mixed present/absent quorum forces consultation beyond R"
    );
}

#[test]
fn naive_scheme_goes_ambiguous_when_decider_is_down() {
    let mut d = NaiveEntryDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 2);
    Schedule::apply_naive(&mut d);
    d.set_available(1, false); // B holds the deciding answer
    let mut failures = 0;
    for _ in 0..20 {
        if matches!(d.lookup(&k("b")), Err(BaselineError::Ambiguous { .. })) {
            failures += 1;
        }
    }
    assert_eq!(
        failures, 20,
        "every lookup fails: the paper's 'reduced availability'"
    );
}

#[test]
fn gap_versions_answer_from_any_quorum_with_a_replica_down() {
    let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
    let mut suite = DirSuite::new(
        clients,
        SuiteConfig::symmetric(3, 2, 2).unwrap(),
        fixed(&[0, 1, 2]),
    )
    .unwrap();
    Schedule::apply_repdir(&mut suite);

    // The same failure that broke the naive scheme: B down. The remaining
    // quorum {A, C} is exactly the ambiguous pair — and it answers.
    suite.member(1).set_available(false);
    suite.set_policy(fixed(&[0, 2, 1]));
    for _ in 0..20 {
        let out = suite.lookup(&k("b")).unwrap();
        assert!(!out.present);
        assert_eq!(out.version, Version::new(2), "the coalesced gap's version");
    }
}

#[test]
fn naive_scheme_resurrects_stale_data_repdir_does_not() {
    // The version-collision history from the baseline's unit tests, run
    // through BOTH systems with the same quorum choices.
    // naive:
    let mut d = NaiveEntryDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 3);
    d.insert_at(&uk("b"), Version::new(1), &val("old"), &[0, 1]);
    d.delete_at(&uk("b"), &[1, 2]);
    d.insert_at(&uk("b"), Version::new(2), &val("new"), &[1, 2]);
    d.delete_at(&uk("b"), &[0, 1]);
    d.insert_at(&uk("b"), Version::new(1), &val("fresh"), &[0, 1]);
    assert_eq!(
        d.lookup(&k("b")).unwrap(),
        Some(val("new")),
        "naive scheme returns the DELETED value"
    );

    // repdir, with the same quorum orders chosen for each operation:
    let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
    let mut suite = DirSuite::new(
        clients,
        SuiteConfig::symmetric(3, 2, 2).unwrap(),
        fixed(&[0, 1, 2]),
    )
    .unwrap();
    suite.insert(&k("b"), &val("old")).unwrap(); // {A,B} v1
    suite.set_policy(fixed(&[1, 2, 0]));
    suite.delete(&k("b")).unwrap(); // via {B,C}
    suite.insert(&k("b"), &val("new")).unwrap(); // {B,C}
    suite.set_policy(fixed(&[0, 1, 2]));
    suite.delete(&k("b")).unwrap(); // via {A,B}
    suite.insert(&k("b"), &val("fresh")).unwrap(); // {A,B}
                                                   // Every read quorum returns the CURRENT value.
    for order in [[0usize, 1, 2], [1, 2, 0], [0, 2, 1], [2, 1, 0]] {
        suite.set_policy(fixed(&order));
        let out = suite.lookup(&k("b")).unwrap();
        assert!(out.present, "{order:?}");
        assert_eq!(out.value, Some(val("fresh")), "{order:?}");
    }
}

#[test]
fn every_baseline_handles_the_simple_lifecycle() {
    // Regression net: all five baselines + repdir agree on an
    // insert/lookup/update/delete lifecycle when nothing fails.
    use repdir::baselines::{
        GiffordFileDirectory, PrimaryCopyDirectory, StaticPartitionDirectory, UnanimousDirectory,
    };
    use repdir::workload::SuiteDirectory;

    fn exercise<D: DirectoryOps>(mut d: D, propagate: impl Fn(&mut D)) {
        let key = k("lifecycle");
        assert_eq!(d.lookup(&key).unwrap(), None);
        d.insert(&key, &val("1")).unwrap();
        propagate(&mut d);
        assert_eq!(d.lookup(&key).unwrap(), Some(val("1")));
        d.update(&key, &val("2")).unwrap();
        propagate(&mut d);
        assert_eq!(d.lookup(&key).unwrap(), Some(val("2")));
        d.delete(&key).unwrap();
        propagate(&mut d);
        assert_eq!(d.lookup(&key).unwrap(), None);
    }

    let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
    exercise(SuiteDirectory::new(cfg.clone(), 1), |_| {});
    exercise(GiffordFileDirectory::new(cfg.clone(), 2), |_| {});
    exercise(UnanimousDirectory::new(3, 3), |_| {});
    exercise(PrimaryCopyDirectory::new(3, 4), |d| d.propagate_all());
    exercise(
        StaticPartitionDirectory::new(cfg.clone(), vec![uk("m")], 5),
        |_| {},
    );
    exercise(NaiveEntryDirectory::new(cfg, 6), |_| {});
}
