//! Session-quorum scan: equivalence and fault-injection coverage.
//!
//! The session scan changes *how much* coordination a scan pays — one
//! quorum collection for the whole walk, one batched envelope per member
//! per hop — never *what* it returns. The property test pins that: over
//! randomized insert/delete/scan interleavings, the session scan, the
//! per-hop baseline (`set_session_reuse(false)`), and a `BTreeMap` model
//! agree entry-for-entry, while the session side pays exactly one ping
//! wave per failure-free scan and strictly fewer data RPCs.
//!
//! The fault-injection tests run the networked stack and kill a session
//! member mid-walk: the scan must re-validate exactly once and complete
//! correctly, and a dead majority must surface `QuorumUnavailable` in
//! bounded time rather than hang.

use repdir::core::proptest_mini::prelude::*;
use repdir::core::suite::{DirSuite, FixedPolicy, SuiteConfig};
use repdir::core::{
    BatchReply, BatchRequest, Key, QuorumKind, RepClient, RepId, RepResult, SuiteError, UserKey,
    Value, Version,
};
use repdir::net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir::replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir::txn::TxnId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u8),
    Delete(u8),
    Scan,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 12, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 12)),
        any::<u8>().prop_map(|_| Op::Scan),
    ]
}

fn key_of(k: u8) -> Key {
    Key::User(UserKey::from_u64(k as u64))
}

fn value_of(v: u8) -> Value {
    Value::from(vec![v])
}

fn waves_and_pings(suite: &DirSuite<impl RepClient + 'static>) -> (u64, u64) {
    let snap = suite.obs().snapshot();
    (
        snap.counter("suite.quorum.waves"),
        suite.ping_counts().iter().sum(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Session+batched scan ≡ per-hop baseline ≡ `BTreeMap` model, with the
    /// exact coordination price pinned: every failure-free session scan
    /// collects exactly one quorum (one ping wave, R pings) and sends
    /// strictly fewer data RPCs than the baseline scan of the same state.
    #[test]
    fn session_scan_matches_baseline_and_model(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
        cfg_choice in 0usize..3,
    ) {
        let (n, r, w) = [(3, 2, 2), (4, 2, 3), (5, 3, 3)][cfg_choice];
        let config = SuiteConfig::symmetric(n, r, w).expect("legal config");

        // Both suites follow the same seed-derived fixed quorum order, so
        // they hold identical representative states (same write quorums)
        // and their scans read the same members — making the data-RPC
        // comparison exact rather than confounded by quorum choice.
        let rot = (seed % n as u64) as usize;
        let order: Vec<usize> = (0..n as usize).map(|i| (i + rot) % n as usize).collect();
        let mut session = DirSuite::in_process(config.clone(), seed).expect("suite");
        prop_assert!(session.session_reuse_enabled(), "sessions are the default");
        session.set_policy(Box::new(FixedPolicy::with_order(order.clone())));
        let mut baseline = DirSuite::in_process(config, seed).expect("suite");
        baseline.set_session_reuse(false);
        baseline.set_policy(Box::new(FixedPolicy::with_order(order)));
        let mut model: BTreeMap<u8, u8> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let a = session.insert(&key_of(k), &value_of(v));
                    let b = baseline.insert(&key_of(k), &value_of(v));
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        prop_assert!(a.is_ok() && b.is_ok());
                        e.insert(v);
                    } else {
                        prop_assert!(a.is_err() && b.is_err());
                    }
                }
                Op::Delete(k) => {
                    let a = session.delete(&key_of(k));
                    let b = baseline.delete(&key_of(k));
                    if model.remove(&k).is_some() {
                        prop_assert!(a.is_ok() && b.is_ok());
                    } else {
                        prop_assert!(a.is_err() && b.is_err());
                    }
                }
                Op::Scan => {
                    let (s_waves0, s_pings0) = waves_and_pings(&session);
                    let s_msgs0: u64 = session.message_counts().iter().sum();
                    let listed = session.scan().expect("session scan");

                    let (s_waves1, s_pings1) = waves_and_pings(&session);
                    prop_assert_eq!(
                        s_waves1 - s_waves0, 1,
                        "failure-free session scan must collect exactly one quorum"
                    );
                    prop_assert_eq!(
                        s_pings1 - s_pings0, r as u64,
                        "one ping per read-quorum member"
                    );
                    let s_msgs: u64 =
                        session.message_counts().iter().sum::<u64>() - s_msgs0;

                    let b_msgs0: u64 = baseline.message_counts().iter().sum();
                    let (b_waves0, _) = waves_and_pings(&baseline);
                    let from_baseline = baseline.scan().expect("baseline scan");
                    let (b_waves1, _) = waves_and_pings(&baseline);
                    let b_msgs: u64 =
                        baseline.message_counts().iter().sum::<u64>() - b_msgs0;

                    prop_assert!(b_waves1 - b_waves0 >= 2, "baseline collects per hop");
                    prop_assert!(
                        s_msgs < b_msgs,
                        "session scan must send fewer data RPCs ({} vs {})",
                        s_msgs, b_msgs
                    );

                    let expect: Vec<(UserKey, Value)> = model
                        .iter()
                        .map(|(mk, mv)| (UserKey::from_u64(*mk as u64), value_of(*mv)))
                        .collect();
                    prop_assert_eq!(&listed, &expect, "session scan vs model");
                    prop_assert_eq!(&from_baseline, &expect, "baseline scan vs model");
                }
            }
        }
        let _ = w;
    }
}

/// Forwards to a [`RemoteSessionClient`] but, when a shared fuse counts
/// down to zero across batch envelopes, slows the victim nodes to well past
/// the RPC timeout — a member death injected *mid-walk*, after the session
/// quorum was collected and used.
struct FuseClient {
    inner: RemoteSessionClient,
    fuse: Arc<AtomicI64>,
    net: Arc<Network>,
    victims: Vec<NodeId>,
}

impl RepClient for FuseClient {
    fn id(&self) -> RepId {
        self.inner.id()
    }
    fn ping(&self) -> RepResult<()> {
        self.inner.ping()
    }
    fn lookup(&self, key: &Key) -> RepResult<repdir::core::LookupReply> {
        self.inner.lookup(key)
    }
    fn predecessor(&self, key: &Key) -> RepResult<repdir::core::NeighborReply> {
        self.inner.predecessor(key)
    }
    fn successor(&self, key: &Key) -> RepResult<repdir::core::NeighborReply> {
        self.inner.successor(key)
    }
    fn predecessor_chain(
        &self,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<repdir::core::NeighborReply>> {
        self.inner.predecessor_chain(key, limit)
    }
    fn successor_chain(
        &self,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<repdir::core::NeighborReply>> {
        self.inner.successor_chain(key, limit)
    }
    fn insert(
        &self,
        key: &Key,
        version: Version,
        value: &Value,
    ) -> RepResult<repdir::core::InsertOutcome> {
        self.inner.insert(key, version, value)
    }
    fn coalesce(
        &self,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> RepResult<repdir::core::CoalesceOutcome> {
        self.inner.coalesce(low, high, version)
    }
    fn batch(&self, reqs: &[BatchRequest]) -> RepResult<Vec<BatchReply>> {
        if self.fuse.fetch_sub(1, Ordering::SeqCst) == 1 {
            for v in &self.victims {
                self.net
                    .set_node_latency(*v, LatencyModel::fixed(Duration::from_secs(2)));
            }
        }
        self.inner.batch(reqs)
    }
}

struct Fixture {
    suite: DirSuite<FuseClient>,
    fuse: Arc<AtomicI64>,
    _handles: Vec<ServerHandle>,
}

/// Three networked representatives under a fixed quorum order: the session
/// quorum is always {0, 1}, and `victims` are the nodes the fuse slows.
fn networked_suite(victims: Vec<NodeId>) -> Fixture {
    let net = Arc::new(Network::new(0xFA17));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(Duration::from_micros(50)),
    });
    // Fuse starts deeply negative: disarmed until a test arms it.
    let fuse = Arc::new(AtomicI64::new(i64::MIN / 2));
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    for i in 0..3u32 {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut inner =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        inner.set_timeout(Duration::from_millis(300));
        inner.begin().expect("begin on a healthy fabric");
        clients.push(FuseClient {
            inner,
            fuse: Arc::clone(&fuse),
            net: Arc::clone(&net),
            victims: victims.clone(),
        });
    }
    let config = SuiteConfig::symmetric(3, 2, 2).unwrap();
    let suite = DirSuite::new(clients, config, Box::new(FixedPolicy::new())).unwrap();
    Fixture {
        suite,
        fuse,
        _handles: handles,
    }
}

#[test]
fn mid_scan_partitioned_member_revalidates_once_and_completes() {
    let mut fx = networked_suite(vec![NodeId(101)]);
    let keys: Vec<Key> = (0..8u64).map(|i| Key::User(UserKey::from_u64(i))).collect();
    for key in &keys {
        fx.suite.insert(key, &Value::from("v")).unwrap();
    }

    // The third batch envelope of the scan slows node 101 (member 1, in the
    // session quorum {0, 1}) past the 300ms RPC timeout: a mid-walk loss.
    fx.fuse.store(3, Ordering::SeqCst);
    let listed = fx.suite.scan().expect("scan must survive one member loss");
    assert_eq!(
        listed.iter().map(|(u, _)| u.clone()).collect::<Vec<_>>(),
        (0..8u64).map(UserKey::from_u64).collect::<Vec<_>>(),
        "scan completes correctly through the failure"
    );

    let snap = fx.suite.obs().snapshot();
    assert_eq!(
        snap.counter("suite.session.revalidate"),
        1,
        "exactly one re-validation for one mid-scan member loss"
    );
    assert!(snap.counter("suite.session.reuse") > 0);
    assert!(fx.suite.session(QuorumKind::Read).is_none());
}

#[test]
fn dead_majority_mid_scan_fails_fast_with_quorum_unavailable() {
    let mut fx = networked_suite(vec![NodeId(101), NodeId(102)]);
    for i in 0..8u64 {
        fx.suite
            .insert(&Key::User(UserKey::from_u64(i)), &Value::from("v"))
            .unwrap();
    }

    // Nodes 101 and 102 both go dark mid-scan: member 0 alone holds one of
    // the two votes a read quorum needs, so re-validation must fail with
    // QuorumUnavailable — bounded by RPC timeouts, not a hang.
    fx.fuse.store(3, Ordering::SeqCst);
    let started = Instant::now();
    let err = fx.suite.scan().expect_err("majority is dead");
    assert!(
        matches!(
            err,
            SuiteError::QuorumUnavailable {
                kind: QuorumKind::Read,
                ..
            }
        ),
        "got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "failure must surface within the RPC-timeout budget"
    );
}
