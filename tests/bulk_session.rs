//! Bulk insert/delete on session quorums: equivalence and fault-injection
//! coverage.
//!
//! The bulk ops change *how much* coordination an ingest pays — one read-
//! and one write-quorum collection for the whole batch, batched envelopes
//! instead of per-key round trips — never *what* they do. The property test
//! pins that: over randomized bulk batches, `insert_many`/`delete_many`
//! under session quorums, the per-key baseline (`set_session_reuse(false)`),
//! and a `BTreeMap` model replaying the sequential loop agree on every
//! outcome, while each successful session batch pays exactly one read and
//! one write collection (R + W pings total).
//!
//! The fault-injection tests run the networked stack and partition a
//! session member mid-batch: the ingest must re-validate, resume from the
//! first unacknowledged key, and leave every key applied exactly once at
//! its originally assigned version — no lost write, no double-apply.

use repdir::core::proptest_mini::prelude::*;
use repdir::core::suite::{DirSuite, FixedPolicy, SuiteConfig};
use repdir::core::{
    BatchReply, BatchRequest, Key, RepClient, RepId, RepResult, SuiteError, UserKey, Value, Version,
};
use repdir::net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient, ServerHandle};
use repdir::replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir::txn::TxnId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Debug)]
enum Op {
    InsertMany(Vec<(u8, u8)>),
    DeleteMany(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec((any::<u8>(), any::<u8>()), 0..12)
            .prop_map(|kvs| Op::InsertMany(kvs.into_iter().map(|(k, v)| (k % 12, v)).collect())),
        proptest::collection::vec(any::<u8>(), 0..12)
            .prop_map(|ks| Op::DeleteMany(ks.into_iter().map(|k| k % 12).collect())),
    ]
}

fn key_of(k: u8) -> Key {
    Key::User(UserKey::from_u64(k as u64))
}

fn value_of(v: u8) -> Value {
    Value::from(vec![v])
}

fn waves_and_pings(suite: &DirSuite<impl RepClient + 'static>) -> (u64, u64) {
    let snap = suite.obs().snapshot();
    (
        snap.counter("suite.quorum.waves"),
        suite.ping_counts().iter().sum(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bulk ≡ per-key baseline ≡ sequential-loop model, with the exact
    /// coordination price pinned: every successful nonempty session batch
    /// collects exactly one read and one write quorum (R + W pings).
    #[test]
    fn bulk_ops_match_per_key_baseline_and_model(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        seed in any::<u64>(),
        cfg_choice in 0usize..3,
    ) {
        let (n, r, w) = [(3, 2, 2), (4, 2, 3), (5, 3, 3)][cfg_choice];
        let config = SuiteConfig::symmetric(n, r, w).expect("legal config");

        // Both suites follow the same seed-derived fixed quorum order, so
        // they hold identical representative states and the comparison is
        // exact rather than confounded by quorum choice.
        let rot = (seed % n as u64) as usize;
        let order: Vec<usize> = (0..n as usize).map(|i| (i + rot) % n as usize).collect();
        let mut session = DirSuite::in_process(config.clone(), seed).expect("suite");
        session.set_policy(Box::new(FixedPolicy::with_order(order.clone())));
        let mut baseline = DirSuite::in_process(config, seed).expect("suite");
        baseline.set_session_reuse(false);
        baseline.set_policy(Box::new(FixedPolicy::with_order(order)));
        let mut model: BTreeMap<u8, u8> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::InsertMany(kvs) => {
                    let entries: Vec<(Key, Value)> = kvs
                        .iter()
                        .map(|&(k, v)| (key_of(k), value_of(v)))
                        .collect();
                    let (waves0, pings0) = waves_and_pings(&session);
                    let a = session.insert_many(&entries);
                    let (waves1, pings1) = waves_and_pings(&session);
                    let b = baseline.insert_many(&entries);
                    prop_assert_eq!(&a, &b, "bulk insert vs per-key loop");

                    // Replay the sequential loop against the model: the
                    // first offending key errors with the prefix applied.
                    let mut expect_err: Option<Key> = None;
                    for &(k, v) in kvs {
                        if model.contains_key(&k) {
                            expect_err = Some(key_of(k));
                            break;
                        }
                        model.insert(k, v);
                    }
                    match expect_err {
                        Some(key) => {
                            prop_assert_eq!(a, Err(SuiteError::AlreadyExists { key }));
                        }
                        None => {
                            prop_assert!(a.is_ok(), "all-fresh batch must succeed: {:?}", a);
                            if !kvs.is_empty() {
                                prop_assert_eq!(
                                    waves1 - waves0, 2,
                                    "one read + one write collection per batch"
                                );
                                prop_assert_eq!(
                                    pings1 - pings0, (r + w) as u64,
                                    "R pings for the read quorum, W for the write"
                                );
                            }
                        }
                    }
                }
                Op::DeleteMany(ks) => {
                    let keys: Vec<Key> = ks.iter().map(|&k| key_of(k)).collect();
                    let (waves0, pings0) = waves_and_pings(&session);
                    let a = session.delete_many(&keys);
                    let (waves1, pings1) = waves_and_pings(&session);
                    let b = baseline.delete_many(&keys);
                    prop_assert_eq!(&a, &b, "bulk delete vs per-key loop");

                    let mut expect_err: Option<Key> = None;
                    for &k in ks {
                        if model.remove(&k).is_none() {
                            expect_err = Some(key_of(k));
                            break;
                        }
                    }
                    match expect_err {
                        Some(key) => {
                            prop_assert_eq!(a, Err(SuiteError::NotFound { key }));
                        }
                        None => {
                            prop_assert!(a.is_ok(), "all-present batch must succeed: {:?}", a);
                            if !ks.is_empty() {
                                prop_assert_eq!(
                                    waves1 - waves0, 2,
                                    "one read + one write collection per batch"
                                );
                                prop_assert_eq!(
                                    pings1 - pings0, (r + w) as u64,
                                    "R pings for the read quorum, W for the write"
                                );
                            }
                        }
                    }
                }
            }
        }

        // Final audit: both suites list exactly the model.
        let expect: Vec<(UserKey, Value)> = model
            .iter()
            .map(|(mk, mv)| (UserKey::from_u64(*mk as u64), value_of(*mv)))
            .collect();
        prop_assert_eq!(&session.scan().expect("session scan"), &expect);
        prop_assert_eq!(&baseline.scan().expect("baseline scan"), &expect);
    }
}

/// Forwards to a [`RemoteSessionClient`] but, when a shared fuse counts
/// down to zero across batch envelopes, slows the victim nodes to well past
/// the RPC timeout — a member partition injected *mid-batch*, after the
/// session quorums were collected and envelopes acknowledged.
struct FuseClient {
    inner: RemoteSessionClient,
    fuse: Arc<AtomicI64>,
    net: Arc<Network>,
    victims: Vec<NodeId>,
}

impl RepClient for FuseClient {
    fn id(&self) -> RepId {
        self.inner.id()
    }
    fn ping(&self) -> RepResult<()> {
        self.inner.ping()
    }
    fn lookup(&self, key: &Key) -> RepResult<repdir::core::LookupReply> {
        self.inner.lookup(key)
    }
    fn predecessor(&self, key: &Key) -> RepResult<repdir::core::NeighborReply> {
        self.inner.predecessor(key)
    }
    fn successor(&self, key: &Key) -> RepResult<repdir::core::NeighborReply> {
        self.inner.successor(key)
    }
    fn predecessor_chain(
        &self,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<repdir::core::NeighborReply>> {
        self.inner.predecessor_chain(key, limit)
    }
    fn successor_chain(
        &self,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<repdir::core::NeighborReply>> {
        self.inner.successor_chain(key, limit)
    }
    fn insert(
        &self,
        key: &Key,
        version: Version,
        value: &Value,
    ) -> RepResult<repdir::core::InsertOutcome> {
        self.inner.insert(key, version, value)
    }
    fn coalesce(
        &self,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> RepResult<repdir::core::CoalesceOutcome> {
        self.inner.coalesce(low, high, version)
    }
    fn batch(&self, reqs: &[BatchRequest]) -> RepResult<Vec<BatchReply>> {
        if self.fuse.fetch_sub(1, Ordering::SeqCst) == 1 {
            for v in &self.victims {
                self.net
                    .set_node_latency(*v, LatencyModel::fixed(Duration::from_secs(2)));
            }
        }
        self.inner.batch(reqs)
    }
}

struct Fixture {
    suite: DirSuite<FuseClient>,
    fuse: Arc<AtomicI64>,
    _handles: Vec<ServerHandle>,
}

/// Three networked representatives under a fixed quorum order: the session
/// quorums are always {0, 1}, and `victims` are the nodes the fuse slows.
fn networked_suite(victims: Vec<NodeId>) -> Fixture {
    let net = Arc::new(Network::new(0xB07C));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel::fixed(Duration::from_micros(50)),
    });
    // Fuse starts deeply negative: disarmed until a test arms it.
    let fuse = Arc::new(AtomicI64::new(i64::MIN / 2));
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    let mut handles = Vec::new();
    let mut clients = Vec::new();
    for i in 0..3u32 {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
        let mut inner =
            RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), TxnId(1));
        inner.set_timeout(Duration::from_millis(300));
        inner.begin().expect("begin on a healthy fabric");
        clients.push(FuseClient {
            inner,
            fuse: Arc::clone(&fuse),
            net: Arc::clone(&net),
            victims: victims.clone(),
        });
    }
    let config = SuiteConfig::symmetric(3, 2, 2).unwrap();
    let suite = DirSuite::new(clients, config, Box::new(FixedPolicy::new())).unwrap();
    Fixture {
        suite,
        fuse,
        _handles: handles,
    }
}

#[test]
fn mid_ingest_partition_resumes_without_lost_or_double_applied_writes() {
    let mut fx = networked_suite(vec![NodeId(101)]);
    let entries: Vec<(Key, Value)> = (0..64u64)
        .map(|i| (Key::User(UserKey::from_u64(i)), Value::from("v")))
        .collect();

    // A 64-key ingest at chunk 16 sends four (discovery, write) envelope
    // pairs per member. The sixth batch envelope slows node 101 (member 1,
    // in both session quorums) past the 300ms RPC timeout: the partition
    // lands inside the second chunk's write wave, after 16 keys were
    // acknowledged and the next 16 had versions assigned.
    fx.fuse.store(6, Ordering::SeqCst);
    let out = fx
        .suite
        .insert_many(&entries)
        .expect("ingest must survive one member partition");

    // No write lost, none double-applied: every key is present at exactly
    // the version assigned before the failure. A write re-applied from a
    // fresh discovery would carry version 2.
    assert_eq!(out.versions, vec![Version::new(1); 64]);
    for (key, _) in &entries {
        let got = fx.suite.lookup(key).expect("lookup after heal-around");
        assert!(got.present, "{key:?} lost");
        assert_eq!(got.version, Version::new(1), "{key:?} double-applied");
    }
    let listed = fx.suite.scan().expect("scan");
    assert_eq!(listed.len(), 64, "exactly the batch, nothing else");

    let snap = fx.suite.obs().snapshot();
    assert!(snap.counter("suite.session.revalidate") >= 1);
    assert_eq!(snap.counter("suite.bulk.resumed"), 1);
}

#[test]
fn mid_bulk_delete_partition_resumes_cleanly() {
    let mut fx = networked_suite(vec![NodeId(101)]);
    for i in 0..16u64 {
        fx.suite
            .insert(&Key::User(UserKey::from_u64(i)), &Value::from("v"))
            .unwrap();
    }

    // The batch deletes the first eight keys; node 101 goes dark inside one
    // of the neighbor-search envelope waves, possibly leaving that key
    // half-coalesced at the survivors. The resume must re-drive it, not
    // report it NotFound and not leave a ghost.
    fx.fuse.store(10, Ordering::SeqCst);
    let keys: Vec<Key> = (0..8u64).map(|i| Key::User(UserKey::from_u64(i))).collect();
    fx.suite
        .delete_many(&keys)
        .expect("bulk delete must survive one member partition");

    for key in &keys {
        assert!(!fx.suite.lookup(key).unwrap().present, "{key:?} survived");
    }
    let listed = fx.suite.scan().expect("scan");
    assert_eq!(
        listed.iter().map(|(u, _)| u.clone()).collect::<Vec<_>>(),
        (8..16u64).map(UserKey::from_u64).collect::<Vec<_>>(),
        "exactly the batch was deleted"
    );
    // The partition lands inside a neighbor-search envelope, so the
    // session re-validates at least once; whether the *outer* batch body
    // restarts (suite.bulk.resumed) depends on whether the nested search's
    // own retry absorbs the failure first — both recoveries are correct,
    // and the suite-level fused test pins the outer-resume path.
    let snap = fx.suite.obs().snapshot();
    assert!(snap.counter("suite.session.revalidate") >= 1);
}
