//! Property-based crash-recovery testing: for any operation stream and any
//! crash point (including torn writes at arbitrary byte offsets), recovery
//! must reconstruct exactly the state as of the last durable commit.

use repdir::core::proptest_mini::prelude::*;
use repdir::core::{GapMap, Key, UserKey, Value, Version};
use repdir::storage::{DurableState, SimDisk};
use repdir::txn::TxnId;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum TxOp {
    Insert(u8, u8),
    CoalesceAround(u8),
}

fn txop() -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| TxOp::Insert(k % 16, v)),
        any::<u8>().prop_map(|k| TxOp::CoalesceAround(k % 16)),
    ]
}

fn key_of(k: u8) -> Key {
    Key::User(UserKey::from_u64(k as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Run a sequence of single-op transactions; crash with an arbitrary
    /// surviving prefix of the unsynced tail; recovery must equal the state
    /// at the last commit.
    #[test]
    fn recovery_equals_last_committed_state(
        committed_ops in proptest::collection::vec(txop(), 0..30),
        uncommitted_ops in proptest::collection::vec(txop(), 0..10),
        survive_bytes in 0usize..4096,
    ) {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        let mut txn = 0u64;
        let mut version = 0u64;
        let apply = |st: &mut DurableState, op: &TxOp, txn: TxnId, version: Version| {
            match op {
                TxOp::Insert(k, v) => {
                    st.insert(txn, &key_of(*k), version, Value::from(vec![*v]))
                        .expect("insert");
                }
                TxOp::CoalesceAround(k) => {
                    let lo = st.predecessor(&key_of(*k)).expect("pred").key;
                    let hi = st.successor(&key_of(*k)).expect("succ").key;
                    if lo < hi {
                        st.coalesce(txn, &lo, &hi, version).expect("coalesce");
                    }
                }
            }
        };

        // Committed transactions (each synced at commit).
        for op in &committed_ops {
            txn += 1;
            version += 1;
            let t = TxnId(txn);
            st.begin(t);
            apply(&mut st, op, t, Version::new(version));
            st.commit(t);
        }
        let durable_state: GapMap = st.map().clone();

        // One in-flight transaction that never commits.
        txn += 1;
        let t = TxnId(txn);
        st.begin(t);
        for op in &uncommitted_ops {
            version += 1;
            apply(&mut st, op, t, Version::new(version));
        }

        // Crash with an arbitrary number of unsynced bytes surviving
        // (possibly tearing a record mid-frame).
        disk.crash(survive_bytes);
        let recovered = DurableState::recover(disk).expect("recover");
        prop_assert_eq!(recovered.map(), durable_state);
        recovered.map().check_invariants().expect("invariants");
    }

    /// Repeated crash/recover cycles with work in between never lose
    /// committed data or resurrect uncommitted data.
    #[test]
    fn repeated_crashes_are_stable(
        rounds in proptest::collection::vec(
            (proptest::collection::vec(txop(), 1..8), 0usize..512),
            1..6
        ),
    ) {
        let mut disk = Arc::new(SimDisk::new());
        let mut expected = GapMap::new();
        let mut txn = 0u64;
        let mut version = 0u64;
        for (ops, survive) in rounds {
            let mut st = DurableState::recover(Arc::clone(&disk)).expect("recover");
            prop_assert_eq!(st.map(), expected.clone());
            for op in ops {
                txn += 1;
                version += 1;
                let t = TxnId(txn);
                st.begin(t);
                match op {
                    TxOp::Insert(k, v) => {
                        st.insert(t, &key_of(k), Version::new(version), Value::from(vec![v]))
                            .expect("insert");
                    }
                    TxOp::CoalesceAround(k) => {
                        let lo = st.predecessor(&key_of(k)).expect("pred").key;
                        let hi = st.successor(&key_of(k)).expect("succ").key;
                        if lo < hi {
                            st.coalesce(t, &lo, &hi, Version::new(version))
                                .expect("coalesce");
                        }
                    }
                }
                st.commit(t);
            }
            expected = st.map().clone();
            let d = Arc::clone(st.disk());
            d.crash(survive);
            disk = d;
        }
        let final_state = DurableState::recover(disk).expect("final recover");
        prop_assert_eq!(final_state.map(), expected);
    }
}
