//! Fault-injection suite for the self-driving repair path: the
//! stale-vote-fed [`RepairDriver`] fleet a [`ReplicatedDirectory`] spawns.
//!
//! The tentpole property: a member partitioned through a random workload
//! converges to byte-identical state after healing **without any manual
//! sweep** — driven purely by the stale votes that ordinary reads collect.
//! The drivers here run with a pacing floor far beyond the test's
//! lifetime, so a timer-driven sweep is impossible; every repair message
//! must originate from a vote wake. Alongside it: a peer dying mid-pull
//! rotates the driver to a live peer with exact accounting, a dead-majority
//! fabric backs the driver off instead of spinning it, and a recovery
//! signal snaps a capped-out driver back to work.

use repdir::core::rng::StdRng;
use repdir::core::suite::{FixedPolicy, StaleVote, StaleVoteQueue, SuiteConfig};
use repdir::core::{Key, RepId, SuiteError, UserKey, Value, Version};
use repdir::repair::{Pacing, RepairDriver, Repairer};
use repdir::replica::{LocalRepairPeer, RepTarget, ReplicatedDirectory, TransactionalRep};
use repdir::txn::TxnId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Counter-exact tests share one process-global obs registry, so they must
/// not interleave with each other's drivers.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Pacing whose floor exceeds any test deadline: the timer can never fire,
/// so the only way a driver acts is a vote (or recovery) wake.
fn never_ticks() -> Pacing {
    Pacing {
        floor: Duration::from_secs(120),
        cap: Duration::from_secs(240),
        factor: 2.0,
        ..Pacing::default()
    }
}

const KEYSPACE: u8 = 24;

fn user_key(k: u8) -> Key {
    Key::User(UserKey::from_u64(k as u64))
}

/// One random workload step against the directory and a model (same shape
/// as the repair_convergence suite).
fn step(
    dir: &ReplicatedDirectory,
    model: &mut BTreeMap<u8, u8>,
    rng: &mut StdRng,
) -> Result<(), SuiteError> {
    let k = rng.gen_range(0u8..KEYSPACE);
    let key = user_key(k);
    let v: u8 = rng.gen();
    match rng.gen_range(0..4u8) {
        0 if !model.contains_key(&k) => dir.insert(&key, &Value::from(vec![v])).map(|_| {
            model.insert(k, v);
        }),
        1 if model.contains_key(&k) => dir.update(&key, &Value::from(vec![v])).map(|_| {
            model.insert(k, v);
        }),
        2 if model.contains_key(&k) => dir.delete(&key).map(|_| {
            model.remove(&k);
        }),
        _ => dir.lookup(&key).map(|out| {
            assert_eq!(out.present, model.contains_key(&k));
        }),
    }
}

/// Reads `key` through a read quorum whose member preference starts at
/// `first`: with R = 2 of 3 the quorum is {first, first+1}, so the read
/// straddles `first` and generates a stale vote for it whenever it lags.
/// Retried because the background drivers' repair transactions can
/// transiently contend for range locks.
fn read_straddling(dir: &ReplicatedDirectory, first: usize, key: &Key) {
    let n = dir.reps().len();
    let order: Vec<usize> = (0..n).map(|i| (first + i) % n).collect();
    for attempt in 0..16 {
        let mut txn = dir.begin_with_policy(Box::new(FixedPolicy::with_order(order.clone())));
        let done = txn.suite_mut().lookup(key).is_ok();
        txn.commit();
        if done {
            return;
        }
        std::thread::sleep(Duration::from_millis(10 << attempt.min(5)));
    }
    panic!("read of {key:?} via quorum order {order:?} kept failing");
}

fn all_reps_identical(dir: &ReplicatedDirectory) -> bool {
    let canonical = dir.reps()[0].snapshot();
    dir.reps()
        .iter()
        .skip(1)
        .all(|rep| rep.snapshot() == canonical)
}

fn await_convergence(dir: &ReplicatedDirectory, deadline: Duration, context: &str) {
    let start = Instant::now();
    while !all_reps_identical(dir) {
        assert!(
            start.elapsed() < deadline,
            "{context}: replicas still diverged after {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole property. A member is partitioned through a random
/// insert/update/delete workload, heals, and then converges to
/// byte-identical state with **zero** summary sweeps and **zero** manual
/// `run_sweep`/`run_round` calls: the driver fleet is paced so the timer
/// never fires, and the only stimulus is ordinary reads pushing stale
/// votes into the shared queue.
fn run_vote_driven_convergence(seed: u64) {
    let _guard = serial();
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: BTreeMap<u8, u8> = BTreeMap::new();

    for _ in 0..40 {
        step(&dir, &mut model, &mut rng).expect("op with all members up");
    }
    let victim = rng.gen_range(0..3usize);
    dir.reps()[victim].set_available(false);
    for _ in 0..40 {
        step(&dir, &mut model, &mut rng).expect("op with one member partitioned");
    }
    dir.reps()[victim].set_available(true);
    let diverged = !all_reps_identical(&dir);

    let g = repdir::obs::global();
    let rounds_before = g.counter("repair.rounds").get();
    let sweeps_before = g.counter("repair.driver.sweeps").get();
    let targeted_before = g.counter("repair.driver.targeted_pulls").get();

    // Spawned after the heal: the recovery hook is not yet installed when
    // availability flips, so no recovery wake contaminates the experiment.
    dir.spawn_repair_drivers(never_ticks());

    // The stimulus: read every key through a quorum starting at each
    // member in turn. W = 2 of 3 means even the healthy prefix left some
    // member stale per key, so every member's divergence gets read across
    // and voted on — exactly the evidence trail a live workload produces.
    for first in 0..3 {
        for k in 0..KEYSPACE {
            read_straddling(&dir, first, &user_key(k));
        }
    }

    await_convergence(&dir, Duration::from_secs(30), &format!("seed {seed:#x}"));
    dir.stop_repair_drivers();

    assert_eq!(
        g.counter("repair.driver.sweeps").get(),
        sweeps_before,
        "seed {seed:#x}: a fallback sweep fired — convergence was not vote-driven"
    );
    assert_eq!(
        g.counter("repair.rounds").get(),
        rounds_before,
        "seed {seed:#x}: a summary round ran — convergence was not vote-driven"
    );
    if diverged {
        assert!(
            g.counter("repair.driver.targeted_pulls").get() > targeted_before,
            "seed {seed:#x}: divergence healed without any targeted pull?"
        );
    }

    // Converged state matches the model through the normal read path.
    let listed = dir.scan().expect("final scan");
    let expect: Vec<(UserKey, Value)> = model
        .iter()
        .map(|(mk, mv)| (UserKey::from_u64(*mk as u64), Value::from(vec![*mv])))
        .collect();
    assert_eq!(listed, expect, "seed {seed:#x}: converged state != model");
}

#[test]
fn partitioned_member_converges_by_stale_votes_alone() {
    run_vote_driven_convergence(0x0D81_AE01);
}

#[test]
fn vote_driven_convergence_holds_across_random_histories() {
    for seed in 0..4u64 {
        run_vote_driven_convergence(0xD81_0000 + seed);
    }
}

/// Peer death mid-pull: the driver's targeted pull hits a dead peer,
/// rotates to a live one, heals every voted bucket, and the accounting is
/// exact — no panic, no dropped bucket.
#[test]
fn driver_rotates_to_a_live_peer_when_one_dies_mid_pull() {
    let _guard = serial();
    let stale = TransactionalRep::new(RepId(0));
    let dead = TransactionalRep::new(RepId(1));
    let fresh = TransactionalRep::new(RepId(2));
    // Two divergent buckets ('a'… and 'q'…) that only `fresh` has.
    let t = TxnId(1);
    fresh.begin(t).unwrap();
    fresh
        .insert(t, &Key::from("apple"), Version::new(1), &Value::from("A"))
        .unwrap();
    fresh
        .insert(t, &Key::from("quartz"), Version::new(2), &Value::from("Q"))
        .unwrap();
    fresh.commit(t).unwrap();
    dead.set_available(false);

    let queue = Arc::new(StaleVoteQueue::new());
    for (key, seen, latest) in [("apple", 0, 1), ("quartz", 0, 2)] {
        queue.push(StaleVote {
            member: 0,
            key: Key::from(key),
            seen: Version::new(seen),
            latest: Version::new(latest),
        });
    }
    let repairer = Repairer::new(
        Arc::new(RepTarget::new(Arc::clone(&stale))),
        vec![
            Box::new(LocalRepairPeer::new(Arc::clone(&dead))),
            Box::new(LocalRepairPeer::new(Arc::clone(&fresh))),
        ],
    );
    let source_queue = Arc::clone(&queue);
    let mut driver = RepairDriver::new(repairer, never_ticks())
        .with_vote_source(Box::new(move || source_queue.drain_member(0)));

    let g = repdir::obs::global();
    let targeted_before = g.counter("repair.driver.targeted_pulls").get();
    let tick = driver.drain_and_pull();

    assert_eq!(tick.votes, 2);
    assert_eq!(tick.buckets, 2);
    // Bucket 'a': dead peer fails, rotate to fresh. Bucket 'q': the driver
    // stuck with the peer that worked. 3 pull attempts, 1 error, nothing
    // left unrepaired.
    assert_eq!(tick.pulls, 3);
    assert_eq!(tick.errors, 1);
    assert_eq!(tick.unrepaired, 0);
    assert_eq!(tick.applied.installed, 2);
    assert_eq!(
        g.counter("repair.driver.targeted_pulls").get() - targeted_before,
        3,
        "targeted-pull counter disagrees with tick accounting"
    );
    assert_eq!(stale.snapshot(), fresh.snapshot());
    assert!(queue.is_empty(), "votes consumed exactly once");

    // Every peer dead: the evidence is dropped (a later read re-votes it)
    // and reported as unrepaired, still without a panic.
    fresh.set_available(false);
    queue.push(StaleVote {
        member: 0,
        key: Key::from("apple"),
        seen: Version::new(0),
        latest: Version::new(1),
    });
    let tick = driver.drain_and_pull();
    assert_eq!(tick.votes, 1);
    assert_eq!(tick.pulls, 2);
    assert_eq!(tick.errors, 2);
    assert_eq!(tick.unrepaired, 1);
    assert_eq!(tick.applied.total(), 0);
}

/// Durable stale-vote queue: a vote observed by a read survives the
/// observing process dying *between observe and pull*. The spill hook
/// lands every pushed vote in the stale member's WAL sidecar before it
/// becomes visible in the in-memory queue; after a crash the sidecar
/// reseeds a fresh queue and a vote-targeted pull heals the member with
/// zero summary sweeps — the observation was not lost.
#[test]
fn spilled_stale_votes_survive_a_crash_between_observe_and_pull() {
    let _guard = serial();
    let stale = TransactionalRep::new(RepId(0));
    let fresh = TransactionalRep::new(RepId(1));
    let t = TxnId(1);
    fresh.begin(t).unwrap();
    fresh
        .insert(t, &Key::from("apple"), Version::new(3), &Value::from("A"))
        .unwrap();
    fresh.commit(t).unwrap();

    // Observe: the read path pushes a stale vote; the spill hook makes it
    // durable on the stale member before the queue exposes it.
    let queue = Arc::new(StaleVoteQueue::new());
    let spill_rep = Arc::clone(&stale);
    queue.set_spill(Some(Box::new(move |vote: &StaleVote| {
        let _ = spill_rep.spill_stale_vote(vote);
    })));
    let vote = StaleVote {
        member: 0,
        key: Key::from("apple"),
        seen: Version::new(0),
        latest: Version::new(3),
    };
    queue.push(vote.clone());

    // Kill between observe and pull: the process (and with it the
    // in-memory queue) dies before any driver consumed the vote.
    drop(queue);
    stale.crash_and_recover().unwrap();

    // Recovery: the WAL sidecar reseeds a fresh queue...
    let revived = Arc::new(StaleVoteQueue::new());
    let spilled = stale.spilled_stale_votes();
    assert_eq!(spilled, vec![vote], "spilled vote lost across the crash");
    for v in spilled {
        revived.restore(v);
    }

    // ...and a vote-targeted pull (no sweep) heals exactly what was voted.
    let repairer = Repairer::new(
        Arc::new(RepTarget::new(Arc::clone(&stale))),
        vec![Box::new(LocalRepairPeer::new(Arc::clone(&fresh)))],
    );
    let source = Arc::clone(&revived);
    let mut driver = RepairDriver::new(repairer, never_ticks())
        .with_vote_source(Box::new(move || source.drain_member(0)));
    let g = repdir::obs::global();
    let sweeps_before = g.counter("repair.driver.sweeps").get();
    let tick = driver.drain_and_pull();
    assert_eq!(tick.votes, 1);
    assert_eq!(tick.unrepaired, 0);
    assert_eq!(tick.applied.installed, 1);
    assert_eq!(g.counter("repair.driver.sweeps").get(), sweeps_before);
    assert_eq!(stale.snapshot(), fresh.snapshot());

    // A checkpoint retires the consumed evidence: it must not be replayed
    // into yet another pull after the next recovery.
    stale.checkpoint().unwrap();
    assert!(stale.spilled_stale_votes().is_empty());
}

/// Dead-majority fabric: every peer is down, every tick only fails. The
/// driver must retreat to its pacing cap instead of spinning sweep
/// attempts at the floor.
#[test]
fn dead_majority_backs_the_driver_off_instead_of_spinning() {
    let _guard = serial();
    let target = TransactionalRep::new(RepId(0));
    let peer_a = TransactionalRep::new(RepId(1));
    let peer_b = TransactionalRep::new(RepId(2));
    peer_a.set_available(false);
    peer_b.set_available(false);

    let repairer = Repairer::new(
        Arc::new(RepTarget::new(Arc::clone(&target))),
        vec![
            Box::new(LocalRepairPeer::new(Arc::clone(&peer_a))),
            Box::new(LocalRepairPeer::new(Arc::clone(&peer_b))),
        ],
    );
    let pacing = Pacing {
        floor: Duration::from_millis(2),
        cap: Duration::from_millis(100),
        factor: 2.0,
        ..Pacing::default()
    };
    let g = repdir::obs::global();
    let handle = RepairDriver::new(repairer, pacing).spawn();

    // The backoff gauge must climb to the cap: consecutive error ticks back
    // off like quiescent ones.
    let start = Instant::now();
    while g.counter("repair.driver.backoff_ms").get() < 100 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "driver never reached its pacing cap against a dead majority"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // At the cap the tick rate is bounded by cap, not floor: over an
    // observation window several floors long, only a couple of sweep
    // attempts may fire (window/cap = 3, plus one in flight).
    let sweeps_at_cap = g.counter("repair.driver.sweeps").get();
    std::thread::sleep(Duration::from_millis(300));
    let extra = g.counter("repair.driver.sweeps").get() - sweeps_at_cap;
    assert!(
        extra <= 5,
        "driver kept spinning at the cap: {extra} sweeps in 300ms"
    );
    handle.stop();
}

/// Recovery signal: a driver fleet idles at its pacing cap; a member comes
/// back from an injected failure; its recovery hook wakes the driver,
/// pacing snaps to the floor, and floor-paced sweeps converge the member
/// promptly — no stale votes involved.
#[test]
fn recovery_signal_snaps_a_capped_driver_back_to_work() {
    let _guard = serial();
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 0x5EC0).unwrap();
    // A huge factor sends a driver from the floor to the cap after a
    // single quiescent tick; the cap dwarfs the test, so only a recovery
    // wake can bring a driver back.
    let pacing = Pacing {
        floor: Duration::from_millis(5),
        cap: Duration::from_secs(120),
        factor: 1.0e6,
        ..Pacing::default()
    };
    dir.spawn_repair_drivers(pacing);
    // Let every driver take its first (quiescent) tick and cap out.
    std::thread::sleep(Duration::from_millis(100));

    // Writes pinned to members {0, 1} while member 2 is down: member 2
    // misses everything.
    dir.reps()[2].set_available(false);
    for i in 0..10u8 {
        let mut txn = dir.begin_with_policy(Box::new(FixedPolicy::with_order(vec![0, 1, 2])));
        txn.suite_mut()
            .insert(&user_key(i), &Value::from(vec![i]))
            .unwrap();
        txn.commit();
    }
    assert!(!all_reps_identical(&dir));

    // Healing fires the recovery hook → wake_recovery → pacing floor →
    // the next timer ticks sweep member 2 back to parity.
    dir.reps()[2].set_available(true);
    await_convergence(&dir, Duration::from_secs(20), "recovery snap-back");
    dir.stop_repair_drivers();
}
