//! Whole-stack integration: the suite algorithm over transactional
//! representatives served across the simulated network, with latency,
//! partitions, crashes, and recovery — all layers at once.

use std::sync::Arc;
use std::time::Duration;

use repdir::core::suite::{DirSuite, FixedPolicy, RandomPolicy, SuiteConfig};
use repdir::core::{Key, RepId, SuiteError, Value};
use repdir::net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient};
use repdir::replica::{serve_rep, RemoteSessionClient, ReplicatedDirectory, TransactionalRep};
use repdir::txn::TxnId;

struct Cluster {
    net: Arc<Network>,
    /// Kept alive so the serving threads' representatives outlive the test.
    #[allow(dead_code)]
    reps: Vec<Arc<TransactionalRep>>,
    rpc: Arc<RpcClient>,
    next_txn: u64,
}

impl Cluster {
    fn new(seed: u64) -> Self {
        let net = Arc::new(Network::new(seed));
        let mut reps = Vec::new();
        for i in 0..3u32 {
            let rep = TransactionalRep::new(RepId(i));
            serve_rep(Arc::clone(&net), NodeId(100 + i), Arc::clone(&rep));
            reps.push(rep);
        }
        let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(1)));
        Cluster {
            net,
            reps,
            rpc,
            next_txn: 1,
        }
    }

    fn txn_suite(&mut self) -> (TxnId, DirSuite<RemoteSessionClient>) {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let clients: Vec<RemoteSessionClient> = (0..3u32)
            .map(|i| {
                let mut c =
                    RemoteSessionClient::new(Arc::clone(&self.rpc), NodeId(100 + i), RepId(i), txn);
                c.set_timeout(Duration::from_millis(150));
                let _ = c.begin();
                c
            })
            .collect();
        let suite = DirSuite::new(
            clients,
            SuiteConfig::symmetric(3, 2, 2).unwrap(),
            Box::new(RandomPolicy::new(self.next_txn)),
        )
        .unwrap();
        (txn, suite)
    }

    fn commit(&self, suite: &DirSuite<RemoteSessionClient>) {
        for i in 0..3 {
            let _ = suite.member(i).commit();
        }
    }
}

#[test]
fn crud_over_the_network_with_latency() {
    let mut cluster = Cluster::new(1);
    cluster.net.set_fault_plan(FaultPlan {
        latency: LatencyModel {
            base: Duration::from_millis(1),
            jitter: Duration::from_millis(2),
        },
        ..FaultPlan::default()
    });
    let (_, mut suite) = cluster.txn_suite();
    suite.insert(&Key::from("k1"), &Value::from("v1")).unwrap();
    suite.insert(&Key::from("k2"), &Value::from("v2")).unwrap();
    suite.update(&Key::from("k1"), &Value::from("v1b")).unwrap();
    suite.delete(&Key::from("k2")).unwrap();
    let out = suite.lookup(&Key::from("k1")).unwrap();
    assert_eq!(out.value, Some(Value::from("v1b")));
    assert!(!suite.lookup(&Key::from("k2")).unwrap().present);
    cluster.commit(&suite);
}

#[test]
fn partitioned_minority_is_routed_around_and_catches_up_via_delete_copies() {
    let mut cluster = Cluster::new(2);
    {
        let (_, mut suite) = cluster.txn_suite();
        for key in ["a", "b", "c"] {
            suite.insert(&Key::from(key), &Value::from(key)).unwrap();
        }
        cluster.commit(&suite);
    }
    // Cut rep C (node 102) off from the client.
    cluster
        .net
        .partition(&[&[NodeId(1), NodeId(100), NodeId(101)], &[NodeId(102)]]);
    {
        let (_, mut suite) = cluster.txn_suite();
        suite.update(&Key::from("a"), &Value::from("a2")).unwrap();
        suite.delete(&Key::from("b")).unwrap();
        assert!(suite.lookup(&Key::from("a")).unwrap().present);
        cluster.commit(&suite);
    }
    cluster.net.heal();
    {
        let (_, mut suite) = cluster.txn_suite();
        // Force quorums that include the healed C: answers must be current.
        suite.set_policy(Box::new(FixedPolicy::with_order(vec![2, 0, 1])));
        let out = suite.lookup(&Key::from("a")).unwrap();
        assert_eq!(out.value, Some(Value::from("a2")));
        assert!(!suite.lookup(&Key::from("b")).unwrap().present);
        cluster.commit(&suite);
    }
}

#[test]
fn client_side_quorum_failure_reports_unavailable() {
    let mut cluster = Cluster::new(3);
    {
        let (_, mut suite) = cluster.txn_suite();
        suite.insert(&Key::from("x"), &Value::from("1")).unwrap();
        cluster.commit(&suite);
    }
    cluster
        .net
        .partition(&[&[NodeId(1), NodeId(100)], &[NodeId(101), NodeId(102)]]);
    let (_, mut suite) = cluster.txn_suite();
    let err = suite.lookup(&Key::from("x")).unwrap_err();
    assert!(
        matches!(err, SuiteError::QuorumUnavailable { .. }),
        "{err:?}"
    );
    cluster.net.heal();
}

#[test]
fn in_process_stack_survives_rolling_crashes_mid_workload() {
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 4).unwrap();
    let mut expected = std::collections::BTreeMap::new();
    for round in 0..6u32 {
        // A few writes...
        for i in 0..10u32 {
            let key = Key::from(format!("r{round}-{i}").as_str());
            let value = Value::from(format!("v{round}-{i}").as_str());
            dir.insert(&key, &value).unwrap();
            expected.insert(key, value);
        }
        // ...then crash one representative (round-robin) and recover it.
        let victim = (round as usize) % 3;
        dir.reps()[victim].crash_and_recover().unwrap();
        // The whole keyspace must still read correctly.
        for (key, value) in &expected {
            let out = dir.lookup(key).unwrap();
            assert!(out.present, "{key:?} lost after crash of rep {victim}");
            assert_eq!(out.value.as_ref(), Some(value));
        }
    }
    assert_eq!(expected.len(), 60);
}

#[test]
fn dropped_messages_surface_as_unavailability_not_corruption() {
    let mut cluster = Cluster::new(5);
    {
        let (_, mut suite) = cluster.txn_suite();
        suite.insert(&Key::from("safe"), &Value::from("1")).unwrap();
        cluster.commit(&suite);
    }
    // Heavy loss: operations may fail, but whatever succeeds must be right.
    cluster.net.set_fault_plan(FaultPlan {
        drop_prob: 0.35,
        ..FaultPlan::default()
    });
    let mut successes = 0;
    for _ in 0..20 {
        let (_, mut suite) = cluster.txn_suite();
        match suite.lookup(&Key::from("safe")) {
            Ok(out) => {
                assert!(out.present);
                assert_eq!(out.value, Some(Value::from("1")));
                successes += 1;
            }
            Err(SuiteError::Rep(_)) | Err(SuiteError::QuorumUnavailable { .. }) => {}
            Err(e) => panic!("unexpected error class: {e:?}"),
        }
        cluster.commit(&suite);
    }
    assert!(successes > 0, "some lookups should get through 35% loss");
}
