//! Crash recovery while serving over the network: a representative's
//! process dies (losing locks and unsynced log tail), recovers from its
//! durable log, and resumes serving the same node — clients only observe a
//! blip.

use std::sync::Arc;
use std::time::Duration;

use repdir::core::suite::{DirSuite, FixedPolicy, SuiteConfig};
use repdir::core::{Key, RepId, Value};
use repdir::net::{Network, NodeId, RpcClient};
use repdir::replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir::txn::TxnId;

fn remote_suite(
    rpc: &Arc<RpcClient>,
    txn: TxnId,
    order: &[usize],
) -> DirSuite<RemoteSessionClient> {
    let clients: Vec<RemoteSessionClient> = (0..3u32)
        .map(|i| {
            let mut c = RemoteSessionClient::new(Arc::clone(rpc), NodeId(200 + i), RepId(i), txn);
            c.set_timeout(Duration::from_millis(200));
            let _ = c.begin();
            c
        })
        .collect();
    DirSuite::new(
        clients,
        SuiteConfig::symmetric(3, 2, 2).unwrap(),
        Box::new(FixedPolicy::with_order(order.to_vec())),
    )
    .unwrap()
}

#[test]
fn representative_crash_recovery_behind_a_live_server() {
    let net = Arc::new(Network::new(recover_seed()));
    let mut reps = Vec::new();
    for i in 0..3u32 {
        let rep = TransactionalRep::new(RepId(i));
        serve_rep(Arc::clone(&net), NodeId(200 + i), Arc::clone(&rep));
        reps.push(rep);
    }
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(9)));

    // Commit data through reps {A, B}.
    {
        let mut suite = remote_suite(&rpc, TxnId(1), &[0, 1, 2]);
        suite.insert(&Key::from("k1"), &Value::from("v1")).unwrap();
        suite.insert(&Key::from("k2"), &Value::from("v2")).unwrap();
        for i in 0..3 {
            let _ = suite.member(i).commit();
        }
    }

    // Rep A's process "dies" and recovers from its WAL, while the server
    // thread keeps serving the same node id.
    reps[0].crash_and_recover().unwrap();

    // A fresh transaction reading through A sees the committed data.
    {
        let mut suite = remote_suite(&rpc, TxnId(2), &[0, 1, 2]);
        let out = suite.lookup(&Key::from("k1")).unwrap();
        assert!(out.present);
        assert_eq!(out.value, Some(Value::from("v1")));
        // Writes keep working through the recovered representative.
        suite.update(&Key::from("k2"), &Value::from("v2b")).unwrap();
        suite.delete(&Key::from("k1")).unwrap();
        for i in 0..3 {
            let _ = suite.member(i).commit();
        }
    }

    // Crash everything; the directory's committed state survives in full.
    for rep in &reps {
        rep.crash_and_recover().unwrap();
    }
    {
        let mut suite = remote_suite(&rpc, TxnId(3), &[0, 1, 2]);
        assert!(!suite.lookup(&Key::from("k1")).unwrap().present);
        assert_eq!(
            suite.lookup(&Key::from("k2")).unwrap().value,
            Some(Value::from("v2b"))
        );
        for i in 0..3 {
            let _ = suite.member(i).commit();
        }
    }
}

fn recover_seed() -> u64 {
    0x5EED
}
