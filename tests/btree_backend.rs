//! The full transactional stack running on the paper's §5 B-tree
//! representation instead of the default map — same semantics, byte-level
//! different storage.

use repdir::core::rng::StdRng;
use repdir::core::suite::SuiteConfig;
use repdir::core::{Key, UserKey, Value};
use repdir::replica::ReplicatedDirectory;
use repdir::storage::Backend;
use std::collections::BTreeMap;

fn btree_dir(seed: u64, order: usize) -> ReplicatedDirectory {
    ReplicatedDirectory::with_backend(
        SuiteConfig::symmetric(3, 2, 2).unwrap(),
        seed,
        Backend::GapBTree { order },
    )
    .unwrap()
}

#[test]
fn crud_on_btree_backed_representatives() {
    let dir = btree_dir(1, 4);
    dir.insert(&Key::from("a"), &Value::from("A")).unwrap();
    dir.insert(&Key::from("b"), &Value::from("B")).unwrap();
    assert!(dir.lookup(&Key::from("a")).unwrap().present);
    dir.update(&Key::from("a"), &Value::from("A2")).unwrap();
    dir.delete(&Key::from("b")).unwrap();
    assert!(!dir.lookup(&Key::from("b")).unwrap().present);
    assert_eq!(
        dir.lookup(&Key::from("a")).unwrap().value,
        Some(Value::from("A2"))
    );
}

#[test]
fn btree_backend_survives_crash_recovery() {
    let dir = btree_dir(2, 5);
    for i in 0..40u64 {
        dir.insert(&Key::User(UserKey::from_u64(i)), &Value::from("v"))
            .unwrap();
    }
    for i in (0..40u64).step_by(2) {
        dir.delete(&Key::User(UserKey::from_u64(i))).unwrap();
    }
    for rep in dir.reps() {
        rep.crash_and_recover().unwrap();
    }
    for i in 0..40u64 {
        let out = dir.lookup(&Key::User(UserKey::from_u64(i))).unwrap();
        assert_eq!(out.present, i % 2 == 1, "key {i}");
    }
}

#[test]
fn btree_and_map_backends_agree_on_a_random_workload() {
    // The same seeded workload against both backends; every observable
    // answer must match (and match the model).
    let map_dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 7).unwrap();
    let tree_dir = btree_dir(7, 4);
    let mut model: BTreeMap<u8, u8> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..400 {
        let k = rng.gen_range(0u8..20);
        let key = Key::User(UserKey::from_u64(k as u64));
        let v: u8 = rng.gen();
        match rng.gen_range(0..4u8) {
            0 if !model.contains_key(&k) => {
                map_dir.insert(&key, &Value::from(vec![v])).unwrap();
                tree_dir.insert(&key, &Value::from(vec![v])).unwrap();
                model.insert(k, v);
            }
            1 if model.contains_key(&k) => {
                map_dir.update(&key, &Value::from(vec![v])).unwrap();
                tree_dir.update(&key, &Value::from(vec![v])).unwrap();
                model.insert(k, v);
            }
            2 if model.contains_key(&k) => {
                map_dir.delete(&key).unwrap();
                tree_dir.delete(&key).unwrap();
                model.remove(&k);
            }
            _ => {
                let a = map_dir.lookup(&key).unwrap();
                let b = tree_dir.lookup(&key).unwrap();
                assert_eq!(a.present, model.contains_key(&k));
                assert_eq!(b.present, model.contains_key(&k));
                if let Some(mv) = model.get(&k) {
                    assert_eq!(a.value, Some(Value::from(vec![*mv])));
                    assert_eq!(b.value, Some(Value::from(vec![*mv])));
                }
            }
        }
    }
    // Snapshot invariants hold on every B-tree-backed representative.
    for rep in tree_dir.reps() {
        rep.snapshot().check_invariants().unwrap();
    }
}

#[test]
fn transactions_roll_back_on_btree_backend() {
    let dir = btree_dir(3, 4);
    dir.insert(&Key::from("keep"), &Value::from("K")).unwrap();
    {
        let mut txn = dir.begin();
        txn.suite_mut()
            .insert(&Key::from("temp"), &Value::from("T"))
            .unwrap();
        txn.suite_mut()
            .update(&Key::from("keep"), &Value::from("dirty"))
            .unwrap();
        txn.abort();
    }
    assert!(!dir.lookup(&Key::from("temp")).unwrap().present);
    assert_eq!(
        dir.lookup(&Key::from("keep")).unwrap().value,
        Some(Value::from("K"))
    );
}
