//! Equivalence and stress tests for the suite's scatter-gather fan-out.
//!
//! The fan-out executor changes *when* member RPCs run, never *what* runs:
//! every wave is the same RPC set the sequential walk would issue, replies
//! merge through order-independent folds (`pick_reply`, vote counting,
//! per-slot chain integration), and counters are bumped by the coordinator
//! before each wave. These tests pin that claim: op-for-op agreement with a
//! sequential `BTreeMap` model, exact counter agreement with the serialized
//! (pre-fan-out) execution mode, and a multi-thread stress run against one
//! shared fabric.

use repdir::core::proptest_mini::prelude::*;
use repdir::core::suite::{DirSuite, FixedPolicy, SuiteConfig};
use repdir::core::{Key, RepId, UserKey, Value};
use repdir::net::{FaultPlan, LatencyModel, Network, NodeId, RpcClient};
use repdir::replica::{serve_rep, RemoteSessionClient, TransactionalRep};
use repdir::txn::TxnId;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// An abstract operation over a small key universe.
#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u8),
    Update(u8, u8),
    Delete(u8),
    Lookup(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 16, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k % 16, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 16)),
        any::<u8>().prop_map(|k| Op::Lookup(k % 16)),
    ]
}

fn key_of(k: u8) -> Key {
    Key::User(UserKey::from_u64(k as u64))
}

fn value_of(v: u8) -> Value {
    Value::from(vec![v])
}

/// Replays `ops` against a fresh in-process suite in the given execution
/// mode, returning a debug transcript of every outcome plus the final
/// counters.
fn replay(
    ops: &[Op],
    seed: u64,
    config: SuiteConfig,
    batch: usize,
    fanout: bool,
) -> (Vec<String>, Vec<u64>, Vec<u64>) {
    let mut suite = DirSuite::in_process(config, seed).expect("suite");
    suite.set_neighbor_batch(batch);
    suite.set_fanout(fanout);
    let mut log = Vec::with_capacity(ops.len());
    for op in ops {
        let outcome = match *op {
            Op::Insert(k, v) => format!("{:?}", suite.insert(&key_of(k), &value_of(v))),
            Op::Update(k, v) => format!("{:?}", suite.update(&key_of(k), &value_of(v))),
            Op::Delete(k) => format!("{:?}", suite.delete(&key_of(k))),
            Op::Lookup(k) => format!("{:?}", suite.lookup(&key_of(k))),
        };
        log.push(outcome);
    }
    (
        log,
        suite.message_counts().to_vec(),
        suite.ping_counts().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The fan-out suite agrees op-for-op with a sequential `BTreeMap`
    /// model, and with the serialized execution mode it agrees on every
    /// outcome *and* on the exact per-member message/ping counters: waves
    /// are the same RPC sets whether they run concurrently or one by one.
    #[test]
    fn fanout_matches_model_and_sequential_counters(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        seed in any::<u64>(),
        cfg_choice in 0usize..3,
        batch in 1usize..4,
    ) {
        let (n, r, w) = [(3, 2, 2), (4, 2, 3), (5, 3, 3)][cfg_choice];
        let config = SuiteConfig::symmetric(n, r, w).expect("legal");

        // Fan-out run, checked against the abstract model op for op.
        let mut suite = DirSuite::in_process(config.clone(), seed).expect("suite");
        suite.set_neighbor_batch(batch);
        let mut model: BTreeMap<u8, u8> = BTreeMap::new();
        prop_assert!(suite.fanout_enabled(), "fan-out is the default");
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let result = suite.insert(&key_of(k), &value_of(v));
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        prop_assert!(result.is_ok());
                        e.insert(v);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Update(k, v) => {
                    let result = suite.update(&key_of(k), &value_of(v));
                    if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(k) {
                        prop_assert!(result.is_ok());
                        e.insert(v);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Delete(k) => {
                    let result = suite.delete(&key_of(k));
                    if model.remove(&k).is_some() {
                        prop_assert!(result.is_ok());
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Lookup(k) => {
                    let out = suite.lookup(&key_of(k)).expect("lookup");
                    prop_assert_eq!(out.present, model.contains_key(&k));
                    if let Some(v) = model.get(&k) {
                        prop_assert_eq!(out.value.clone(), Some(value_of(*v)));
                    }
                }
            }
        }

        // Same seed, both execution modes: identical transcripts, identical
        // per-member counters (hence identical totals).
        let (log_fan, msgs_fan, pings_fan) = replay(&ops, seed, config.clone(), batch, true);
        let (log_seq, msgs_seq, pings_seq) = replay(&ops, seed, config, batch, false);
        prop_assert_eq!(log_fan, log_seq);
        prop_assert_eq!(msgs_fan, msgs_seq);
        prop_assert_eq!(pings_fan, pings_seq);
    }
}

/// Multiple threads drive concurrent fan-out operations over one shared
/// fabric: every thread owns a suite of remote clients multiplexed through
/// a single `RpcClient`, all ops share one transaction at the three shared
/// representatives, and the fabric adds latency so in-flight RPCs from
/// different threads genuinely overlap in the router.
#[test]
fn concurrent_fanout_suites_share_one_fabric() {
    const THREADS: u32 = 4;
    const KEYS_PER_THREAD: u32 = 6;

    let net = Arc::new(Network::new(77));
    net.set_fault_plan(FaultPlan {
        drop_prob: 0.0,
        duplicate_prob: 0.0,
        latency: LatencyModel {
            base: Duration::from_micros(200),
            jitter: Duration::from_micros(300),
        },
    });
    let mut handles = Vec::new();
    for i in 0..3u32 {
        let rep = TransactionalRep::new(RepId(i));
        handles.push(serve_rep(Arc::clone(&net), NodeId(100 + i), rep));
    }
    let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
    let txn = TxnId(1);
    let make_suite = || {
        let clients: Vec<RemoteSessionClient> = (0..3u32)
            .map(|i| {
                let mut c =
                    RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), txn);
                c.set_timeout(Duration::from_secs(10));
                c
            })
            .collect();
        DirSuite::new(
            clients,
            SuiteConfig::symmetric(3, 2, 2).unwrap(),
            Box::new(FixedPolicy::new()),
        )
        .unwrap()
    };

    // Register the shared transaction once at every representative.
    {
        let suite = make_suite();
        for i in 0..3 {
            suite.member(i).begin().unwrap();
        }
    }

    // Phase 1: every thread inserts its own key range, concurrently.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let make_suite = &make_suite;
            scope.spawn(move || {
                let mut suite = make_suite();
                for i in 0..KEYS_PER_THREAD {
                    let key = key_of((t * KEYS_PER_THREAD + i) as u8);
                    suite.insert(&key, &value_of(t as u8)).unwrap();
                    assert!(suite.lookup(&key).unwrap().present);
                }
            });
        }
    });

    // Phase 2: concurrent churn. Each thread deletes and re-inserts its own
    // *first* key; with phase 1 complete, every delete's coalesce range is
    // bracketed by immediate neighbors no other thread touches, so the
    // concurrent deletes are disjoint.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let make_suite = &make_suite;
            scope.spawn(move || {
                let mut suite = make_suite();
                let first = key_of((t * KEYS_PER_THREAD) as u8);
                suite.delete(&first).unwrap();
                assert!(!suite.lookup(&first).unwrap().present);
                suite.insert(&first, &value_of(0xFF)).unwrap();
            });
        }
    });

    // Every thread's keys are visible through a fresh suite afterwards.
    let mut verify = make_suite();
    for t in 0..THREADS {
        for i in 0..KEYS_PER_THREAD {
            let key = key_of((t * KEYS_PER_THREAD + i) as u8);
            assert!(verify.lookup(&key).unwrap().present, "{key:?}");
        }
    }
    let listed = verify.scan().unwrap();
    assert_eq!(listed.len(), (THREADS * KEYS_PER_THREAD) as usize);
    for i in 0..3 {
        verify.member(i).commit().unwrap();
    }
}
