//! Concurrency tests of the full transactional stack: strict two-phase
//! range locking must make concurrently executed multi-key transactions
//! equivalent to some serial order (§3.1/§3.3, citing Traiger et al.).

use std::sync::Arc;

use repdir::core::suite::SuiteConfig;
use repdir::core::{Key, SuiteError, Value};
use repdir::replica::ReplicatedDirectory;

fn dir_322(seed: u64) -> Arc<ReplicatedDirectory> {
    Arc::new(ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), seed).unwrap())
}

fn parse_u64(v: &Value) -> u64 {
    String::from_utf8_lossy(v.as_bytes()).parse().unwrap()
}

fn value_u64(n: u64) -> Value {
    Value::from(n.to_string().as_str())
}

/// The classic invariant test: transactions move "money" between two
/// accounts; the total must be conserved no matter how transactions
/// interleave, because each transfer reads and writes both keys under
/// two-phase locking.
#[test]
fn transfers_conserve_the_total() {
    let dir = dir_322(1);
    let accounts = [
        Key::from("acct/a"),
        Key::from("acct/b"),
        Key::from("acct/c"),
    ];
    for a in &accounts {
        dir.insert(a, &value_u64(100)).unwrap();
    }

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let dir = Arc::clone(&dir);
        let accounts = accounts.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..30u64 {
                let from = &accounts[((t + i) % 3) as usize];
                let to = &accounts[((t + i + 1) % 3) as usize];
                // One transaction: read both, move 1 if possible, write both.
                dir.run(|suite| {
                    let from_balance =
                        parse_u64(suite.lookup(from)?.value.as_ref().expect("account exists"));
                    let to_balance =
                        parse_u64(suite.lookup(to)?.value.as_ref().expect("account exists"));
                    if from_balance == 0 {
                        return Ok(());
                    }
                    suite.update(from, &value_u64(from_balance - 1))?;
                    suite.update(to, &value_u64(to_balance + 1))?;
                    Ok(())
                })
                .expect("transfer");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let total: u64 = accounts
        .iter()
        .map(|a| parse_u64(dir.lookup(a).unwrap().value.as_ref().unwrap()))
        .sum();
    assert_eq!(total, 300, "two-phase locking must conserve the total");
}

/// Concurrent inserts and deletes on neighboring keys: the delete path's
/// range coalesce locks the whole (pred, succ) range, so a racing insert
/// into that range can never be half-applied or lost.
#[test]
fn racing_insert_and_delete_on_adjacent_keys() {
    let dir = dir_322(2);
    dir.insert(&Key::from("fence-a"), &Value::from("A"))
        .unwrap();
    dir.insert(&Key::from("fence-z"), &Value::from("Z"))
        .unwrap();

    let inserter = {
        let dir = Arc::clone(&dir);
        std::thread::spawn(move || {
            for i in 0..40u32 {
                let key = Key::from(format!("fence-m{i:02}").as_str());
                dir.insert(&key, &Value::from("M")).expect("insert");
            }
        })
    };
    let deleter = {
        let dir = Arc::clone(&dir);
        std::thread::spawn(move || {
            let mut deleted = 0;
            while deleted < 40 {
                for i in 0..40u32 {
                    let key = Key::from(format!("fence-m{i:02}").as_str());
                    match dir.delete(&key) {
                        Ok(()) => deleted += 1,
                        Err(SuiteError::NotFound { .. }) => {}
                        Err(e) => panic!("delete: {e}"),
                    }
                }
            }
        })
    };
    inserter.join().unwrap();
    deleter.join().unwrap();

    // Everything between the fences was inserted once and deleted once.
    for i in 0..40u32 {
        let key = Key::from(format!("fence-m{i:02}").as_str());
        assert!(!dir.lookup(&key).unwrap().present, "{key:?} leaked");
    }
    assert!(dir.lookup(&Key::from("fence-a")).unwrap().present);
    assert!(dir.lookup(&Key::from("fence-z")).unwrap().present);
    // Physical ghosts MAY remain on representatives that missed a delete's
    // write quorum — that is the algorithm's design. What must hold: every
    // leftover entry other than the fences is a ghost, i.e. outvoted by a
    // higher gap version somewhere, which the suite-level lookups above
    // verified. Structurally, each representative must still be sound:
    for rep in dir.reps() {
        rep.snapshot().check_invariants().unwrap();
    }
}

/// Read-only transactions running against writers observe consistent
/// snapshots of a two-key invariant (both keys updated in one transaction;
/// readers lock both before reading either).
#[test]
fn readers_see_atomic_writes() {
    let dir = dir_322(3);
    let left = Key::from("pair/left");
    let right = Key::from("pair/right");
    dir.insert(&left, &value_u64(0)).unwrap();
    dir.insert(&right, &value_u64(0)).unwrap();

    let writer = {
        let dir = Arc::clone(&dir);
        let (left, right) = (left.clone(), right.clone());
        std::thread::spawn(move || {
            for i in 1..=50u64 {
                dir.run(|suite| {
                    suite.update(&left, &value_u64(i))?;
                    suite.update(&right, &value_u64(i))?;
                    Ok(())
                })
                .expect("paired update");
            }
        })
    };
    let reader = {
        let dir = Arc::clone(&dir);
        let (left, right) = (left.clone(), right.clone());
        std::thread::spawn(move || {
            for _ in 0..50 {
                let (l, r) = dir
                    .run(|suite| {
                        let l = parse_u64(suite.lookup(&left)?.value.as_ref().unwrap());
                        let r = parse_u64(suite.lookup(&right)?.value.as_ref().unwrap());
                        Ok((l, r))
                    })
                    .expect("paired read");
                assert_eq!(l, r, "reader observed a torn write");
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    let l = parse_u64(dir.lookup(&left).unwrap().value.as_ref().unwrap());
    assert_eq!(l, 50);
}

/// Deadlock-prone workload: transactions acquire two keys in opposite
/// orders. The stack must resolve every collision (deadlock detection or
/// timeout + retry) and finish with both keys intact.
#[test]
fn opposite_order_lockers_always_terminate() {
    let dir = dir_322(4);
    let a = Key::from("dl/a");
    let b = Key::from("dl/z");
    dir.insert(&a, &value_u64(0)).unwrap();
    dir.insert(&b, &value_u64(0)).unwrap();

    let mut handles = Vec::new();
    for t in 0..2 {
        let dir = Arc::clone(&dir);
        let (first, second) = if t == 0 {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        handles.push(std::thread::spawn(move || {
            for i in 0..15u64 {
                dir.run(|suite| {
                    let x = parse_u64(suite.lookup(&first)?.value.as_ref().unwrap());
                    suite.update(&first, &value_u64(x + 1))?;
                    let y = parse_u64(suite.lookup(&second)?.value.as_ref().unwrap());
                    suite.update(&second, &value_u64(y + 1))?;
                    let _ = i;
                    Ok(())
                })
                .expect("two-key transaction");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Every transaction incremented both keys exactly once per iteration.
    let va = parse_u64(dir.lookup(&a).unwrap().value.as_ref().unwrap());
    let vb = parse_u64(dir.lookup(&b).unwrap().value.as_ref().unwrap());
    assert_eq!(va, 30);
    assert_eq!(vb, 30);
}
