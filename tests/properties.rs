//! Property-based tests of the core invariants, via proptest.

use repdir::core::proptest_mini::prelude::*;
use repdir::core::suite::{DirSuite, SuiteConfig};
use repdir::core::{GapMap, Key, UserKey, Value, Version};
use repdir::storage::{decode_log, encode_record, GapBTree, WalRecord};
use repdir::txn::{apply_undo, undo_for_coalesce, undo_for_insert};
use std::collections::BTreeMap;

/// An abstract operation over a small key universe.
#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u8),
    Update(u8, u8),
    Delete(u8),
    Lookup(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 24, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k % 24, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 24)),
        any::<u8>().prop_map(|k| Op::Lookup(k % 24)),
    ]
}

fn key_of(k: u8) -> Key {
    Key::User(UserKey::from_u64(k as u64))
}

fn value_of(v: u8) -> Value {
    Value::from(vec![v])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The suite agrees with a sequential map model under any operation
    /// sequence and any random-quorum seed, for every legal small
    /// configuration.
    #[test]
    fn suite_matches_sequential_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        seed in any::<u64>(),
        cfg_choice in 0usize..5,
        batch in 1usize..5,
    ) {
        let (n, r, w) = [(1, 1, 1), (2, 1, 2), (3, 2, 2), (4, 2, 3), (5, 3, 3)][cfg_choice];
        let config = SuiteConfig::symmetric(n, r, w).expect("legal");
        let mut suite = DirSuite::in_process(config, seed).expect("suite");
        suite.set_neighbor_batch(batch);
        let mut model: BTreeMap<u8, u8> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let result = suite.insert(&key_of(k), &value_of(v));
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        prop_assert!(result.is_ok());
                        e.insert(v);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Update(k, v) => {
                    let result = suite.update(&key_of(k), &value_of(v));
                    if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(k) {
                        prop_assert!(result.is_ok());
                        e.insert(v);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Delete(k) => {
                    let result = suite.delete(&key_of(k));
                    if model.remove(&k).is_some() {
                        prop_assert!(result.is_ok());
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Lookup(k) => {
                    let out = suite.lookup(&key_of(k)).expect("lookup");
                    prop_assert_eq!(out.present, model.contains_key(&k));
                    if let Some(v) = model.get(&k) {
                        prop_assert_eq!(out.value, Some(value_of(*v)));
                    }
                }
            }
        }
        // Exhaustive final check over the whole key universe.
        for k in 0u8..24 {
            let out = suite.lookup(&key_of(k)).expect("final lookup");
            prop_assert_eq!(out.present, model.contains_key(&k), "key {}", k);
        }
    }

    /// GapMap structural invariants hold under arbitrary single-rep
    /// operation sequences, and the version function stays total.
    #[test]
    fn gapmap_invariants(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut m = GapMap::new();
        let mut version = Version::ZERO;
        for op in ops {
            version = version.next();
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    m.insert(&key_of(k), version, value_of(v)).expect("insert");
                }
                Op::Delete(k) => {
                    // Coalesce the range between the key's neighbors if the
                    // boundaries exist (mimicking a suite delete locally).
                    let lo = m.predecessor(&key_of(k)).expect("pred").key;
                    let hi = m.successor(&key_of(k)).expect("succ").key;
                    if lo < hi {
                        m.coalesce(&lo, &hi, version).expect("coalesce");
                    }
                }
                Op::Lookup(k) => {
                    let _ = m.lookup(&key_of(k));
                }
            }
            m.check_invariants().expect("invariants");
            // version_of must answer for any key, stored or not.
            let _ = m.version_of(&key_of(255));
            let _ = m.version_of(&Key::Low);
            let _ = m.version_of(&Key::High);
        }
        // Gap count is always entries + 1.
        prop_assert_eq!(m.gaps().count(), m.len() + 1);
    }

    /// The B-tree representation is observationally identical to GapMap
    /// under arbitrary operation sequences, for several node orders.
    #[test]
    fn gapbtree_equals_gapmap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        order in 3usize..10,
    ) {
        let mut m = GapMap::new();
        let mut t = GapBTree::new(order);
        let mut version = Version::ZERO;
        for op in ops {
            version = version.next();
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    let rm = m.insert(&key_of(k), version, value_of(v));
                    let rt = t.insert(&key_of(k), version, value_of(v));
                    prop_assert_eq!(rm, rt);
                }
                Op::Delete(k) => {
                    let lo = m.predecessor(&key_of(k)).expect("pred").key;
                    let hi = m.successor(&key_of(k)).expect("succ").key;
                    if lo < hi {
                        let rm = m.coalesce(&lo, &hi, version);
                        let rt = t.coalesce(&lo, &hi, version);
                        prop_assert_eq!(rm, rt);
                    }
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(m.lookup(&key_of(k)), t.lookup(&key_of(k)));
                    prop_assert_eq!(m.predecessor(&key_of(k)), t.predecessor(&key_of(k)));
                    prop_assert_eq!(m.successor(&key_of(k)), t.successor(&key_of(k)));
                }
            }
        }
        t.check_invariants().expect("btree invariants");
        let tree_entries = t.iter_collect();
        let map_entries: Vec<_> = m.iter().map(|(k, v, val)| (k.clone(), v, val.clone())).collect();
        prop_assert_eq!(tree_entries, map_entries);
        prop_assert_eq!(t.gaps(), m.gaps().collect::<Vec<_>>());
    }

    /// Undoing any mutation sequence in reverse restores the exact initial
    /// state (the abort path can never leave residue).
    #[test]
    fn undo_restores_initial_state(
        setup in proptest::collection::vec(op_strategy(), 0..40),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut m = GapMap::new();
        let mut version = Version::ZERO;
        // Arbitrary committed starting state.
        for op in setup {
            version = version.next();
            if let Op::Insert(k, v) | Op::Update(k, v) = op {
                m.insert(&key_of(k), version, value_of(v)).expect("setup");
            }
        }
        let before = m.clone();
        let mut log = Vec::new();
        for op in ops {
            version = version.next();
            match op {
                Op::Insert(k, v) | Op::Update(k, v) => {
                    let out = m.insert(&key_of(k), version, value_of(v)).expect("insert");
                    log.push(undo_for_insert(&key_of(k), &out));
                }
                Op::Delete(k) => {
                    let lo = m.predecessor(&key_of(k)).expect("pred").key;
                    let hi = m.successor(&key_of(k)).expect("succ").key;
                    if lo < hi {
                        let out = m.coalesce(&lo, &hi, version).expect("coalesce");
                        log.push(undo_for_coalesce(&lo, &out));
                    }
                }
                Op::Lookup(_) => {}
            }
        }
        for rec in log.into_iter().rev() {
            apply_undo(&mut m, rec);
        }
        prop_assert_eq!(m, before);
    }

    /// WAL records survive encode/decode for arbitrary contents, and any
    /// truncation of a record stream decodes to a clean prefix.
    #[test]
    fn wal_roundtrip_and_truncation(
        txns in proptest::collection::vec((any::<u64>(), any::<u8>(), any::<u8>()), 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let records: Vec<WalRecord> = txns
            .iter()
            .flat_map(|&(t, k, v)| {
                vec![
                    WalRecord::Begin { txn: t },
                    WalRecord::Insert {
                        txn: t,
                        key: key_of(k),
                        version: Version::new(v as u64),
                        value: value_of(v),
                    },
                    WalRecord::Commit { txn: t },
                ]
            })
            .collect();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for rec in &records {
            log.extend(encode_record(rec));
            boundaries.push(log.len());
        }
        // Full decode is clean and exact.
        let (decoded, clean) = decode_log(&log);
        prop_assert!(clean);
        prop_assert_eq!(&decoded, &records);
        // Any truncation decodes to a prefix of the records.
        let cut = (log.len() as f64 * cut_fraction) as usize;
        let (prefix, clean) = decode_log(&log[..cut]);
        prop_assert!(prefix.len() <= records.len());
        prop_assert_eq!(&prefix[..], &records[..prefix.len()]);
        prop_assert_eq!(clean, boundaries.contains(&cut));
    }

    /// Version numbers at every representative never decrease for any key
    /// across a workload (the monotonicity the correctness argument needs).
    #[test]
    fn per_key_versions_never_regress(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        seed in any::<u64>(),
    ) {
        let config = SuiteConfig::symmetric(3, 2, 2).expect("legal");
        let mut suite = DirSuite::in_process(config, seed).expect("suite");
        let mut model: BTreeMap<u8, u8> = BTreeMap::new();
        // floor[rep][key] = highest version ever observed there.
        let mut floor = vec![[Version::ZERO; 24]; 3];
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    model.entry(k).or_insert_with(|| {
                        suite.insert(&key_of(k), &value_of(v)).expect("insert");
                        v
                    });
                }
                Op::Update(k, v) => {
                    if model.contains_key(&k) {
                        suite.update(&key_of(k), &value_of(v)).expect("update");
                    }
                }
                Op::Delete(k) => {
                    if model.remove(&k).is_some() {
                        suite.delete(&key_of(k)).expect("delete");
                    }
                }
                Op::Lookup(_) => {}
            }
            for (rep, rep_floor) in floor.iter_mut().enumerate() {
                let snap = suite.member(rep).snapshot();
                for k in 0u8..24 {
                    let v = snap.version_of(&key_of(k));
                    prop_assert!(
                        v >= rep_floor[k as usize],
                        "rep {} key {} regressed {:?} -> {:?}",
                        rep, k, rep_floor[k as usize], v
                    );
                    rep_floor[k as usize] = v;
                }
            }
        }
    }
}
