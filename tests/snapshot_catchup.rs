//! Fault-injection suite for streamed snapshot catch-up: a far-diverged
//! member converging by full-state stream instead of per-bucket pulls.
//!
//! The tentpole property, over several random histories: a member
//! partitioned through a random insert/update/delete workload converges
//! back to **byte-identical** state via a resumable snapshot stream —
//! surviving the snapshot peer dying mid-stream *and* the receiver
//! crashing mid-install — without spending a single quorum collection.
//! The resume is a true resume: after the faults, the installer's next
//! chunk request carries the cursor of the last flushed key, never `None`
//! (which would restart the walk from the beginning).

use repdir::core::rng::StdRng;
use repdir::core::suite::{FixedPolicy, SuiteConfig};
use repdir::core::{Key, RepId, SuiteError, UserKey, Value, Version};
use repdir::repair::{CatchupStream, RepairError, RepairTarget};
use repdir::replica::{LocalSnapshotPeer, RepTarget, ReplicatedDirectory, TransactionalRep};
use repdir::snapshot::{SnapshotChunk, SnapshotInstaller, SnapshotManifest, SnapshotPeer};
use repdir::txn::TxnId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Counter-exact tests share one process-global obs registry, so they must
/// not interleave with each other's quorum traffic.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

const KEYSPACE: u8 = 48;

/// Single-byte keys, so consecutive key values land in distinct summary
/// buckets — the stream flushes (and advances its durable cursor) as it
/// crosses bucket boundaries.
fn user_key(k: u8) -> Key {
    Key::User(UserKey::new(vec![k]))
}

/// One random workload step against the directory and a model, with the
/// quorum pinned to `order` (the victim last, so it never votes and the
/// two survivors stay byte-identical to the model).
fn step(
    dir: &ReplicatedDirectory,
    order: &[usize],
    model: &mut BTreeMap<u8, u8>,
    rng: &mut StdRng,
) -> Result<(), SuiteError> {
    let k = rng.gen_range(0u8..KEYSPACE);
    let key = user_key(k);
    let v: u8 = rng.gen();
    let mut txn = dir.begin_with_policy(Box::new(FixedPolicy::with_order(order.to_vec())));
    let out = match rng.gen_range(0..4u8) {
        0 if !model.contains_key(&k) => {
            txn.suite_mut()
                .insert(&key, &Value::from(vec![v]))
                .map(|_| {
                    model.insert(k, v);
                })
        }
        1 if model.contains_key(&k) => {
            txn.suite_mut()
                .update(&key, &Value::from(vec![v]))
                .map(|_| {
                    model.insert(k, v);
                })
        }
        2 if model.contains_key(&k) => txn.suite_mut().delete(&key).map(|_| {
            model.remove(&k);
        }),
        _ => txn.suite_mut().lookup(&key).map(|out| {
            assert_eq!(out.present, model.contains_key(&k));
        }),
    };
    txn.commit();
    out
}

/// A snapshot peer that records every chunk cursor it is asked for and
/// dies (once) after a configured number of chunk calls — the "peer killed
/// mid-stream" fault. After the kill it serves normally, modelling the
/// peer's process coming back.
struct KillablePeer {
    inner: LocalSnapshotPeer,
    calls_before_death: AtomicU64,
    afters: Mutex<Vec<Option<UserKey>>>,
}

impl KillablePeer {
    fn new(inner: LocalSnapshotPeer, calls_before_death: u64) -> Self {
        KillablePeer {
            inner,
            calls_before_death: AtomicU64::new(calls_before_death),
            afters: Mutex::new(Vec::new()),
        }
    }
}

/// Shared handle to a [`KillablePeer`], so the test keeps a view of the
/// recorded cursors while the installer owns the boxed peer.
struct PeerHandle(Arc<KillablePeer>);

impl SnapshotPeer for PeerHandle {
    fn manifest(&self) -> Result<SnapshotManifest, RepairError> {
        self.0.inner.manifest()
    }

    fn chunk(&self, after: Option<&UserKey>, max: u32) -> Result<SnapshotChunk, RepairError> {
        self.0.afters.lock().unwrap().push(after.cloned());
        let left = self.0.calls_before_death.fetch_sub(1, Ordering::Relaxed);
        if left == 0 {
            // One death, then the peer stays back up.
            self.0.calls_before_death.store(u64::MAX, Ordering::Relaxed);
            return Err(RepairError::Unavailable);
        }
        self.0.inner.chunk(after, max)
    }
}

fn run_crashy_catchup(seed: u64) {
    let _guard = serial();
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: BTreeMap<u8, u8> = BTreeMap::new();
    let victim = rng.gen_range(0..3usize);
    let source_member = (victim + 1) % 3;
    let order = [source_member, (victim + 2) % 3, victim];

    // A floor of entries outside the workload's keyspace guarantees the
    // stream is several frames long, so the peer death lands mid-stream.
    for i in 0..16u8 {
        let mut txn = dir.begin_with_policy(Box::new(FixedPolicy::with_order(order.to_vec())));
        txn.suite_mut()
            .insert(&user_key(200 + i), &Value::from(vec![i]))
            .unwrap();
        txn.commit();
        model.insert(200 + i, i);
    }
    // A healthy prefix, then a long partition of the victim: the survivors
    // keep committing, the victim diverges far behind.
    for _ in 0..40 {
        step(&dir, &order, &mut model, &mut rng).expect("op with all members up");
    }
    dir.reps()[victim].set_available(false);
    for _ in 0..100 {
        step(&dir, &order, &mut model, &mut rng).expect("op with one member partitioned");
    }
    dir.reps()[victim].set_available(true);

    let g = repdir::obs::global();
    let waves_before = g.counter("suite.quorum.waves").get();

    // Stream the snapshot from a surviving member with deliberately tiny
    // frames, killing the peer on its fourth chunk call.
    let peer = Arc::new(KillablePeer::new(
        LocalSnapshotPeer::new(Arc::clone(&dir.reps()[source_member])),
        3,
    ));
    let target: Arc<dyn RepairTarget> = Arc::new(RepTarget::new(Arc::clone(&dir.reps()[victim])));
    let mut installer =
        SnapshotInstaller::new(vec![Box::new(PeerHandle(Arc::clone(&peer)))]).with_chunk_entries(4);

    let died = installer.stream(0, &target);
    assert!(died.is_err(), "seed {seed:#x}: peer death must surface");
    assert!(
        installer.in_progress(),
        "interrupted install keeps progress"
    );
    let cursor = installer.resume_cursor().cloned();
    assert!(
        cursor.is_some(),
        "seed {seed:#x}: three flushed frames must leave a resume cursor"
    );

    // The receiver crashes mid-install: everything the installer flushed
    // must already be durable in its WAL, so recovery keeps the prefix.
    dir.reps()[victim].crash_and_recover().unwrap();

    // Resume: converges, and the stream picked up at the stashed cursor.
    let stats = installer.stream(0, &target).expect("resumed stream");
    assert!(stats.resumed, "seed {seed:#x}: second stream must resume");
    assert!(stats.root_matched, "seed {seed:#x}: root digest mismatch");
    let afters = peer.afters.lock().unwrap().clone();
    assert_eq!(afters[0], None, "first stream starts at the beginning");
    // Calls 0..=2 streamed, call 3 died, call 4 is the resume.
    assert_eq!(
        afters[4], cursor,
        "seed {seed:#x}: resume did not honor the stashed chunk cursor"
    );
    assert!(
        afters[4..].iter().all(|a| a.is_some()),
        "seed {seed:#x}: a post-resume chunk restarted from the beginning"
    );

    // Byte-identical convergence: victim == source, and both match the
    // model byte for byte.
    assert_eq!(
        dir.reps()[source_member].snapshot(),
        dir.reps()[victim].snapshot(),
        "seed {seed:#x}: stream did not converge the victim"
    );
    let mut stored: Vec<(UserKey, Value)> = Vec::new();
    dir.reps()[victim]
        .snapshot()
        .range_scan(None, None, &mut |k, _, v, _| {
            stored.push((k.clone(), v.clone()));
        });
    let expect: Vec<(UserKey, Value)> = model
        .iter()
        .map(|(mk, mv)| (UserKey::new(vec![*mk]), Value::from(vec![*mv])))
        .collect();
    assert_eq!(stored, expect, "seed {seed:#x}: converged state != model");

    // Idempotent re-install: a second full stream applies nothing.
    let mut again = SnapshotInstaller::new(vec![Box::new(PeerHandle(Arc::clone(&peer)))]);
    let restats = again.stream(0, &target).expect("re-install");
    assert!(restats.root_matched);
    assert_eq!(
        restats.applied.total(),
        0,
        "seed {seed:#x}: re-installing a converged replica applied steps"
    );

    // The whole catch-up — install, crash, resume, re-install — spent zero
    // quorum collections: snapshot transfer moves committed facts at
    // pinned versions, which is sound without any vote.
    assert_eq!(
        g.counter("suite.quorum.waves").get(),
        waves_before,
        "seed {seed:#x}: catch-up collected a quorum"
    );
}

#[test]
fn interrupted_snapshot_catchup_resumes_and_converges() {
    run_crashy_catchup(0x5AFE_0001);
}

#[test]
fn snapshot_catchup_holds_across_random_histories() {
    for seed in 0..4u64 {
        run_crashy_catchup(0x5AFE_1000 + seed);
    }
}

/// Seeds `n` committed single-byte-key entries on a bare representative.
fn seeded_rep(id: u32, n: u8) -> Arc<TransactionalRep> {
    let rep = TransactionalRep::new(RepId(id));
    let t = TxnId(1);
    rep.begin(t).unwrap();
    for i in 0..n {
        rep.insert(
            t,
            &user_key(i),
            Version::new(u64::from(i) + 1),
            &Value::from(vec![i]),
        )
        .unwrap();
    }
    rep.commit(t).unwrap();
    rep
}

/// A dead snapshot peer only ever costs an `Unavailable` error and a
/// stashed cursor — never a partial-progress wipe: a later stream against
/// a different healthy peer continues from where the dead one stopped.
#[test]
fn snapshot_stream_rotates_peers_without_losing_the_cursor() {
    let source_a = seeded_rep(0, 24);
    let source_b = seeded_rep(1, 24); // byte-identical twin
    let receiver = TransactionalRep::new(RepId(2));
    let target: Arc<dyn RepairTarget> = Arc::new(RepTarget::new(Arc::clone(&receiver)));

    // Peer 0 dies on its second chunk; peer 1 stays healthy.
    let dying = Arc::new(KillablePeer::new(
        LocalSnapshotPeer::new(Arc::clone(&source_a)),
        1,
    ));
    let healthy = Arc::new(KillablePeer::new(
        LocalSnapshotPeer::new(Arc::clone(&source_b)),
        u64::MAX,
    ));
    let mut installer = SnapshotInstaller::new(vec![
        Box::new(PeerHandle(Arc::clone(&dying))),
        Box::new(PeerHandle(Arc::clone(&healthy))),
    ])
    .with_chunk_entries(4);

    assert!(installer.stream(0, &target).is_err());
    let cursor = installer.resume_cursor().cloned();
    assert!(cursor.is_some(), "one flushed frame leaves a cursor");
    let stats = installer
        .stream(1, &target)
        .expect("healthy peer finishes the stream");
    assert!(stats.resumed);
    assert!(stats.root_matched);
    let healthy_afters = healthy.afters.lock().unwrap().clone();
    assert_eq!(
        healthy_afters.first().cloned(),
        Some(cursor),
        "the replacement peer was asked to continue, not restart"
    );
    assert_eq!(source_a.snapshot(), receiver.snapshot());
}

/// The snapshot install path refuses to move any version down: installing
/// a *stale* snapshot over a newer replica is a no-op, not a rollback.
#[test]
fn stale_snapshot_never_rolls_a_newer_replica_back() {
    let old = TransactionalRep::new(RepId(0));
    let t = TxnId(1);
    old.begin(t).unwrap();
    old.insert(t, &user_key(1), Version::new(1), &Value::from("old"))
        .unwrap();
    old.commit(t).unwrap();

    let newer = TransactionalRep::new(RepId(1));
    let t = TxnId(2);
    newer.begin(t).unwrap();
    newer
        .insert(t, &user_key(1), Version::new(2), &Value::from("new"))
        .unwrap();
    newer
        .insert(t, &user_key(2), Version::new(3), &Value::from("extra"))
        .unwrap();
    newer.commit(t).unwrap();

    let target: Arc<dyn RepairTarget> = Arc::new(RepTarget::new(Arc::clone(&newer)));
    let before = newer.snapshot();
    let mut installer =
        SnapshotInstaller::new(vec![Box::new(LocalSnapshotPeer::new(Arc::clone(&old)))]);
    let stats = installer.stream(0, &target).expect("stale stream");
    // Nothing in the old snapshot supersedes the newer replica: no step
    // may land, and the state is bit-for-bit untouched.
    assert_eq!(stats.applied.total(), 0);
    assert!(!stats.root_matched, "a stale manifest must not match");
    assert_eq!(newer.snapshot(), before);
}
