//! Randomized failure injection against the full transactional stack:
//! representatives flap up and down between operations; operations either
//! succeed (and must be correct) or fail cleanly (and must leave no trace).

use repdir::core::rng::StdRng;
use repdir::core::suite::SuiteConfig;
use repdir::core::{Key, SuiteError, UserKey, Value};
use repdir::replica::ReplicatedDirectory;
use std::collections::BTreeMap;

fn run_flapping(seed: u64, rep_up_prob: f64, ops: u32) {
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: BTreeMap<u8, u8> = BTreeMap::new();
    let mut succeeded = 0u32;
    let mut unavailable = 0u32;

    for step in 0..ops {
        // Flap representatives.
        for rep in dir.reps() {
            rep.set_available(rng.gen_bool(rep_up_prob));
        }
        let k = rng.gen_range(0u8..16);
        let key = Key::User(UserKey::from_u64(k as u64));
        let v: u8 = rng.gen();
        let value = Value::from(vec![v]);
        let in_model = model.contains_key(&k);
        // The keys a failed op must leave untouched (bulk ops widen this).
        let mut touched: Vec<u8> = vec![k];

        let result: Result<(), SuiteError> = match rng.gen_range(0..7u8) {
            0 if !in_model => dir.insert(&key, &value).map(|_| {
                model.insert(k, v);
            }),
            1 if in_model => dir.update(&key, &value).map(|_| {
                model.insert(k, v);
            }),
            2 if in_model => dir.delete(&key).map(|_| {
                model.remove(&k);
            }),
            3 => dir.scan().map(|listed| {
                // A scan that succeeds through flapping members (session
                // re-validation routing around the dead) must still list
                // exactly the model's contents, in order.
                let expect: Vec<(UserKey, Value)> = model
                    .iter()
                    .map(|(mk, mv)| (UserKey::from_u64(*mk as u64), Value::from(vec![*mv])))
                    .collect();
                assert_eq!(listed, expect, "step {step}: scan disagreed with the model");
            }),
            5 => {
                // Bulk insert of up to four keys absent from the model; the
                // directory wrapper makes the batch transactional, so on Ok
                // every key landed and on Err none did.
                let fresh: Vec<u8> = (0..4u8)
                    .map(|d| k.wrapping_add(d) % 16)
                    .filter(|kk| !model.contains_key(kk))
                    .collect();
                touched = fresh.clone();
                let entries: Vec<(Key, Value)> = fresh
                    .iter()
                    .map(|&kk| {
                        (
                            Key::User(UserKey::from_u64(kk as u64)),
                            Value::from(vec![v]),
                        )
                    })
                    .collect();
                dir.insert_many(&entries).map(|_| {
                    for &kk in &fresh {
                        model.insert(kk, v);
                    }
                })
            }
            6 => {
                // Bulk delete of up to four keys currently in the model.
                let present: Vec<u8> = model.keys().copied().take(4).collect();
                touched = present.clone();
                let keys: Vec<Key> = present
                    .iter()
                    .map(|&kk| Key::User(UserKey::from_u64(kk as u64)))
                    .collect();
                dir.delete_many(&keys).map(|_| {
                    for &kk in &present {
                        model.remove(&kk);
                    }
                })
            }
            _ => dir.lookup(&key).map(|out| {
                assert_eq!(
                    out.present, in_model,
                    "step {step}: lookup({k}) disagreed with the model"
                );
                if let Some(mv) = model.get(&k) {
                    assert_eq!(out.value, Some(Value::from(vec![*mv])));
                }
            }),
        };
        match result {
            Ok(()) => succeeded += 1,
            Err(SuiteError::QuorumUnavailable { .. }) | Err(SuiteError::Rep(_)) => {
                unavailable += 1;
                // Failed operations must leave no logical trace; verify by
                // healing and re-reading every key the op touched.
                for rep in dir.reps() {
                    rep.set_available(true);
                }
                for &kk in &touched {
                    let key = Key::User(UserKey::from_u64(kk as u64));
                    let out = dir.lookup(&key).expect("lookup with all up");
                    assert_eq!(
                        out.present,
                        model.contains_key(&kk),
                        "step {step}: failed op left residue on {kk}"
                    );
                }
            }
            Err(e) => panic!("step {step}: unexpected error {e}"),
        }
    }

    // Final audit with everything healed.
    for rep in dir.reps() {
        rep.set_available(true);
    }
    for k in 0u8..16 {
        let key = Key::User(UserKey::from_u64(k as u64));
        let out = dir.lookup(&key).expect("final lookup");
        assert_eq!(out.present, model.contains_key(&k), "final audit of {k}");
    }
    let listed = dir.scan().expect("final scan with all up");
    let expect: Vec<(UserKey, Value)> = model
        .iter()
        .map(|(mk, mv)| (UserKey::from_u64(*mk as u64), Value::from(vec![*mv])))
        .collect();
    assert_eq!(listed, expect, "final scan audit");
    // Sanity on the mix: with p=0.8 both outcomes should appear.
    if rep_up_prob < 0.95 {
        assert!(succeeded > 0, "nothing succeeded");
        assert!(unavailable > 0, "nothing failed — flapping ineffective?");
    }
}

#[test]
fn flapping_reps_at_80_percent() {
    run_flapping(0xF1A9, 0.8, 300);
}

#[test]
fn flapping_reps_at_60_percent() {
    run_flapping(0xF1AA, 0.6, 300);
}

#[test]
fn flapping_reps_at_95_percent_multiple_seeds() {
    for seed in 0..4 {
        run_flapping(0xF200 + seed, 0.95, 200);
    }
}

/// Crash-recover a representative *between* operations of the same
/// workload: recovery must agree with the model exactly.
#[test]
fn random_crashes_between_operations() {
    let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 0xCAFE).unwrap();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let mut model: BTreeMap<u8, u8> = BTreeMap::new();
    for _ in 0..250 {
        if rng.gen_bool(0.1) {
            let victim = rng.gen_range(0..3usize);
            dir.reps()[victim].crash_and_recover().unwrap();
        }
        let k = rng.gen_range(0u8..12);
        let key = Key::User(UserKey::from_u64(k as u64));
        let v: u8 = rng.gen();
        match rng.gen_range(0..3u8) {
            0 if !model.contains_key(&k) => {
                dir.insert(&key, &Value::from(vec![v])).unwrap();
                model.insert(k, v);
            }
            1 if model.contains_key(&k) => {
                dir.delete(&key).unwrap();
                model.remove(&k);
            }
            _ => {
                let out = dir.lookup(&key).unwrap();
                assert_eq!(out.present, model.contains_key(&k));
            }
        }
    }
}
