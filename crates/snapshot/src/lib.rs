//! # repdir-snapshot
//!
//! Streamed full-state catch-up for far-diverged representatives.
//!
//! Summary-tree repair (`repdir-repair`) wins when divergence is sparse:
//! one walk finds the `k` dirty buckets and `2k` messages fix them. A
//! member that was down long enough to diverge in *most* buckets inverts
//! the trade — up to 256 pulls plus per-key merge work to transfer what is
//! essentially the whole directory. Past that threshold, directory
//! reconciliation is cheapest done wholesale: stream the peer's state in
//! key order as bounded chunks and install it in one pass.
//!
//! * [`SnapshotSource`] walks a frozen [`GapMap`] view in key order,
//!   serving a [`SnapshotManifest`] (root digest, entry count, leading-gap
//!   version) and bounded [`SnapshotChunk`] frames strictly after a cursor
//!   key — the resume point a receiver persists as it flushes buckets.
//! * [`SnapshotPeer`] abstracts the transport; `repdir-replica` provides
//!   in-process and RPC-backed adapters mirroring the repair peers.
//! * [`SnapshotInstaller`] implements the driver-facing
//!   [`CatchupStream`]: it buffers incoming entries per summary bucket and
//!   flushes each completed bucket through the target's **guarded** repair
//!   plan path ([`diff_bucket`] → `RepairTarget::apply`), so an install
//!   never moves a version down and concurrent local writes win by
//!   version. On completion it lands a WAL checkpoint (best-effort) and
//!   verifies the local summary root against the manifest.
//!
//! Soundness is the paper's version rule, unchanged from bucket repair: a
//! version pins exact content and only ever grows, so pointwise
//! "higher version wins" install of a remote snapshot needs **no quorum**
//! — it transfers facts the suite already committed. Resume after a crash
//! or peer death is sound for the same reason: re-fetching from the last
//! *flushed* key re-applies idempotent guarded steps, and buckets flushed
//! from an older freeze are caught by the driver's post-install mop-up
//! walk.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::Arc;

use repdir_core::{GapMap, UserKey, Version};
use repdir_repair::{
    bucket_of, diff_bucket, entry_digest, fold_children, low_gap_digest, BucketEntry, BucketView,
    CatchupStats, CatchupStream, Digest, GapAnchor, RepairError, RepairPlan, RepairTarget, BUCKETS,
    FANOUT, GROUPS,
};

/// Default number of entries per [`SnapshotChunk`] frame.
pub const DEFAULT_CHUNK_ENTRIES: u32 = 512;

/// What a snapshot stream promises before the first chunk: the digest of
/// the frozen state (root hash + total entry count) and the leading-gap
/// version the receiver seeds bucket 0 with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Summary-tree root digest of the frozen state; `root.count` is the
    /// total number of entries the stream will carry.
    pub root: Digest,
    /// Version of the gap between `LOW` and the first entry.
    pub low_gap: Version,
}

impl SnapshotManifest {
    /// Approximate serialized size, for wire-cost accounting.
    pub fn wire_bytes(&self) -> u64 {
        24
    }
}

/// One bounded frame of a snapshot stream: entries in ascending key order,
/// strictly after the requested cursor, each carrying its pinned version,
/// value, and trailing-gap version (the `WalRecord::checkpoint_of` entry
/// shape).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// Entries in ascending key order.
    pub entries: Vec<BucketEntry>,
    /// Whether this frame reaches the end of the key space. A non-`done`
    /// frame must carry at least one entry.
    pub done: bool,
}

impl SnapshotChunk {
    /// Approximate serialized size, for wire-cost accounting.
    pub fn wire_bytes(&self) -> u64 {
        let mut n = 1u64; // done flag
        for e in &self.entries {
            n += e.key.len() as u64 + e.value.len() as u64 + 24;
        }
        n
    }
}

/// A remote representative as seen by the snapshot installer: a manifest
/// endpoint and a cursor-addressed chunk endpoint. Implementations live in
/// `repdir-replica` (in-process and RPC-backed); [`SnapshotSource`] is the
/// in-memory reference.
pub trait SnapshotPeer: Send + Sync {
    /// The manifest of the peer's current state.
    fn manifest(&self) -> Result<SnapshotManifest, RepairError>;
    /// Up to `max` entries strictly after `after` (from the lowest key
    /// when `None`), in ascending key order.
    fn chunk(&self, after: Option<&UserKey>, max: u32) -> Result<SnapshotChunk, RepairError>;
}

/// Serves snapshot frames from a frozen [`GapMap`] view — the reference
/// [`SnapshotPeer`], used directly in tests and benches and as the model
/// the replica-layer endpoints mirror.
#[derive(Clone, Debug)]
pub struct SnapshotSource {
    map: GapMap,
}

impl SnapshotSource {
    /// Freezes `map` as the served state (clone it out of live storage at
    /// freeze time).
    pub fn new(map: GapMap) -> Self {
        SnapshotSource { map }
    }

    /// The frozen state's summary-tree root digest, computed the same way
    /// the incremental `SummaryCache` folds it: 256 bucket digests → 16
    /// group digests → root.
    pub fn root(&self) -> Digest {
        let mut buckets = vec![Digest::default(); BUCKETS];
        self.map.range_scan(None, None, &mut |k, v, _val, gap| {
            let b = bucket_of(k.as_bytes()) as usize;
            buckets[b].hash ^= entry_digest(k.as_bytes(), v, gap);
            buckets[b].count += 1;
        });
        buckets[0].hash ^= low_gap_digest(self.map.low_gap());
        fold_digest_tree(&buckets)
    }
}

/// Folds 256 bucket digests into the summary-tree root (16 groups of
/// [`FANOUT`], then one fold over the groups) — the shape
/// `RepairTarget::children(0, 0)` exposes one level of.
fn fold_digest_tree(buckets: &[Digest]) -> Digest {
    debug_assert_eq!(buckets.len(), BUCKETS);
    let groups: Vec<Digest> = (0..GROUPS)
        .map(|g| fold_children(&buckets[g * FANOUT..(g + 1) * FANOUT]))
        .collect();
    fold_children(&groups)
}

/// The local summary root as seen through a [`RepairTarget`]: one
/// root-level fetch folded to a single digest, comparable against a
/// [`SnapshotManifest::root`].
pub fn target_root(target: &dyn RepairTarget) -> Result<Digest, RepairError> {
    Ok(fold_children(&target.children(0, 0)?))
}

impl SnapshotPeer for SnapshotSource {
    fn manifest(&self) -> Result<SnapshotManifest, RepairError> {
        Ok(SnapshotManifest {
            root: self.root(),
            low_gap: self.map.low_gap(),
        })
    }

    fn chunk(&self, after: Option<&UserKey>, max: u32) -> Result<SnapshotChunk, RepairError> {
        // Strictly-after lower bound: the smallest byte string above `k`
        // is `k ++ 0x00`.
        let low: Option<Vec<u8>> = after.map(|k| {
            let mut b = k.as_bytes().to_vec();
            b.push(0);
            b
        });
        let max = max.max(1) as usize;
        let mut entries = Vec::new();
        let mut overflow = false;
        self.map
            .range_scan(low.as_deref(), None, &mut |k, v, val, gap| {
                if entries.len() < max {
                    entries.push(BucketEntry {
                        key: k.clone(),
                        version: v,
                        value: val.clone(),
                        gap_after: gap,
                    });
                } else {
                    overflow = true;
                }
            });
        Ok(SnapshotChunk {
            entries,
            done: !overflow,
        })
    }
}

impl SnapshotPeer for Arc<SnapshotSource> {
    fn manifest(&self) -> Result<SnapshotManifest, RepairError> {
        self.as_ref().manifest()
    }

    fn chunk(&self, after: Option<&UserKey>, max: u32) -> Result<SnapshotChunk, RepairError> {
        self.as_ref().chunk(after, max)
    }
}

/// Durable resume state of an interrupted install: everything needed to
/// continue from the last *flushed* bucket instead of restarting.
#[derive(Clone, Debug)]
struct Progress {
    /// Manifest of the stream being installed.
    manifest: SnapshotManifest,
    /// Next bucket to flush (`0..=256`; 256 means all flushed).
    bucket: u16,
    /// Last flushed entry key; chunk fetches resume strictly after it.
    cursor: Option<UserKey>,
    /// Gap version extending into `bucket` from below.
    lead: Version,
}

/// Streams a snapshot from one of a set of [`SnapshotPeer`]s into a
/// [`RepairTarget`], implementing the repair driver's [`CatchupStream`].
///
/// Entries are buffered per summary bucket and flushed bucket-at-a-time
/// through [`diff_bucket`] + `RepairTarget::apply` — the same guarded plan
/// path bucket repair uses, so versions never move down and deletions
/// propagate via gap raises (an empty bucket view carrying the snapshot's
/// covering gap dominates the target's stale entries).
///
/// A failed stream keeps its [`Progress`] — cursor, next bucket, carried
/// gap — and the next call resumes there (`CatchupStats::resumed`);
/// buffered-but-unflushed entries are simply re-fetched. Peer indices are
/// expected to align with the driver's repair peers, so the driver's
/// sticky-peer choice picks the same member for both modes.
pub struct SnapshotInstaller {
    peers: Vec<Box<dyn SnapshotPeer>>,
    chunk_entries: u32,
    progress: Option<Progress>,
}

impl fmt::Debug for SnapshotInstaller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotInstaller")
            .field("peers", &self.peers.len())
            .field("chunk_entries", &self.chunk_entries)
            .field("in_progress", &self.progress.is_some())
            .finish()
    }
}

impl SnapshotInstaller {
    /// An installer over `peers` with the default chunk size.
    pub fn new(peers: Vec<Box<dyn SnapshotPeer>>) -> Self {
        SnapshotInstaller {
            peers,
            chunk_entries: DEFAULT_CHUNK_ENTRIES,
            progress: None,
        }
    }

    /// Overrides the number of entries requested per chunk.
    #[must_use]
    pub fn with_chunk_entries(mut self, entries: u32) -> Self {
        self.chunk_entries = entries.max(1);
        self
    }

    /// Whether an interrupted install is pending resume.
    pub fn in_progress(&self) -> bool {
        self.progress.is_some()
    }

    /// The resume cursor of the pending install, if any: the last key
    /// whose bucket was flushed.
    pub fn resume_cursor(&self) -> Option<&UserKey> {
        self.progress.as_ref().and_then(|p| p.cursor.as_ref())
    }

    /// The gap raise carried between flushes: the segment directly after
    /// the last flushed entry (or the low edge, before any entry) must
    /// rise to that entry's `gap_after` (or the manifest's `low_gap`).
    fn carry_raise(prog: &Progress) -> (GapAnchor, Version) {
        match &prog.cursor {
            Some(k) => (GapAnchor::After(k.clone()), prog.lead),
            None => (GapAnchor::LowEdge, prog.lead),
        }
    }

    /// Flushes one bucket: diff the buffered snapshot view against the
    /// local bucket and apply the guarded plan, then advance the durable
    /// progress (cursor, carried gap, next bucket).
    ///
    /// Trailing gap raises are **deferred by one entry**: `apply` realizes
    /// a raise by coalescing up to the *local* successor of its anchor, so
    /// raising directly after this view's last entry — before the next
    /// streamed entry is installed — would overshoot on a sparse receiver
    /// (worst case all the way to `HIGH`), stamping a gap version over
    /// remote entries it was never a fact about and locking their install
    /// out. Instead each flush applies the raise carried from the
    /// *previous* entry, whose stream successor is this view's first
    /// entry, installed by this very plan — the coalesce then lands
    /// exactly on the remote segment boundary. The pending carry is
    /// `(cursor, lead)`, already part of the durable progress, so an
    /// interrupted stream resumes it for free.
    fn flush_bucket(
        prog: &mut Progress,
        target: &Arc<dyn RepairTarget>,
        stats: &mut CatchupStats,
        entries: Vec<BucketEntry>,
    ) -> Result<(), RepairError> {
        let bucket = prog.bucket as u8;
        let view = BucketView {
            lead_gap: prog.lead,
            entries,
        };
        let local = target.bucket(bucket)?;
        let mut plan = diff_bucket(bucket, &local, &view);
        match view.entries.last() {
            Some(last) => {
                plan.gap_raises.retain(|(anchor, _)| match anchor {
                    GapAnchor::LowEdge => false,
                    GapAnchor::After(k) => *k != last.key,
                });
                plan.gap_raises.push(Self::carry_raise(prog));
            }
            // An empty view contributes no raise of its own (its whole
            // range is covered by the pending carry), and the lead raise
            // diff emits for an empty bucket 0 is the carry itself.
            None => plan
                .gap_raises
                .retain(|(anchor, _)| !matches!(anchor, GapAnchor::LowEdge)),
        }
        if !plan.is_empty() {
            stats.applied.absorb(target.apply(&plan)?);
        }
        if let Some(last) = view.entries.last() {
            prog.lead = last.gap_after;
            prog.cursor = Some(last.key.clone());
        }
        prog.bucket += 1;
        Ok(())
    }

    /// The streaming loop, separated so a transient error can stash
    /// `prog` for resume at the call site.
    fn run(
        peer: &dyn SnapshotPeer,
        chunk_entries: u32,
        prog: &mut Progress,
        target: &Arc<dyn RepairTarget>,
        stats: &mut CatchupStats,
    ) -> Result<(), RepairError> {
        // Working state, re-derived from the durable progress: the fetch
        // cursor runs ahead of the flush cursor by at most one buffered
        // bucket, and drops back to it on resume.
        let mut fetch_cursor = prog.cursor.clone();
        let mut pending: Vec<BucketEntry> = Vec::new();
        loop {
            let chunk = peer.chunk(fetch_cursor.as_ref(), chunk_entries)?;
            stats.chunks += 1;
            stats.bytes += chunk.wire_bytes();
            if chunk.entries.is_empty() && !chunk.done {
                return Err(RepairError::Protocol(
                    "snapshot chunk carried no entries before done".into(),
                ));
            }
            for entry in chunk.entries {
                if fetch_cursor.as_ref().is_some_and(|c| entry.key <= *c) {
                    return Err(RepairError::Protocol(format!(
                        "snapshot chunk out of order at {:?}",
                        entry.key
                    )));
                }
                fetch_cursor = Some(entry.key.clone());
                stats.entries += 1;
                let bucket = bucket_of(entry.key.as_bytes()) as u16;
                if bucket < prog.bucket {
                    // A key written on the peer behind our flush point
                    // (the peer serves live committed state, not a true
                    // freeze). Its bucket is already flushed; the driver's
                    // post-install walk mops it up.
                    continue;
                }
                while prog.bucket < bucket {
                    let batch = std::mem::take(&mut pending);
                    Self::flush_bucket(prog, target, stats, batch)?;
                }
                pending.push(entry);
            }
            if chunk.done {
                break;
            }
        }
        // Flush the final buffered bucket and every (empty) bucket after
        // it: the carried gap version must still dominate stale local
        // entries all the way to the high edge.
        while prog.bucket < BUCKETS as u16 {
            let batch = std::mem::take(&mut pending);
            Self::flush_bucket(prog, target, stats, batch)?;
        }
        // The last entry's trailing raise (or the lone lead raise of an
        // empty snapshot) has no successor left to defer to: the remote's
        // final segment genuinely runs to `HIGH`, so the coalesce-to-local-
        // successor realization is exact here.
        let final_plan = RepairPlan {
            gap_raises: vec![Self::carry_raise(prog)],
            ..RepairPlan::default()
        };
        stats.applied.absorb(target.apply(&final_plan)?);
        // Completion: land a durable checkpoint (best-effort — a busy
        // representative just checkpoints later) and verify the local root
        // against the manifest. A mismatch is advisory: concurrent writes
        // during the install legitimately move the root past the freeze.
        let _ = target.checkpoint();
        stats.root_matched = target
            .children(0, 0)
            .map(|groups| fold_children(&groups) == prog.manifest.root)
            .unwrap_or(false);
        Ok(())
    }
}

impl CatchupStream for SnapshotInstaller {
    fn stream(
        &mut self,
        peer_idx: usize,
        target: &Arc<dyn RepairTarget>,
    ) -> Result<CatchupStats, RepairError> {
        let peer = self
            .peers
            .get(peer_idx)
            .ok_or_else(|| RepairError::Protocol(format!("no snapshot peer {peer_idx}")))?;
        let mut stats = CatchupStats::default();
        let mut prog = match self.progress.take() {
            Some(p) => {
                stats.resumed = true;
                p
            }
            None => {
                let manifest = peer.manifest()?;
                stats.bytes += manifest.wire_bytes();
                Progress {
                    manifest,
                    bucket: 0,
                    cursor: None,
                    lead: manifest.low_gap,
                }
            }
        };
        match Self::run(
            peer.as_ref(),
            self.chunk_entries,
            &mut prog,
            target,
            &mut stats,
        ) {
            Ok(()) => Ok(stats),
            Err(e) => {
                // Keep the flush cursor for resume-not-restart.
                self.progress = Some(prog);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repdir_core::{Key, Value};
    use repdir_repair::{ApplyStats, GapAnchor, RepairPlan, SummaryCache};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    fn k(s: &[u8]) -> UserKey {
        UserKey::new(s)
    }

    fn v(n: u64) -> Version {
        Version::new(n)
    }

    /// A toy representative storing bucket views directly — the same
    /// fixture shape the repairer's own tests use; the real adapter lives
    /// in repdir-replica.
    struct MemRep {
        cache: SummaryCache,
        buckets: Mutex<Vec<BucketView>>,
        checkpoints: AtomicU64,
    }

    impl MemRep {
        fn new() -> Arc<Self> {
            Arc::new(MemRep {
                cache: SummaryCache::new(),
                buckets: Mutex::new(vec![BucketView::default(); BUCKETS]),
                checkpoints: AtomicU64::new(0),
            })
        }

        fn insert(&self, key: &[u8], version: u64, gap_after: u64) {
            let mut buckets = self.buckets.lock().unwrap();
            let view = &mut buckets[bucket_of(key) as usize];
            let key_owned = k(key);
            let idx = view.entries.partition_point(|e| e.key < key_owned);
            let entry = BucketEntry {
                key: key_owned,
                version: v(version),
                value: Value::new([key[0], version as u8]),
                gap_after: v(gap_after),
            };
            if view.entries.get(idx).is_some_and(|e| e.key == entry.key) {
                view.entries[idx] = entry;
            } else {
                view.entries.insert(idx, entry);
            }
            self.cache.mark(key);
        }

        fn digest_bucket(&self, b: u8) -> Digest {
            let buckets = self.buckets.lock().unwrap();
            let view = &buckets[b as usize];
            let mut hash = 0u64;
            for e in &view.entries {
                hash ^= entry_digest(e.key.as_bytes(), e.version, e.gap_after);
            }
            if b == 0 {
                hash ^= low_gap_digest(view.lead_gap);
            }
            Digest {
                hash,
                count: view.entries.len() as u64,
            }
        }

        fn version_of(&self, key: &[u8]) -> Option<Version> {
            let buckets = self.buckets.lock().unwrap();
            buckets[bucket_of(key) as usize]
                .entries
                .iter()
                .find(|e| e.key.as_bytes() == key)
                .map(|e| e.version)
        }
    }

    impl RepairTarget for MemRep {
        fn children(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError> {
            Ok(self
                .cache
                .children(level, path, &mut |b| self.digest_bucket(b)))
        }

        fn bucket(&self, bucket: u8) -> Result<BucketView, RepairError> {
            Ok(self.buckets.lock().unwrap()[bucket as usize].clone())
        }

        fn apply(&self, plan: &RepairPlan) -> Result<ApplyStats, RepairError> {
            let mut stats = ApplyStats::default();
            for (key, version, value) in &plan.installs {
                let mut buckets = self.buckets.lock().unwrap();
                let view = &mut buckets[bucket_of(key.as_bytes()) as usize];
                let idx = view.entries.partition_point(|e| e.key < *key);
                let at = view.entries.get(idx).filter(|e| e.key == *key);
                let gap = if idx == 0 {
                    view.lead_gap
                } else {
                    view.entries[idx - 1].gap_after
                };
                match at {
                    Some(e) if e.version >= *version => continue,
                    Some(_) => {
                        view.entries[idx].version = *version;
                        view.entries[idx].value = value.clone();
                    }
                    None => view.entries.insert(
                        idx,
                        BucketEntry {
                            key: key.clone(),
                            version: *version,
                            value: value.clone(),
                            gap_after: gap,
                        },
                    ),
                }
                self.cache.mark(key.as_bytes());
                stats.installed += 1;
            }
            for (key, covering) in &plan.ghosts {
                let mut buckets = self.buckets.lock().unwrap();
                let view = &mut buckets[bucket_of(key.as_bytes()) as usize];
                if let Ok(idx) = view.entries.binary_search_by(|e| e.key.cmp(key)) {
                    if view.entries[idx].version < *covering {
                        view.entries.remove(idx);
                        if idx == 0 {
                            view.lead_gap = *covering;
                        } else {
                            view.entries[idx - 1].gap_after = *covering;
                        }
                        self.cache.mark(key.as_bytes());
                        stats.ghosts_removed += 1;
                    }
                }
            }
            for (anchor, to) in &plan.gap_raises {
                let mut buckets = self.buckets.lock().unwrap();
                match anchor {
                    GapAnchor::LowEdge => {
                        if buckets[0].lead_gap < *to {
                            buckets[0].lead_gap = *to;
                            self.cache.mark(b"");
                            stats.gaps_raised += 1;
                        }
                    }
                    GapAnchor::After(key) => {
                        let view = &mut buckets[bucket_of(key.as_bytes()) as usize];
                        if let Ok(idx) = view.entries.binary_search_by(|e| e.key.cmp(key)) {
                            if view.entries[idx].gap_after < *to {
                                view.entries[idx].gap_after = *to;
                                self.cache.mark(key.as_bytes());
                                stats.gaps_raised += 1;
                            }
                        }
                    }
                }
            }
            Ok(stats)
        }

        fn checkpoint(&self) -> Result<(), RepairError> {
            self.checkpoints.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    fn source_of(pairs: &[(&[u8], u64, u64)], low_gap: u64) -> SnapshotSource {
        let mut map = GapMap::new();
        if low_gap > 0 {
            map.set_gap_after(&Key::Low, v(low_gap)).unwrap();
        }
        for (key, version, gap) in pairs {
            map.restore_entry(
                k(key),
                v(*version),
                Value::new([key[0], *version as u8]),
                v(*gap),
            );
        }
        map.check_invariants()
            .unwrap_or_else(|e| panic!("bad fixture: {e}"));
        SnapshotSource::new(map)
    }

    /// A peer wrapper that fails every chunk call after the first `allow`.
    struct FlakyPeer {
        inner: SnapshotSource,
        allow: AtomicU64,
        chunk_afters: Mutex<Vec<Option<UserKey>>>,
    }

    impl SnapshotPeer for Arc<FlakyPeer> {
        fn manifest(&self) -> Result<SnapshotManifest, RepairError> {
            self.inner.manifest()
        }

        fn chunk(&self, after: Option<&UserKey>, max: u32) -> Result<SnapshotChunk, RepairError> {
            self.chunk_afters.lock().unwrap().push(after.cloned());
            if self.allow.fetch_sub(1, Ordering::Relaxed) == 0 {
                // One fault, then the peer comes back for the resume.
                self.allow.store(u64::MAX, Ordering::Relaxed);
                return Err(RepairError::Unavailable);
            }
            self.inner.chunk(after, max)
        }
    }

    fn target_arc(rep: &Arc<MemRep>) -> Arc<dyn RepairTarget> {
        Arc::clone(rep) as Arc<dyn RepairTarget>
    }

    #[test]
    fn fresh_install_converges_and_checkpoints() {
        let pairs: Vec<(Vec<u8>, u64, u64)> = (0..60u64)
            .map(|i| (vec![(i * 4 + 3) as u8, i as u8], i + 1, 0))
            .collect();
        let borrowed: Vec<(&[u8], u64, u64)> = pairs
            .iter()
            .map(|(key, vn, g)| (key.as_slice(), *vn, *g))
            .collect();
        let source = source_of(&borrowed, 0);
        let manifest = source.manifest().unwrap();
        assert_eq!(manifest.root.count, 60);

        let rep = MemRep::new();
        let target = target_arc(&rep);
        let mut installer = SnapshotInstaller::new(vec![Box::new(source)]).with_chunk_entries(16);
        let stats = installer.stream(0, &target).unwrap();
        assert_eq!(stats.entries, 60);
        assert!(stats.chunks >= 4, "bounded chunks, got {}", stats.chunks);
        assert_eq!(stats.applied.installed, 60);
        assert!(!stats.resumed);
        assert!(
            stats.root_matched,
            "quiet install must match the manifest root"
        );
        assert!(!installer.in_progress());
        assert_eq!(rep.checkpoints.load(Ordering::Relaxed), 1);
        assert_eq!(target_root(target.as_ref()).unwrap(), manifest.root);
    }

    #[test]
    fn install_propagates_deletes_and_never_moves_versions_down() {
        // Peer state: one survivor, everything else deleted at version 50.
        let source = source_of(&[(b"surv", 7, 50)], 50);
        let rep = MemRep::new();
        rep.insert(b"stale", 3, 0); // dominated by the gap at 50 → ghost
        rep.insert(b"surv", 9, 0); // local is *newer* → must keep version 9
        rep.insert(&[0xF0, 1], 2, 0); // trailing bucket, also dominated
        let target = target_arc(&rep);
        let mut installer = SnapshotInstaller::new(vec![Box::new(source)]);
        let stats = installer.stream(0, &target).unwrap();
        assert_eq!(
            rep.version_of(b"surv"),
            Some(v(9)),
            "version never moves down"
        );
        assert_eq!(rep.version_of(b"stale"), None, "gap at 50 dominates v3");
        assert_eq!(
            rep.version_of(&[0xF0, 1]),
            None,
            "trailing buckets flush too"
        );
        assert_eq!(stats.applied.ghosts_removed, 2);
        // Local moved ahead of the freeze, so the root cannot match.
        assert!(!stats.root_matched);
    }

    #[test]
    fn interrupted_stream_resumes_from_flush_cursor_not_the_start() {
        let pairs: Vec<(Vec<u8>, u64, u64)> = (0..80u64)
            .map(|i| (vec![(i * 3 + 2) as u8, i as u8], i + 1, 0))
            .collect();
        let borrowed: Vec<(&[u8], u64, u64)> = pairs
            .iter()
            .map(|(key, vn, g)| (key.as_slice(), *vn, *g))
            .collect();
        let peer = Arc::new(FlakyPeer {
            inner: source_of(&borrowed, 0),
            allow: AtomicU64::new(3), // three chunks, then the peer dies
            chunk_afters: Mutex::new(Vec::new()),
        });
        let rep = MemRep::new();
        let target = target_arc(&rep);
        let mut installer =
            SnapshotInstaller::new(vec![Box::new(Arc::clone(&peer))]).with_chunk_entries(16);

        let err = installer.stream(0, &target).unwrap_err();
        assert_eq!(err, RepairError::Unavailable);
        assert!(installer.in_progress());
        let cursor = installer.resume_cursor().cloned().expect("progress kept");

        // Resume: the first chunk fetch must start at the kept cursor,
        // not at the beginning of the key space.
        let stats = installer.stream(0, &target).unwrap();
        assert!(stats.resumed);
        assert!(!installer.in_progress());
        // Three chunks of 16 made it before the fault; the flushed ones
        // are not re-fetched.
        assert!(stats.entries < 80, "resume must not restart the stream");
        let rep2 = MemRep::new();
        for (key, vn, _) in &pairs {
            rep2.insert(key, *vn, 0);
        }
        assert_eq!(
            rep.children(0, 0).unwrap(),
            rep2.children(0, 0).unwrap(),
            "resumed install converges to the full state"
        );
        // The recorded fetch cursors prove resume-not-restart: calls 0-2
        // streamed, call 3 died, and call 4 — the first after resume —
        // asked for keys strictly after the stashed flush cursor.
        let afters = peer.chunk_afters.lock().unwrap();
        assert_eq!(afters[0], None);
        assert_eq!(afters[4], Some(cursor));
    }

    #[test]
    fn reinstall_on_converged_replica_is_idempotent() {
        let source = source_of(&[(b"a", 2, 0), (b"m", 5, 0), (b"z", 9, 4)], 1);
        let rep = MemRep::new();
        let target = target_arc(&rep);
        let mut installer = SnapshotInstaller::new(vec![Box::new(source.clone())]);
        let first = installer.stream(0, &target).unwrap();
        assert!(first.applied.total() > 0);
        let mut installer2 = SnapshotInstaller::new(vec![Box::new(source)]);
        let second = installer2.stream(0, &target).unwrap();
        assert_eq!(second.applied.total(), 0, "re-install changes nothing");
        assert!(second.root_matched);
    }

    #[test]
    fn empty_snapshot_of_deleted_directory_clears_the_target() {
        // The peer deleted everything; only a high low_gap remains.
        let source = source_of(&[], 33);
        let rep = MemRep::new();
        rep.insert(b"doomed", 4, 0);
        let target = target_arc(&rep);
        let mut installer = SnapshotInstaller::new(vec![Box::new(source)]);
        let stats = installer.stream(0, &target).unwrap();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.applied.ghosts_removed, 1);
        assert_eq!(rep.version_of(b"doomed"), None);
    }

    #[test]
    fn malformed_empty_chunk_is_a_protocol_error() {
        struct EmptyChunkPeer;
        impl SnapshotPeer for EmptyChunkPeer {
            fn manifest(&self) -> Result<SnapshotManifest, RepairError> {
                Ok(SnapshotManifest {
                    root: Digest { hash: 1, count: 5 },
                    low_gap: Version::ZERO,
                })
            }
            fn chunk(&self, _: Option<&UserKey>, _: u32) -> Result<SnapshotChunk, RepairError> {
                Ok(SnapshotChunk {
                    entries: Vec::new(),
                    done: false,
                })
            }
        }
        let rep = MemRep::new();
        let target = target_arc(&rep);
        let mut installer = SnapshotInstaller::new(vec![Box::new(EmptyChunkPeer)]);
        assert!(matches!(
            installer.stream(0, &target),
            Err(RepairError::Protocol(_))
        ));
    }

    #[test]
    fn source_chunks_are_cursor_addressed_and_bounded() {
        let source = source_of(&[(b"a", 1, 0), (b"b", 2, 0), (b"c", 3, 0), (b"d", 4, 0)], 0);
        let first = source.chunk(None, 3).unwrap();
        assert_eq!(first.entries.len(), 3);
        assert!(!first.done);
        let rest = source.chunk(Some(&first.entries[2].key), 3).unwrap();
        assert_eq!(rest.entries.len(), 1);
        assert!(rest.done);
        assert_eq!(rest.entries[0].key, k(b"d"));
        // A cursor at the last key yields an empty, done chunk.
        let end = source.chunk(Some(&k(b"d")), 3).unwrap();
        assert!(end.entries.is_empty() && end.done);
    }
}
