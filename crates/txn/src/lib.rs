//! # repdir-txn
//!
//! Transaction management for directory representatives.
//!
//! The paper assumes each representative is held by a transactional storage
//! system: "consistency and recovery are mainly the responsibility of
//! transactional storage systems, which are assumed to hold each
//! representative" (§2), and representatives "must synchronize concurrent
//! operations performed by different transactions and store critical
//! information in a fashion that recovers from failures" (§3.1). This crate
//! supplies that substrate's coordination half:
//!
//! * [`TxnManager`] — id allocation, lifecycle
//!   ([`TxnStatus`]), and per-transaction undo logs;
//! * [`UndoRecord`] with [`undo_for_insert`] / [`undo_for_coalesce`] /
//!   [`apply_undo`] — exact inverses of the two mutating `DirRep*`
//!   operations, applied in reverse on abort;
//! * re-exported [`TxnId`] — the lock-owner identity shared with
//!   `repdir-rangelock`, whose youngest-victim deadlock policy relies on
//!   this crate's monotonic id allocation.
//!
//! Durability (write-ahead logging, crash recovery) lives in
//! `repdir-storage`; the wiring of locks + undo + state into a serving
//! representative lives in `repdir-replica`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod manager;
mod undo;

pub use manager::{TxnManager, TxnStatus};
pub use repdir_rangelock::TxnId;
pub use undo::{apply_undo, undo_for_coalesce, undo_for_insert, UndoRecord};
