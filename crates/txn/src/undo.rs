//! Undo records: exact inverses of the two mutating representative
//! operations, applied in reverse order on abort.

use repdir_core::{
    CoalesceOutcome, GapMap, InsertOutcome, Key, RemovedEntry, UserKey, Value, Version,
};

/// One logged inverse operation.
///
/// The mutating `DirRep*` operations return enough information
/// ([`InsertOutcome`], [`CoalesceOutcome`]) to construct their inverses;
/// [`undo_for_insert`] and [`undo_for_coalesce`] do so, and
/// [`apply_undo`] replays an inverse against the representative state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UndoRecord {
    /// Inverse of a `Created` insert: remove the entry, merging the split
    /// gap back (both halves kept the original version, so removal alone
    /// restores it).
    RemoveEntry {
        /// The key whose entry the insert created.
        key: UserKey,
    },
    /// Inverse of an `Updated` insert: restore the previous version and
    /// value (the gap structure never changed).
    RestoreEntryValue {
        /// The updated key.
        key: UserKey,
        /// Version before the update.
        version: Version,
        /// Value before the update.
        value: Value,
    },
    /// Inverse of a coalesce: re-create every removed entry with its exact
    /// record, then restore the old version of the gap after the lower
    /// boundary.
    UndoCoalesce {
        /// The coalesce's lower boundary.
        low: Key,
        /// Gap version after `low` before the coalesce.
        old_gap_version: Version,
        /// Full records of the removed entries.
        removed: Vec<RemovedEntry>,
    },
}

/// Builds the inverse of an insert from its key and outcome.
pub fn undo_for_insert(key: &Key, outcome: &InsertOutcome) -> UndoRecord {
    let user = key
        .as_user()
        .expect("insert only succeeds on user keys")
        .clone();
    match outcome {
        InsertOutcome::Created { .. } => UndoRecord::RemoveEntry { key: user },
        InsertOutcome::Updated {
            old_version,
            old_value,
        } => UndoRecord::RestoreEntryValue {
            key: user,
            version: *old_version,
            value: old_value.clone(),
        },
    }
}

/// Builds the inverse of a coalesce from its lower boundary and outcome.
pub fn undo_for_coalesce(low: &Key, outcome: &CoalesceOutcome) -> UndoRecord {
    UndoRecord::UndoCoalesce {
        low: low.clone(),
        old_gap_version: outcome.old_gap_version,
        removed: outcome.removed.clone(),
    }
}

/// Applies one inverse operation to representative state.
///
/// # Panics
///
/// Panics if the record does not match the state (e.g. undoing an insert
/// whose entry is gone) — that indicates records applied out of order, a
/// logic error rather than a runtime condition.
pub fn apply_undo(map: &mut GapMap, record: UndoRecord) {
    match record {
        UndoRecord::RemoveEntry { key } => {
            assert!(
                map.remove_entry_raw(&key),
                "undo RemoveEntry: no entry for {key:?}"
            );
        }
        UndoRecord::RestoreEntryValue {
            key,
            version,
            value,
        } => {
            assert!(
                map.update_entry_raw(&key, version, value),
                "undo RestoreEntryValue: no entry for {key:?}"
            );
        }
        UndoRecord::UndoCoalesce {
            low,
            old_gap_version,
            removed,
        } => {
            for r in removed {
                map.restore_entry(r.key, r.version, r.value, r.gap_after);
            }
            map.set_gap_after(&low, old_gap_version)
                .expect("undo UndoCoalesce: boundary vanished");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    fn seeded() -> GapMap {
        let mut m = GapMap::new();
        for key in ["b", "d", "f"] {
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        m
    }

    #[test]
    fn insert_created_round_trips() {
        let mut m = seeded();
        let before = m.clone();
        let out = m.insert(&k("c"), v(2), val("C")).unwrap();
        apply_undo(&mut m, undo_for_insert(&k("c"), &out));
        assert_eq!(m, before);
    }

    #[test]
    fn insert_updated_round_trips() {
        let mut m = seeded();
        let before = m.clone();
        let out = m.insert(&k("d"), v(9), val("D9")).unwrap();
        apply_undo(&mut m, undo_for_insert(&k("d"), &out));
        assert_eq!(m, before);
    }

    #[test]
    fn coalesce_round_trips() {
        let mut m = seeded();
        let before = m.clone();
        let out = m.coalesce(&k("b"), &k("f"), v(5)).unwrap();
        apply_undo(&mut m, undo_for_coalesce(&k("b"), &out));
        assert_eq!(m, before);
    }

    #[test]
    fn coalesce_from_low_sentinel_round_trips() {
        let mut m = seeded();
        let before = m.clone();
        let out = m.coalesce(&Key::Low, &Key::High, v(7)).unwrap();
        apply_undo(&mut m, undo_for_coalesce(&Key::Low, &out));
        assert_eq!(m, before);
    }

    #[test]
    fn interleaved_ops_undo_in_reverse_order() {
        let mut m = seeded();
        let before = m.clone();
        let mut log = Vec::new();

        let out = m.insert(&k("c"), v(2), val("C")).unwrap();
        log.push(undo_for_insert(&k("c"), &out));
        let out = m.insert(&k("d"), v(3), val("D3")).unwrap();
        log.push(undo_for_insert(&k("d"), &out));
        let out = m.coalesce(&k("b"), &k("f"), v(6)).unwrap();
        log.push(undo_for_coalesce(&k("b"), &out));
        let out = m.insert(&k("e"), v(7), val("E")).unwrap();
        log.push(undo_for_insert(&k("e"), &out));

        for rec in log.into_iter().rev() {
            apply_undo(&mut m, rec);
        }
        assert_eq!(m, before);
        m.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn out_of_order_undo_panics() {
        let mut m = GapMap::new();
        apply_undo(
            &mut m,
            UndoRecord::RemoveEntry {
                key: UserKey::from("ghost"),
            },
        );
    }
}
