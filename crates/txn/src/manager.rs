//! The transaction manager: id allocation, lifecycle, and per-transaction
//! undo logs.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use repdir_core::sync::Mutex;
use repdir_core::RepError;
use repdir_rangelock::TxnId;

use crate::undo::UndoRecord;

/// Lifecycle states of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    /// Begun and not yet resolved; may hold locks and accumulate undo.
    Active,
    /// Successfully committed; its effects are durable.
    Committed,
    /// Aborted; its effects were rolled back.
    Aborted,
}

#[derive(Debug)]
struct TxnRecord {
    status: TxnStatus,
    undo: Vec<UndoRecord>,
}

/// Allocates transaction ids and tracks each transaction's status and undo
/// log.
///
/// The manager is deliberately independent of any particular representative:
/// in the full system one suite-level transaction spans several
/// representatives, each holding locks in its own
/// [`RangeLockTable`](repdir_rangelock::RangeLockTable) and logging undo in
/// the manager under the same id. Ids are allocated monotonically, so the
/// lock tables' youngest-victim deadlock policy is well defined across
/// representatives.
///
/// # Examples
///
/// ```
/// use repdir_txn::{TxnManager, TxnStatus};
///
/// let mgr = TxnManager::new();
/// let t = mgr.begin();
/// assert_eq!(mgr.status(t), Some(TxnStatus::Active));
/// mgr.commit(t)?;
/// assert_eq!(mgr.status(t), Some(TxnStatus::Committed));
/// # Ok::<(), repdir_core::RepError>(())
/// ```
pub struct TxnManager {
    next: AtomicU64,
    txns: Mutex<HashMap<TxnId, TxnRecord>>,
    obs: TxnObs,
}

/// Lifecycle counters mirrored into the process-wide obs registry
/// (`txn.*`), aggregated across every manager in the process.
struct TxnObs {
    begun: repdir_obs::Counter,
    committed: repdir_obs::Counter,
    aborted: repdir_obs::Counter,
}

impl TxnObs {
    fn new() -> Self {
        let g = repdir_obs::global();
        TxnObs {
            begun: g.counter("txn.begun"),
            committed: g.counter("txn.committed"),
            aborted: g.counter("txn.aborted"),
        }
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// Creates a manager; the first transaction gets id 1.
    pub fn new() -> Self {
        TxnManager {
            next: AtomicU64::new(1),
            txns: Mutex::new(HashMap::new()),
            obs: TxnObs::new(),
        }
    }

    /// Starts a new transaction and returns its id.
    pub fn begin(&self) -> TxnId {
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        self.obs.begun.inc();
        self.txns.lock().insert(
            id,
            TxnRecord {
                status: TxnStatus::Active,
                undo: Vec::new(),
            },
        );
        id
    }

    /// The transaction's status, or `None` if the id was never issued (or
    /// was garbage-collected).
    pub fn status(&self, id: TxnId) -> Option<TxnStatus> {
        self.txns.lock().get(&id).map(|r| r.status)
    }

    /// Whether the transaction is currently active.
    pub fn is_active(&self, id: TxnId) -> bool {
        self.status(id) == Some(TxnStatus::Active)
    }

    /// Appends an undo record to an active transaction's log.
    ///
    /// # Errors
    ///
    /// [`RepError::TransactionAborted`] if the transaction is not active
    /// (unknown, committed, or aborted).
    pub fn record_undo(&self, id: TxnId, record: UndoRecord) -> Result<(), RepError> {
        let mut txns = self.txns.lock();
        match txns.get_mut(&id) {
            Some(rec) if rec.status == TxnStatus::Active => {
                rec.undo.push(record);
                Ok(())
            }
            _ => Err(RepError::TransactionAborted),
        }
    }

    /// Commits an active transaction, discarding its undo log. The caller
    /// releases locks afterwards (strict two-phase locking: all locks held
    /// to commit).
    ///
    /// # Errors
    ///
    /// [`RepError::TransactionAborted`] if the transaction is not active.
    pub fn commit(&self, id: TxnId) -> Result<(), RepError> {
        let mut txns = self.txns.lock();
        match txns.get_mut(&id) {
            Some(rec) if rec.status == TxnStatus::Active => {
                rec.status = TxnStatus::Committed;
                rec.undo.clear();
                self.obs.committed.inc();
                Ok(())
            }
            _ => Err(RepError::TransactionAborted),
        }
    }

    /// Aborts an active transaction, returning its undo records **in
    /// reverse order**, ready to be applied one by one. Aborting a
    /// non-active transaction returns an empty log (abort is idempotent).
    pub fn abort(&self, id: TxnId) -> Vec<UndoRecord> {
        let mut txns = self.txns.lock();
        match txns.get_mut(&id) {
            Some(rec) if rec.status == TxnStatus::Active => {
                rec.status = TxnStatus::Aborted;
                self.obs.aborted.inc();
                let mut undo = std::mem::take(&mut rec.undo);
                undo.reverse();
                undo
            }
            _ => Vec::new(),
        }
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.txns
            .lock()
            .values()
            .filter(|r| r.status == TxnStatus::Active)
            .count()
    }

    /// Drops records of completed transactions, reclaiming memory. Active
    /// transactions are retained.
    pub fn gc(&self) {
        self.txns
            .lock()
            .retain(|_, r| r.status == TxnStatus::Active);
    }
}

impl fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let txns = self.txns.lock();
        f.debug_struct("TxnManager")
            .field("tracked", &txns.len())
            .field(
                "active",
                &txns
                    .values()
                    .filter(|r| r.status == TxnStatus::Active)
                    .count(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repdir_core::UserKey;

    fn rec(key: &str) -> UndoRecord {
        UndoRecord::RemoveEntry {
            key: UserKey::from(key),
        }
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mgr = TxnManager::new();
        let a = mgr.begin();
        let b = mgr.begin();
        assert!(a < b);
        assert_eq!(mgr.active_count(), 2);
    }

    #[test]
    fn commit_lifecycle() {
        let mgr = TxnManager::new();
        let t = mgr.begin();
        mgr.record_undo(t, rec("a")).unwrap();
        mgr.commit(t).unwrap();
        assert_eq!(mgr.status(t), Some(TxnStatus::Committed));
        // Double commit is an error; committed undo is gone.
        assert_eq!(mgr.commit(t), Err(RepError::TransactionAborted));
        assert!(mgr.abort(t).is_empty());
    }

    #[test]
    fn abort_returns_undo_in_reverse() {
        let mgr = TxnManager::new();
        let t = mgr.begin();
        mgr.record_undo(t, rec("a")).unwrap();
        mgr.record_undo(t, rec("b")).unwrap();
        mgr.record_undo(t, rec("c")).unwrap();
        let undo = mgr.abort(t);
        assert_eq!(undo, vec![rec("c"), rec("b"), rec("a")]);
        assert_eq!(mgr.status(t), Some(TxnStatus::Aborted));
        // Idempotent.
        assert!(mgr.abort(t).is_empty());
    }

    #[test]
    fn record_undo_rejected_after_resolution() {
        let mgr = TxnManager::new();
        let t = mgr.begin();
        mgr.commit(t).unwrap();
        assert_eq!(
            mgr.record_undo(t, rec("x")),
            Err(RepError::TransactionAborted)
        );
        let unknown = TxnId(999);
        assert_eq!(
            mgr.record_undo(unknown, rec("x")),
            Err(RepError::TransactionAborted)
        );
        assert_eq!(mgr.status(unknown), None);
    }

    #[test]
    fn gc_drops_completed_only() {
        let mgr = TxnManager::new();
        let a = mgr.begin();
        let b = mgr.begin();
        mgr.commit(a).unwrap();
        mgr.gc();
        assert_eq!(mgr.status(a), None);
        assert!(mgr.is_active(b));
    }

    #[test]
    fn concurrent_begins_do_not_collide() {
        use std::sync::Arc;
        let mgr = Arc::new(TxnManager::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| m.begin()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800);
    }

    #[test]
    fn debug_shows_counts() {
        let mgr = TxnManager::new();
        mgr.begin();
        let s = format!("{mgr:?}");
        assert!(s.contains("active"));
    }
}
