//! Key-selection distributions for workloads.
//!
//! The paper's §4 uses uniform selection; §2 warns that for static
//! partitioning "an uneven distribution of accesses could limit
//! concurrency". [`Zipf`] provides that uneven distribution for the skew
//! experiments.

use repdir_core::rng::StdRng;

/// A Zipf(θ) sampler over ranks `0..n`: rank `r` is drawn with probability
/// proportional to `1 / (r + 1)^θ`.
///
/// `θ = 0` is uniform; `θ ≈ 1` is the classic heavy skew where the top
/// handful of ranks absorb most accesses. The CDF is cached and rebuilt
/// only when `n` changes, so steady-`n` sampling is a binary search.
///
/// # Examples
///
/// ```
/// use repdir_core::rng::StdRng;
/// use repdir_workload::Zipf;
///
/// let mut z = Zipf::new(0.99);
/// let mut rng = StdRng::seed_from_u64(7);
/// let r = z.sample(100, &mut rng);
/// assert!(r < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    theta: f64,
    cached_n: usize,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite `theta`.
    pub fn new(theta: f64) -> Self {
        assert!(
            theta.is_finite() && theta >= 0.0,
            "zipf skew must be finite and non-negative"
        );
        Zipf {
            theta,
            cached_n: 0,
            cdf: Vec::new(),
        }
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a rank in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample(&mut self, n: usize, rng: &mut StdRng) -> usize {
        assert!(n > 0, "cannot sample from an empty population");
        if self.theta == 0.0 {
            return rng.gen_range(0..n);
        }
        if self.cached_n != n {
            self.rebuild(n);
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i.min(n - 1),
            Err(i) => i.min(n - 1),
        }
    }

    fn rebuild(&mut self, n: usize) {
        self.cdf.clear();
        self.cdf.reserve(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(self.theta);
            self.cdf.push(total);
        }
        for p in &mut self.cdf {
            *p /= total;
        }
        self.cached_n = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let mut z = Zipf::new(0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 10, 100] {
            for _ in 0..200 {
                assert!(z.sample(n, &mut rng) < n);
            }
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let mut z = Zipf::new(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[z.sample(4, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let mut z = Zipf::new(1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0u32;
        let trials = 5000;
        for _ in 0..trials {
            if z.sample(100, &mut rng) < 5 {
                head += 1;
            }
        }
        // With theta = 1.2 the top 5 of 100 ranks carry well over half the
        // mass.
        assert!(
            head as f64 / trials as f64 > 0.55,
            "head fraction {}",
            head as f64 / trials as f64
        );
    }

    #[test]
    fn rank_probabilities_are_monotone() {
        let mut z = Zipf::new(0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u32; 10];
        for _ in 0..30000 {
            counts[z.sample(10, &mut rng)] += 1;
        }
        for w in counts.windows(2) {
            // Allow sampling noise but require a broadly decreasing shape.
            assert!(w[0] as f64 > w[1] as f64 * 0.8, "{counts:?}");
        }
    }

    #[test]
    fn population_changes_rebuild_correctly() {
        let mut z = Zipf::new(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(z.sample(10, &mut rng) < 10);
        assert!(z.sample(50, &mut rng) < 50);
        assert!(z.sample(3, &mut rng) < 3);
        assert_eq!(z.theta(), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        Zipf::new(1.0).sample(0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        Zipf::new(-1.0);
    }
}
