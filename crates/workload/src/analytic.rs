//! An analytic model of the deletion statistics.
//!
//! The paper's §5: "The performance characterizations presented in this
//! paper are based on simulations, however initial work on an analytical
//! treatment indicates that we can obtain similar results from simple
//! analytic models." This module is such a model; the tests hold it to the
//! simulator within a few percent.
//!
//! ## Derivation
//!
//! Track one live entry's *holder count* `m` — how many of the `N`
//! representatives physically store it:
//!
//! * An insert writes a uniform `W`-subset: the entry is born with
//!   `m = W`.
//! * An update writes a fresh uniform `W`-subset `Q`: the holder set grows
//!   to `H ∪ Q`, so `m' = m + |Q \ H|` with `|Q ∩ H|` hypergeometric.
//! * **Neighbor copies behave identically**: when an adjacent key is
//!   deleted, `DirSuiteDelete` installs this entry into every write-quorum
//!   member lacking it — again `m' = |H ∪ Q|`. Each delete does this to
//!   both real neighbors, so per live key the copy-boost rate is twice the
//!   per-key delete rate.
//! * A delete ends the entry's life; quorum members holding it lose it,
//!   non-members keep *ghosts*.
//!
//! With update fraction `u` and the remaining operations split evenly
//! between inserts and deletes, the per-key event mix between birth and
//! death is: boosts (updates + neighbor copies) with probability
//! `β = (u + (1-u)) / (u + (1-u) + (1-u)/2)`, death otherwise. The holder
//! distribution at death is the geometric mixture of powers of the
//! hypergeometric-union transition applied to the birth state.
//!
//! From the death-time expectation `E[m]`:
//!
//! * ghosts created (= removed, in steady state) per delete:
//!   `E[m] · (N - W) / N`;
//! * neighbor copies per delete: `2 · W · (1 - E[m]/N)`;
//! * entries in the coalesced range per quorum member:
//!   `E[m]/N + ghosts/W`.

use crate::stats::RunningStat;

/// Model outputs for one configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalyticStats {
    /// Expected holder count of an entry at the moment it is deleted.
    pub holders_at_delete: f64,
    /// Predicted "Entries in ranges coalesced" (per quorum member).
    pub entries_in_range: f64,
    /// Predicted "Deletions while coalescing" (ghosts per suite delete).
    pub deletions_while_coalescing: f64,
    /// Predicted "Insertions while coalescing" (copies per suite delete).
    pub insertions_while_coalescing: f64,
}

/// Computes the model for a symmetric `n`-representative suite with write
/// quorum `w` and the given update fraction (the read quorum does not enter
/// the deletion statistics).
///
/// # Panics
///
/// Panics unless `1 <= w <= n` and `0 <= update_fraction < 1`.
pub fn analytic_delete_stats(n: u32, w: u32, update_fraction: f64) -> AnalyticStats {
    assert!(w >= 1 && w <= n, "write quorum must be within 1..=n");
    assert!(
        (0.0..1.0).contains(&update_fraction),
        "update fraction must be in [0, 1)"
    );
    let n_f = n as f64;
    let w_f = w as f64;
    let u = update_fraction;

    // Boost probability per inter-event step: updates happen at per-key
    // rate u, neighbor copies at rate 2 * (delete rate) = 2 * (1-u)/2 =
    // (1-u); deletion at rate (1-u)/2.
    let boost_rate = u + (1.0 - u);
    let death_rate = (1.0 - u) / 2.0;
    let beta = boost_rate / (boost_rate + death_rate);

    // Holder distribution over m in W..=N, starting at birth (m = W),
    // evolved by the union transition, mixed geometrically.
    let states = (n - w + 1) as usize;
    let mut current = vec![0.0f64; states]; // current[i] = P(m = W + i)
    current[0] = 1.0;
    let mut at_death = vec![0.0f64; states];
    let mut weight = 1.0 - beta; // P(death before any boost)
    let mut total_weight = 0.0;
    // Truncate the geometric once its tail is negligible.
    while weight > 1e-14 {
        for (i, p) in current.iter().enumerate() {
            at_death[i] += weight * p;
        }
        total_weight += weight;
        current = step_union(&current, n, w);
        weight *= beta;
    }
    // Renormalize for the truncated tail (the chain is absorbed at m = N
    // quickly, so assign the residue there).
    let residue = 1.0 - total_weight;
    at_death[states - 1] += residue;

    let e_m: f64 = at_death
        .iter()
        .enumerate()
        .map(|(i, p)| (w_f + i as f64) * p)
        .sum();

    let deletions = e_m * (n_f - w_f) / n_f;
    let insertions = 2.0 * w_f * (1.0 - e_m / n_f);
    let entries = e_m / n_f + deletions / w_f;
    AnalyticStats {
        holders_at_delete: e_m,
        entries_in_range: entries,
        deletions_while_coalescing: deletions,
        insertions_while_coalescing: insertions,
    }
}

/// One boost transition: `m' = |H ∪ Q|` for a uniform `w`-subset `Q` of the
/// `n` representatives; `|Q \ H|` is hypergeometric.
fn step_union(dist: &[f64], n: u32, w: u32) -> Vec<f64> {
    let states = dist.len();
    let mut next = vec![0.0f64; states];
    for (i, &p) in dist.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let m = w + i as u32; // current holders
        let outside = n - m;
        // j = new holders gained, 0..=min(outside, w)
        for j in 0..=outside.min(w) {
            // P(|Q \ H| = j) = C(outside, j) C(m, w - j) / C(n, w)
            if w < j || m < w - j {
                continue;
            }
            let prob = choose(outside, j) * choose(m, w - j) / choose(n, w);
            let target = i + j as usize;
            if target < states {
                next[target] += p * prob;
            }
        }
    }
    next
}

fn choose(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut out = 1.0;
    for i in 0..k {
        out *= (n - i) as f64 / (i + 1) as f64;
    }
    out
}

/// Relative error helper used by the validation tests and the fig14
/// harness.
pub fn relative_error(measured: &RunningStat, predicted: f64) -> f64 {
    let m = measured.mean();
    if predicted == 0.0 {
        m.abs()
    } else {
        (m - predicted).abs() / predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_sim, SimParams};
    use repdir_core::suite::SuiteConfig;

    #[test]
    fn unanimous_write_predicts_zero_overhead() {
        for (n, w) in [(1, 1), (3, 3), (5, 5)] {
            let s = analytic_delete_stats(n, w, 0.2);
            assert!((s.holders_at_delete - n as f64).abs() < 1e-9);
            assert_eq!(s.deletions_while_coalescing, 0.0);
            assert!(s.insertions_while_coalescing.abs() < 1e-9);
            assert!((s.entries_in_range - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn known_values_for_3_2_2() {
        // Hand-derivable: beta = 1/1.4 = 5/7; P(m=2 at death) =
        // (1-b)/(1-b/3) = 0.375; E[m] = 2.625.
        let s = analytic_delete_stats(3, 2, 0.2);
        assert!((s.holders_at_delete - 2.625).abs() < 1e-9, "{s:?}");
        assert!((s.deletions_while_coalescing - 0.875).abs() < 1e-9);
        assert!((s.insertions_while_coalescing - 0.5).abs() < 1e-9);
        assert!((s.entries_in_range - 1.3125).abs() < 1e-9);
    }

    #[test]
    fn model_tracks_simulation_within_tolerance() {
        for (n, r, w) in [(3u32, 2u32, 2u32), (4, 2, 3), (5, 3, 3), (5, 2, 4)] {
            let predicted = analytic_delete_stats(n, w, 0.2);
            let params =
                SimParams::figure14(SuiteConfig::symmetric(n, r, w).unwrap(), 0xA2A + n as u64);
            let measured = run_sim(&params);
            let checks = [
                (
                    "entries",
                    &measured.entries_coalesced,
                    predicted.entries_in_range,
                ),
                (
                    "deletions",
                    &measured.deletions_while_coalescing,
                    predicted.deletions_while_coalescing,
                ),
                (
                    "insertions",
                    &measured.insertions_while_coalescing,
                    predicted.insertions_while_coalescing,
                ),
            ];
            for (name, stat, pred) in checks {
                let err = relative_error(stat, pred);
                assert!(
                    err < 0.12,
                    "{n}-{r}-{w} {name}: measured {:.3} vs predicted {pred:.3} (err {err:.3})",
                    stat.mean()
                );
            }
        }
    }

    #[test]
    fn more_updates_mean_fewer_ghosts() {
        // Updates spread entries over more representatives, so deletes find
        // the entry nearly everywhere and leave fewer ghosts.
        let low = analytic_delete_stats(3, 2, 0.05);
        let high = analytic_delete_stats(3, 2, 0.6);
        assert!(high.holders_at_delete > low.holders_at_delete);
        assert!(
            high.deletions_while_coalescing > low.deletions_while_coalescing * 0.9,
            "ghost count scales with holders: {high:?} vs {low:?}"
        );
        assert!(high.insertions_while_coalescing < low.insertions_while_coalescing);
    }

    #[test]
    #[should_panic(expected = "write quorum")]
    fn invalid_quorum_rejected() {
        analytic_delete_stats(3, 4, 0.2);
    }

    #[test]
    #[should_panic(expected = "update fraction")]
    fn invalid_update_fraction_rejected() {
        analytic_delete_stats(3, 2, 1.0);
    }
}
