//! The paper's Figure 16 locality experiment.
//!
//! "Consider a 4-2-3 directory suite with key values in the range of 1 to
//! 100, and locality such that transactions of Type A operate on entries
//! having keys 1 to 50, and transactions of Type B operate on entries
//! having keys 51 to 100. … Type A transactions read from representatives
//! A1 and A2 and direct their updates to A1, A2, and either B1 or B2. …
//! all inquiries can be done locally and the non-local write that is
//! required for modification operations is evenly distributed among the
//! remote representatives." (§5)

use repdir_core::rng::StdRng;
use repdir_core::suite::{DirSuite, LocalityPolicy, SuiteConfig};
use repdir_core::{Key, LocalRep, RepId, UserKey, Value};

/// Message accounting from a locality run, split by transaction type and
/// by whether the representative was local to that type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalityReport {
    /// Read-path RPCs (lookups during inquiries) that hit a local
    /// representative.
    pub local_read_rpcs: u64,
    /// Read-path RPCs that had to leave the locality group.
    pub remote_read_rpcs: u64,
    /// Write-path RPCs to local representatives.
    pub local_write_rpcs: u64,
    /// Write-path RPCs to remote representatives.
    pub remote_write_rpcs: u64,
    /// Remote write-path RPCs per representative (evenness check): indexed
    /// by representative.
    pub remote_write_per_member: Vec<u64>,
    /// Inquiries / modifications executed.
    pub inquiries: u64,
    /// Modification operations executed.
    pub modifications: u64,
}

impl LocalityReport {
    /// Fraction of inquiry traffic served locally.
    pub fn read_locality(&self) -> f64 {
        let total = self.local_read_rpcs + self.remote_read_rpcs;
        if total == 0 {
            0.0
        } else {
            self.local_read_rpcs as f64 / total as f64
        }
    }
}

/// Runs the Figure 16 scenario: representatives `A1 = 0`, `A2 = 1` local to
/// Type A transactions (keys below the pivot), `B1 = 2`, `B2 = 3` local to
/// Type B, a 4-2-3 configuration, and a locality-aware quorum policy.
///
/// Returns the message accounting; the paper's claims translate to
/// `read_locality() == 1.0` and `remote_write_per_member` balanced across
/// the two remote representatives for each type.
///
/// # Panics
///
/// Panics on suite errors (all representatives stay up during the run).
pub fn run_locality(ops: u64, seed: u64) -> LocalityReport {
    let pivot_val = 50u64;
    let pivot = Key::User(UserKey::from_u64(pivot_val));
    let config = SuiteConfig::symmetric(4, 2, 3).expect("4-2-3 is legal");
    let clients: Vec<LocalRep> = (0..4).map(|i| LocalRep::new(RepId(i))).collect();
    let policy = LocalityPolicy::new(pivot, vec![0, 1], vec![2, 3]);
    let mut suite = DirSuite::new(clients, config, Box::new(policy)).expect("valid suite");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = LocalityReport {
        remote_write_per_member: vec![0; 4],
        ..LocalityReport::default()
    };
    // Track live keys per side so updates/deletes target existing entries.
    let mut low_keys: Vec<u64> = Vec::new();
    let mut high_keys: Vec<u64> = Vec::new();

    for _ in 0..ops {
        // Pick a transaction type; its keys stay on its side of the pivot.
        let type_a = rng.gen_bool(0.5);
        let (side, base) = if type_a {
            (&mut low_keys, 0)
        } else {
            (&mut high_keys, pivot_val)
        };
        let local_members: [usize; 2] = if type_a { [0, 1] } else { [2, 3] };

        let before = suite.message_counts().to_vec();
        let is_inquiry = rng.gen_bool(0.5);
        let mut write_op = false;
        if is_inquiry {
            let k = base + rng.gen_range(0..pivot_val);
            let _ = suite.lookup(&key_of(k)).expect("lookup");
            report.inquiries += 1;
        } else {
            write_op = true;
            report.modifications += 1;
            if side.is_empty() || (side.len() < 25 && rng.gen_bool(0.6)) {
                // Insert a fresh key on this side.
                loop {
                    let k = base + rng.gen_range(0..pivot_val);
                    if !side.contains(&k) {
                        suite.insert(&key_of(k), &Value::from("v")).expect("insert");
                        side.push(k);
                        break;
                    }
                }
            } else if rng.gen_bool(0.5) {
                let idx = rng.gen_range(0..side.len());
                suite
                    .update(&key_of(side[idx]), &Value::from("v2"))
                    .expect("update");
            } else {
                let idx = rng.gen_range(0..side.len());
                let k = side.swap_remove(idx);
                suite.delete(&key_of(k)).expect("delete");
            }
        }
        let after = suite.message_counts();
        for m in 0..4 {
            let delta = after[m] - before[m];
            if delta == 0 {
                continue;
            }
            let local = local_members.contains(&m);
            match (write_op, local) {
                (false, true) => report.local_read_rpcs += delta,
                (false, false) => report.remote_read_rpcs += delta,
                (true, true) => report.local_write_rpcs += delta,
                (true, false) => {
                    report.remote_write_rpcs += delta;
                    report.remote_write_per_member[m] += delta;
                }
            }
        }
    }
    report
}

fn key_of(n: u64) -> Key {
    Key::User(UserKey::from_u64(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inquiries_are_fully_local() {
        let report = run_locality(2000, 1);
        assert!(report.inquiries > 0);
        assert_eq!(
            report.remote_read_rpcs, 0,
            "Fig 16: all inquiries can be done locally"
        );
        assert!((report.read_locality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remote_writes_spread_evenly() {
        let report = run_locality(4000, 2);
        assert!(report.modifications > 0);
        // Every representative receives some remote-write traffic (each is
        // remote to the other type's transactions)...
        let total: u64 = report.remote_write_per_member.iter().sum();
        assert!(total > 0);
        // ...and the split within each remote pair is balanced to within
        // 25% (rotation plus workload noise).
        for pair in [[2usize, 3], [0, 1]] {
            let a = report.remote_write_per_member[pair[0]] as f64;
            let b = report.remote_write_per_member[pair[1]] as f64;
            let ratio = a.max(b) / a.min(b).max(1.0);
            assert!(ratio < 1.25, "uneven remote split: {a} vs {b}");
        }
    }

    #[test]
    fn modifications_use_one_remote_member_each() {
        // W = 3 with 2 local members: exactly one remote member per write
        // quorum.
        let report = run_locality(1000, 3);
        // Remote write RPCs exist but are a minority of write traffic.
        assert!(report.remote_write_rpcs > 0);
        assert!(report.local_write_rpcs > report.remote_write_rpcs);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run_locality(500, 9), run_locality(500, 9));
    }
}
