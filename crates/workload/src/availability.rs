//! Availability models: the probability an operation can gather its quorum
//! as a function of per-replica availability.
//!
//! The paper's motivation (§1, §2, §5): quorum sizes trade read availability
//! against write availability, with unanimous update as the degenerate
//! worst case for writes. These closed-form models plus a Monte-Carlo
//! cross-check generate the availability table in the benchmark harness.

use repdir_core::rng::StdRng;
use repdir_core::suite::SuiteConfig;

/// Probability that at least `quorum` of `n` one-vote replicas are up, with
/// each replica independently up with probability `p`.
///
/// # Examples
///
/// ```
/// use repdir_workload::symmetric_availability;
///
/// // A 3-replica suite with quorum 2 survives one failure.
/// let a = symmetric_availability(3, 2, 0.9);
/// assert!((a - 0.972).abs() < 1e-12);
/// ```
pub fn symmetric_availability(n: u32, quorum: u32, p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    (quorum..=n)
        .map(|k| binomial(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32))
        .sum()
}

/// Probability that the up replicas hold at least `quorum` votes, for an
/// arbitrary vote assignment (exact subset enumeration; replica count must
/// be ≤ 24).
///
/// # Panics
///
/// Panics if more than 24 replicas are given (2^n enumeration).
pub fn weighted_availability(votes: &[u32], quorum: u32, p: f64) -> f64 {
    assert!(
        votes.len() <= 24,
        "subset enumeration capped at 24 replicas"
    );
    let p = p.clamp(0.0, 1.0);
    let n = votes.len();
    let mut total = 0.0;
    for mask in 0u32..(1 << n) {
        let mut up_votes = 0;
        let mut prob = 1.0;
        for (i, &v) in votes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                up_votes += v;
                prob *= p;
            } else {
                prob *= 1.0 - p;
            }
        }
        if up_votes >= quorum {
            total += prob;
        }
    }
    total
}

/// Read and write availability of a suite configuration at per-replica
/// availability `p`.
pub fn suite_availability(config: &SuiteConfig, p: f64) -> (f64, f64) {
    let votes = config.votes();
    (
        weighted_availability(votes, config.read_quorum(), p),
        weighted_availability(votes, config.write_quorum(), p),
    )
}

/// Unanimous update (§2): reads need any one replica, writes need all `n`.
pub fn unanimous_availability(n: u32, p: f64) -> (f64, f64) {
    let p = p.clamp(0.0, 1.0);
    (1.0 - (1.0 - p).powi(n as i32), p.powi(n as i32))
}

/// Monte-Carlo estimate of quorum availability (cross-checks the closed
/// forms; also usable for correlated-failure extensions).
pub fn monte_carlo_availability(votes: &[u32], quorum: u32, p: f64, trials: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok = 0u64;
    for _ in 0..trials {
        let up: u32 = votes
            .iter()
            .map(|&v| {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    v
                } else {
                    0
                }
            })
            .sum();
        if up >= quorum {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

fn binomial(n: u32, k: u32) -> f64 {
    let k = k.min(n - k.min(n));
    let mut out = 1.0;
    for i in 0..k {
        out *= (n - i) as f64 / (i + 1) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 1), 5.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(10, 5), 252.0);
    }

    #[test]
    fn symmetric_extremes() {
        assert_eq!(symmetric_availability(3, 2, 1.0), 1.0);
        assert_eq!(symmetric_availability(3, 2, 0.0), 0.0);
        // Quorum 1 of 1 = p.
        assert!((symmetric_availability(1, 1, 0.7) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn weighted_matches_symmetric_for_unit_votes() {
        for p in [0.5, 0.9, 0.99] {
            for (n, q) in [(3u32, 2u32), (5, 3), (4, 3)] {
                let sym = symmetric_availability(n, q, p);
                let wtd = weighted_availability(&vec![1; n as usize], q, p);
                assert!((sym - wtd).abs() < 1e-12, "n={n} q={q} p={p}");
            }
        }
    }

    #[test]
    fn weighted_votes_shift_availability_toward_heavy_replicas() {
        // One replica with 2 votes, two with 1: quorum 2 is satisfied by
        // the heavy replica alone.
        let a = weighted_availability(&[2, 1, 1], 2, 0.9);
        // P(heavy up) + P(heavy down, both lights up)
        let expect = 0.9 + 0.1 * 0.9 * 0.9;
        assert!((a - expect).abs() < 1e-12, "{a} vs {expect}");
    }

    #[test]
    fn suite_availability_orders_read_vs_write() {
        // 3-2-2: equal quorums, equal availability.
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let (r, w) = suite_availability(&cfg, 0.9);
        assert!((r - w).abs() < 1e-12);
        // 3-1-3: reads much more available than writes.
        let cfg = SuiteConfig::symmetric(3, 1, 3).unwrap();
        let (r, w) = suite_availability(&cfg, 0.9);
        assert!(r > 0.998);
        assert!((w - 0.729).abs() < 1e-12);
    }

    #[test]
    fn unanimous_write_availability_collapses_with_scale() {
        let (_, w3) = unanimous_availability(3, 0.9);
        let (_, w7) = unanimous_availability(7, 0.9);
        assert!(w3 > w7);
        assert!((w3 - 0.729).abs() < 1e-12);
        let (r7, _) = unanimous_availability(7, 0.9);
        assert!(r7 > 0.999_999);
    }

    #[test]
    fn quorum_suite_beats_unanimous_for_writes() {
        // The paper's availability pitch in one assertion: at p = 0.9,
        // a 3-2-2 suite's writes beat unanimous-update's writes.
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let (_, w_quorum) = suite_availability(&cfg, 0.9);
        let (_, w_unanimous) = unanimous_availability(3, 0.9);
        assert!(w_quorum > w_unanimous);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let votes = vec![1u32; 5];
        let exact = weighted_availability(&votes, 3, 0.8);
        let mc = monte_carlo_availability(&votes, 3, 0.8, 200_000, 42);
        assert!((exact - mc).abs() < 0.005, "exact {exact} mc {mc}");
    }

    #[test]
    fn probabilities_clamped() {
        assert_eq!(symmetric_availability(3, 2, 1.5), 1.0);
        assert_eq!(symmetric_availability(3, 2, -0.5), 0.0);
    }
}
