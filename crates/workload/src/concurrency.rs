//! Concurrency experiments: the paper's claim that per-range version
//! numbers "permit concurrent operations on different entries" (§1), where
//! a directory stored as a Gifford-replicated file serializes every
//! modification behind one version number (§2).
//!
//! Two measurements:
//!
//! * **Threaded throughput** of the full transactional stack
//!   ([`ReplicatedDirectory`]) with writers on *disjoint* key ranges versus
//!   all writers hammering *one* key — disjoint writers scale, hotspot
//!   writers serialize on range locks.
//! * **Interleaved conflict counting** for the single-version file baseline:
//!   overlapped read-modify-write rounds conflict in proportion to the
//!   number of concurrent clients, even when the clients touch different
//!   keys.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_baselines::{BaselineError, FileSuite, StaticPartitionDirectory};
use repdir_core::rng::StdRng;
use repdir_core::UserKey;

use crate::keys::Zipf;
use repdir_core::suite::SuiteConfig;
use repdir_core::{Key, SuiteError, Value, Version};
use repdir_replica::ReplicatedDirectory;

/// Throughput measurement result.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Operations completed across all threads.
    pub ops: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Lock acquisitions that had to wait, summed over representatives.
    pub lock_waits: u64,
    /// Deadlock victims, summed over representatives.
    pub deadlocks: u64,
    /// Lock-wait timeouts, summed over representatives.
    pub timeouts: u64,
}

impl ThroughputReport {
    /// Completed operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Runs `threads` writers against a 3-2-2 transactional directory.
///
/// With `disjoint = true`, thread `t` updates keys only in its own range
/// (the concurrency the gap-versioned algorithm grants); with `false`,
/// every thread updates the same single key (the serialized worst case —
/// equivalent to what a whole-directory version imposes on *all* keys).
///
/// # Panics
///
/// Panics if a worker hits a non-retryable error (all representatives stay
/// up for the run).
pub fn repdir_throughput(
    threads: usize,
    ops_per_thread: u64,
    disjoint: bool,
    seed: u64,
) -> ThroughputReport {
    let dir = Arc::new(
        ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).expect("3-2-2"), seed)
            .expect("valid config"),
    );
    // Pre-create the keys so workers only update.
    if disjoint {
        for t in 0..threads {
            dir.insert(&worker_key(t, 0), &Value::from("0"))
                .expect("setup");
        }
    } else {
        dir.insert(&hot_key(), &Value::from("0")).expect("setup");
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let dir = Arc::clone(&dir);
        handles.push(std::thread::spawn(move || {
            let key = if disjoint {
                worker_key(t, 0)
            } else {
                hot_key()
            };
            for i in 0..ops_per_thread {
                let value = Value::from(i.to_le_bytes().to_vec());
                match dir.update(&key, &value) {
                    Ok(()) => {}
                    // Retries exhausted under extreme contention: count the
                    // op as done-with-difficulty rather than aborting the
                    // whole experiment.
                    Err(SuiteError::Rep(_)) => {}
                    Err(e) => panic!("worker error: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    let elapsed = start.elapsed();

    let mut lock_waits = 0;
    let mut deadlocks = 0;
    let mut timeouts = 0;
    for rep in dir.reps() {
        let s = rep.lock_stats();
        lock_waits += s.waited;
        deadlocks += s.deadlocks;
        timeouts += s.timeouts;
    }
    ThroughputReport {
        ops: threads as u64 * ops_per_thread,
        elapsed,
        lock_waits,
        deadlocks,
        timeouts,
    }
}

fn worker_key(t: usize, i: u64) -> Key {
    Key::from(format!("range-{t:03}-key-{i:06}").as_str())
}

fn hot_key() -> Key {
    Key::from("the-one-hot-key")
}

/// Interleaved-conflict result for the single-version file baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictReport {
    /// Read-modify-write attempts.
    pub attempts: u64,
    /// Attempts that lost the optimistic version check and had to retry.
    pub conflicts: u64,
}

impl ConflictReport {
    /// Fraction of attempts that conflicted.
    pub fn conflict_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.attempts as f64
        }
    }
}

/// Simulates `clients` concurrent read-modify-write transactions per round
/// against one Gifford-replicated file: every client reads the current
/// version, then all write — only one write per round can win. Each client
/// is editing a *different* logical directory entry, yet they conflict,
/// because the whole directory shares one version number.
///
/// Returns the attempt/conflict counts over `rounds` rounds.
pub fn gifford_interleaved_conflicts(clients: usize, rounds: u64, seed: u64) -> ConflictReport {
    let mut suite = FileSuite::new(SuiteConfig::symmetric(3, 2, 2).expect("3-2-2"), seed);
    let mut report = ConflictReport::default();
    for round in 0..rounds {
        // Phase 1: every client reads the version it will base its write on.
        let bases: Vec<_> = (0..clients)
            .map(|_| suite.read().expect("all replicas up").0)
            .collect();
        // Phase 2: every client writes its own (disjoint) change.
        for (c, base) in bases.into_iter().enumerate() {
            report.attempts += 1;
            let payload = format!("round{round}-client{c}").into_bytes();
            match suite.write(base, payload) {
                Ok(_) => {}
                Err(BaselineError::Conflict) => report.conflicts += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
    report
}

/// §2's static-partitioning concurrency warning, measured: `clients`
/// concurrent read-modify-write transactions per round pick keys from a
/// Zipf(θ) distribution over `key_space` keys. Static partitioning
/// serializes same-*partition* writers (optimistic conflicts, counted by
/// the real `StaticPartitionDirectory` version check); the gap-versioned
/// algorithm only serializes same-*key* writers (range locks), so its
/// conflict count is the number of same-key collisions.
///
/// Returns `(static_partition_conflicts, same_key_collisions)` over all
/// rounds.
pub fn skewed_contention(
    partitions: usize,
    key_space: u64,
    clients: usize,
    rounds: u64,
    theta: f64,
    seed: u64,
) -> (ConflictReport, ConflictReport) {
    assert!(partitions >= 1);
    // Partition boundaries split the u64-ranked key space evenly.
    let boundaries: Vec<UserKey> = (1..partitions as u64)
        .map(|i| UserKey::from_u64(i * key_space / partitions as u64))
        .collect();
    let mut dir = StaticPartitionDirectory::new(
        SuiteConfig::symmetric(3, 2, 2).expect("3-2-2"),
        boundaries,
        seed,
    );
    // Seed every key so RMWs always find their partition populated.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut zipf = Zipf::new(theta);

    let mut partition_report = ConflictReport::default();
    let mut key_report = ConflictReport::default();
    for _ in 0..rounds {
        // Each client picks a key by Zipf rank over the key space.
        let picks: Vec<u64> = (0..clients)
            .map(|_| zipf.sample(key_space as usize, &mut rng) as u64)
            .collect();
        // Phase 1: everyone reads its partition.
        let reads: Vec<(usize, Version, std::collections::BTreeMap<UserKey, Value>)> = picks
            .iter()
            .map(|&k| {
                let p = dir.partition_of(&UserKey::from_u64(k));
                let (version, map) = dir.read_partition(p).expect("all replicas up");
                (p, version, map)
            })
            .collect();
        // Phase 2: everyone writes back its own key.
        for (&k, (p, version, mut map)) in picks.iter().zip(reads) {
            partition_report.attempts += 1;
            map.insert(UserKey::from_u64(k), Value::from("w"));
            match dir.write_partition(p, version, map) {
                Ok(()) => {}
                Err(BaselineError::Conflict) => partition_report.conflicts += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        // Same-key collisions: what the gap-versioned algorithm's range
        // locks would serialize (everything else proceeds in parallel).
        key_report.attempts += clients as u64;
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                key_report.conflicts += 1;
            }
        }
    }
    (partition_report, key_report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gifford_conflicts_grow_with_client_count() {
        let two = gifford_interleaved_conflicts(2, 200, 1);
        let eight = gifford_interleaved_conflicts(8, 200, 2);
        // With k interleaved clients, k-1 of k writes per round conflict.
        assert_eq!(two.conflicts, 200);
        assert_eq!(eight.conflicts, 200 * 7);
        assert!((two.conflict_rate() - 0.5).abs() < 1e-12);
        assert!((eight.conflict_rate() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn single_client_never_conflicts() {
        let one = gifford_interleaved_conflicts(1, 100, 3);
        assert_eq!(one.conflicts, 0);
        assert_eq!(one.conflict_rate(), 0.0);
    }

    #[test]
    fn skewed_contention_hurts_partitions_more_than_keys() {
        // Heavy skew, few partitions: partition conflicts abound while
        // same-key collisions stay far rarer.
        let (partition, key) = skewed_contention(4, 1000, 8, 100, 0.99, 1);
        assert_eq!(partition.attempts, 800);
        assert!(
            partition.conflict_rate() > key.conflict_rate() + 0.2,
            "partition {} vs key {}",
            partition.conflict_rate(),
            key.conflict_rate()
        );
        // Uniform access over a large key space: both are mild, partitions
        // still worse.
        let (pu, ku) = skewed_contention(4, 1000, 8, 100, 0.0, 2);
        assert!(pu.conflict_rate() >= ku.conflict_rate());
        assert!(ku.conflict_rate() < 0.1);
        // More skew means more partition conflicts.
        let (p_hot, _) = skewed_contention(4, 1000, 8, 100, 1.2, 3);
        assert!(p_hot.conflicts >= partition.conflicts * 9 / 10);
    }

    #[test]
    fn repdir_disjoint_writers_avoid_lock_waits() {
        let report = repdir_throughput(4, 25, true, 4);
        assert_eq!(report.ops, 100);
        assert_eq!(report.deadlocks, 0);
        // Disjoint ranges: directory-level data locks never collide. (A
        // handful of waits can still occur on metadata-free paths; none
        // expected here.)
        assert_eq!(report.lock_waits, 0, "disjoint writers should not wait");
        assert!(report.ops_per_sec() > 0.0);
    }

    #[test]
    fn repdir_hotspot_writers_contend() {
        // Deterministic contention: one transaction holds the hot key's
        // range lock while another thread updates it — the second must
        // wait until the first commits.
        let dir = Arc::new(
            ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 5).unwrap(),
        );
        dir.insert(&hot_key(), &Value::from("0")).unwrap();
        let mut txn = dir.begin();
        txn.suite_mut()
            .update(&hot_key(), &Value::from("held"))
            .unwrap();
        let waiter = {
            let dir = Arc::clone(&dir);
            std::thread::spawn(move || dir.update(&hot_key(), &Value::from("late")))
        };
        std::thread::sleep(Duration::from_millis(80));
        txn.commit();
        waiter.join().unwrap().unwrap();
        let waits: u64 = dir.reps().iter().map(|r| r.lock_stats().waited).sum();
        let timeouts: u64 = dir.reps().iter().map(|r| r.lock_stats().timeouts).sum();
        assert!(
            waits + timeouts > 0,
            "hotspot writer must queue on the range lock"
        );
        assert_eq!(
            dir.lookup(&hot_key()).unwrap().value,
            Some(Value::from("late"))
        );
    }
}
