//! Adapters that put the paper's algorithm behind the baselines' common
//! [`DirectoryOps`] interface, plus a generic empirical-availability
//! driver.

use repdir_baselines::{BaselineError, DirectoryOps};
use repdir_core::rng::StdRng;
use repdir_core::suite::{DirSuite, RandomPolicy, SuiteConfig};
use repdir_core::{Key, LocalRep, RepId, SuiteError, Value};

/// The gap-versioned replicated directory exposed through
/// [`DirectoryOps`], so comparison drivers treat it exactly like the
/// baselines.
#[derive(Debug)]
pub struct SuiteDirectory {
    suite: DirSuite<LocalRep>,
}

impl SuiteDirectory {
    /// Creates an in-process suite with uniformly random quorums.
    pub fn new(config: SuiteConfig, seed: u64) -> Self {
        let clients = (0..config.member_count())
            .map(|i| LocalRep::new(RepId(i as u32)))
            .collect();
        let suite = DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
            .expect("valid configuration");
        SuiteDirectory { suite }
    }

    /// Injects or heals a failure at representative `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_available(&mut self, i: usize, available: bool) {
        self.suite.member(i).set_available(available);
    }

    /// The wrapped suite.
    pub fn suite_mut(&mut self) -> &mut DirSuite<LocalRep> {
        &mut self.suite
    }
}

fn convert(e: SuiteError) -> BaselineError {
    match e {
        SuiteError::QuorumUnavailable {
            needed, gathered, ..
        } => BaselineError::Unavailable { needed, gathered },
        SuiteError::AlreadyExists { key } => BaselineError::AlreadyExists { key },
        SuiteError::NotFound { key } | SuiteError::SentinelKey { key } => {
            BaselineError::NotFound { key }
        }
        // SuiteError is #[non_exhaustive]; treat anything else (including
        // representative failures) as unavailability for comparison runs.
        _ => BaselineError::Unavailable {
            needed: 0,
            gathered: 0,
        },
    }
}

impl DirectoryOps for SuiteDirectory {
    fn lookup(&mut self, key: &Key) -> Result<Option<Value>, BaselineError> {
        let out = self.suite.lookup(key).map_err(convert)?;
        Ok(if out.present { out.value } else { None })
    }

    fn insert(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        self.suite.insert(key, value).map(drop).map_err(convert)
    }

    fn update(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        self.suite.update(key, value).map(drop).map_err(convert)
    }

    fn delete(&mut self, key: &Key) -> Result<(), BaselineError> {
        self.suite.delete(key).map(drop).map_err(convert)
    }

    // The bulk overrides route to the suite's session-quorum batch path —
    // one write-quorum collection per batch instead of one per key — while
    // keeping the trait's per-key-loop error contract (the suite's bulk ops
    // apply the exact prefix before the offending key).

    fn insert_many(&mut self, entries: &[(Key, Value)]) -> Result<(), BaselineError> {
        self.suite.insert_many(entries).map(drop).map_err(convert)
    }

    fn delete_many(&mut self, keys: &[Key]) -> Result<(), BaselineError> {
        self.suite.delete_many(keys).map(drop).map_err(convert)
    }
}

/// Outcome counts from an [`empirical_availability`] trial.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Operations that completed.
    pub succeeded: u64,
    /// Operations refused for lack of replicas (or ambiguity).
    pub unavailable: u64,
}

impl TrialOutcome {
    /// Success fraction.
    pub fn availability(&self) -> f64 {
        let total = self.succeeded + self.unavailable;
        if total == 0 {
            0.0
        } else {
            self.succeeded as f64 / total as f64
        }
    }
}

/// Measures operation availability empirically: before each operation,
/// every replica is independently up with probability `p`; the counters
/// record whether the operation succeeded.
///
/// `reads` selects lookups (of a pre-inserted key) vs updates of that key.
/// Domain errors other than unavailability/ambiguity are not expected and
/// panic, since the workload only touches a key it inserted while fully up.
pub fn empirical_availability<D: DirectoryOps>(
    dir: &mut D,
    set_available: impl Fn(&mut D, usize, bool),
    replicas: usize,
    p: f64,
    reads: bool,
    ops: u64,
    seed: u64,
) -> TrialOutcome {
    let key = Key::from("availability-probe");
    dir.insert(&key, &Value::from("x"))
        .expect("initial insert with all replicas up");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcome = TrialOutcome::default();
    for _ in 0..ops {
        for i in 0..replicas {
            let up = rng.gen_bool(p.clamp(0.0, 1.0));
            set_available(dir, i, up);
        }
        let result = if reads {
            dir.lookup(&key).map(drop)
        } else {
            dir.update(&key, &Value::from("y")).map(drop)
        };
        match result {
            Ok(()) => outcome.succeeded += 1,
            Err(BaselineError::Unavailable { .. }) | Err(BaselineError::Ambiguous { .. }) => {
                outcome.unavailable += 1
            }
            Err(e) => panic!("unexpected workload error: {e}"),
        }
    }
    // Heal everything before handing the directory back.
    for i in 0..replicas {
        set_available(dir, i, true);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_322() -> SuiteConfig {
        SuiteConfig::symmetric(3, 2, 2).unwrap()
    }

    #[test]
    fn suite_directory_behaves_like_a_directory() {
        let mut d = SuiteDirectory::new(cfg_322(), 1);
        let k = Key::from("a");
        assert_eq!(d.lookup(&k).unwrap(), None);
        d.insert(&k, &Value::from("A")).unwrap();
        assert_eq!(d.lookup(&k).unwrap(), Some(Value::from("A")));
        assert_eq!(
            d.insert(&k, &Value::from("A")),
            Err(BaselineError::AlreadyExists { key: k.clone() })
        );
        d.update(&k, &Value::from("A2")).unwrap();
        d.delete(&k).unwrap();
        assert_eq!(
            d.delete(&k),
            Err(BaselineError::NotFound { key: k.clone() })
        );
    }

    #[test]
    fn bulk_ops_match_the_per_key_contract() {
        let mut d = SuiteDirectory::new(cfg_322(), 5);
        let entries: Vec<(Key, Value)> = (0..6)
            .map(|i| (Key::from(format!("w{i}").as_str()), Value::from("v")))
            .collect();
        d.insert_many(&entries).unwrap();
        for (k, _) in &entries {
            assert_eq!(d.lookup(k).unwrap(), Some(Value::from("v")));
        }
        // A failing batch applies the exact prefix, like a per-key loop.
        let bad = vec![
            (Key::from("x0"), Value::from("v")),
            (Key::from("w3"), Value::from("v")),
            (Key::from("x1"), Value::from("v")),
        ];
        assert_eq!(
            d.insert_many(&bad),
            Err(BaselineError::AlreadyExists {
                key: Key::from("w3")
            })
        );
        assert_eq!(d.lookup(&Key::from("x0")).unwrap(), Some(Value::from("v")));
        assert_eq!(d.lookup(&Key::from("x1")).unwrap(), None);
        let keys: Vec<Key> = entries.iter().map(|(k, _)| k.clone()).collect();
        d.delete_many(&keys).unwrap();
        for k in &keys {
            assert_eq!(d.lookup(k).unwrap(), None);
        }
    }

    #[test]
    fn unavailability_converts() {
        let mut d = SuiteDirectory::new(cfg_322(), 2);
        d.set_available(0, false);
        d.set_available(1, false);
        assert_eq!(
            d.lookup(&Key::from("a")),
            Err(BaselineError::Unavailable {
                needed: 2,
                gathered: 1
            })
        );
    }

    #[test]
    fn empirical_availability_tracks_analytic_for_322() {
        let mut d = SuiteDirectory::new(cfg_322(), 3);
        let p = 0.8;
        let outcome = empirical_availability(
            &mut d,
            |d, i, up| d.set_available(i, up),
            3,
            p,
            true,
            4000,
            7,
        );
        let expect = crate::availability::symmetric_availability(3, 2, p);
        assert!(
            (outcome.availability() - expect).abs() < 0.03,
            "measured {} vs analytic {expect}",
            outcome.availability()
        );
    }

    #[test]
    fn empirical_availability_all_up_is_one() {
        let mut d = SuiteDirectory::new(cfg_322(), 4);
        let outcome = empirical_availability(
            &mut d,
            |d, i, up| d.set_available(i, up),
            3,
            1.0,
            false,
            100,
            8,
        );
        assert_eq!(outcome.unavailable, 0);
        assert_eq!(outcome.availability(), 1.0);
    }
}
