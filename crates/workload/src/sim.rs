//! The paper's §4 simulation: steady-state uniform-random workloads over a
//! directory suite, collecting the three deletion statistics.
//!
//! "Figure 14 shows the average results of simulations using directory
//! sizes of approximately one hundred entries with varying numbers of
//! directory representatives and varying sizes of read and write quorums.
//! The duration of each simulation was ten thousand operations, and the
//! members of quorums and the keys to insert, update, or delete were
//! selected randomly from a uniform distribution."

use std::collections::HashMap;

use repdir_core::rng::SplitMix64;
use repdir_core::rng::StdRng;
use repdir_core::suite::{DirSuite, QuorumPolicy, RandomPolicy, StickyPolicy, SuiteConfig};
use repdir_core::{Key, LocalRep, SuiteError, UserKey, Value};

use crate::stats::{Histogram, RunningStat};

/// Which quorum-selection policy a simulation uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicyKind {
    /// Uniform random permutation per operation — the paper's setup.
    Random,
    /// A preferred permutation re-drawn with the given probability per
    /// operation (§5's "write quorums change infrequently").
    Sticky(f64),
}

impl PolicyKind {
    fn build(self, seed: u64) -> Box<dyn QuorumPolicy + Send> {
        match self {
            PolicyKind::Random => Box::new(RandomPolicy::new(seed)),
            PolicyKind::Sticky(p) => Box::new(StickyPolicy::new(seed, p)),
        }
    }
}

/// Parameters of one simulation run.
#[derive(Clone, Debug)]
pub struct SimParams {
    /// Suite configuration (`x-y-z`).
    pub config: SuiteConfig,
    /// Steady-state directory size the workload regulates around.
    pub target_size: usize,
    /// Counted operations (after the warm-up fill).
    pub ops: u64,
    /// Seed for keys, operation choices, and quorum selection.
    pub seed: u64,
    /// Quorum selection policy.
    pub policy: PolicyKind,
    /// Fraction of operations that are updates (the rest split between
    /// inserts and deletes, biased to hold the target size).
    pub update_fraction: f64,
    /// Cross-check every suite reply against a sequential model (slower;
    /// on by default — a simulation that silently corrupts is worthless).
    pub check_model: bool,
    /// §4 neighbor-RPC batch size (1 = the unbatched Fig. 12 search).
    pub neighbor_batch: usize,
}

impl SimParams {
    /// The paper's Figure 14 setup for one configuration: ~100 entries,
    /// 10 000 operations, uniform random everything.
    pub fn figure14(config: SuiteConfig, seed: u64) -> Self {
        SimParams {
            config,
            target_size: 100,
            ops: 10_000,
            seed,
            policy: PolicyKind::Random,
            update_fraction: 0.2,
            check_model: true,
            neighbor_batch: 1,
        }
    }

    /// The paper's Figure 15 setup: a 3-2-2 suite at the given size,
    /// 100 000 operations.
    pub fn figure15(target_size: usize, seed: u64) -> Self {
        SimParams {
            config: SuiteConfig::symmetric(3, 2, 2).expect("3-2-2 is legal"),
            target_size,
            ops: 100_000,
            seed,
            policy: PolicyKind::Random,
            update_fraction: 0.2,
            check_model: true,
            neighbor_batch: 1,
        }
    }
}

/// Aggregated results of one simulation run — the three §4 statistics plus
/// supporting detail.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// "Entries in ranges coalesced": per write-quorum representative, the
    /// entries removed by each delete's coalesce (deleted entry + ghosts).
    pub entries_coalesced: RunningStat,
    /// "Deletions while coalescing": ghost entries removed per suite
    /// delete.
    pub deletions_while_coalescing: RunningStat,
    /// "Insertions while coalescing": real-predecessor/successor copies
    /// installed per suite delete.
    pub insertions_while_coalescing: RunningStat,
    /// Combined real-predecessor + real-successor search iterations per
    /// delete (the §4 message-batching claim).
    pub search_steps: Histogram,
    /// Neighbor-chain RPCs per delete (across both searches and all quorum
    /// members) — what §4 batching reduces.
    pub neighbor_rpcs: RunningStat,
    /// Operations executed by kind.
    pub inserts: u64,
    /// Update count.
    pub updates: u64,
    /// Delete count.
    pub deletes: u64,
    /// Directory size when the run ended.
    pub final_size: usize,
    /// Per-representative entry counts at the end (ghost load indicator).
    pub rep_entry_counts: Vec<usize>,
}

impl SimReport {
    /// Renders the three statistics in the paper's `Avg Max Std Dev` rows.
    pub fn figure_rows(&self) -> String {
        format!(
            "Entries in ranges coalesced    {}\n\
             Deletions while coalescing     {}\n\
             Insertions while coalescing    {}",
            self.entries_coalesced,
            self.deletions_while_coalescing,
            self.insertions_while_coalescing
        )
    }
}

/// Runs one steady-state simulation.
///
/// The workload first fills the directory to `target_size` (uncounted),
/// then performs `params.ops` operations: updates with probability
/// `update_fraction`; otherwise an insert of a fresh uniform key or a
/// delete of a uniform existing key, with the insert/delete coin biased
/// toward the target size (a mean-reverting random walk, keeping "sizes of
/// approximately one hundred entries").
///
/// # Panics
///
/// Panics if the suite returns an error (the simulation runs with all
/// representatives up, so every quorum is reachable) or — with
/// `check_model` — if a reply ever disagrees with the sequential model.
pub fn run_sim(params: &SimParams) -> SimReport {
    let mut seeds = SplitMix64::new(params.seed);
    let policy = params.policy.build(seeds.next_u64());
    let clients = (0..params.config.member_count())
        .map(|i| LocalRep::new(repdir_core::RepId(i as u32)))
        .collect();
    let mut suite =
        DirSuite::new(clients, params.config.clone(), policy).expect("valid configuration");
    suite.set_neighbor_batch(params.neighbor_batch);
    let mut rng = StdRng::seed_from_u64(seeds.next_u64());
    let mut model = Model::new();
    let mut report = SimReport::default();

    // Warm-up fill (not counted in the statistics).
    while model.len() < params.target_size {
        let (key, stamp) = model.fresh_key(&mut rng);
        suite
            .insert(&Key::User(key.clone()), &value_for(stamp))
            .expect("warm-up insert");
        model.insert(key, stamp);
    }

    for _ in 0..params.ops {
        let roll: f64 = rng.gen();
        if roll < params.update_fraction && !model.is_empty() {
            // Update a uniform existing key.
            let key = model.random_key(&mut rng);
            let stamp = rng.gen();
            suite
                .update(&Key::User(key.clone()), &value_for(stamp))
                .expect("update existing");
            model.insert(key, stamp);
            report.updates += 1;
        } else {
            // Insert/delete, biased toward the target size.
            let size = model.len() as f64;
            let target = params.target_size as f64;
            let p_insert = (0.5 + 0.5 * (target - size) / target).clamp(0.05, 0.95);
            if model.is_empty() || rng.gen_bool(p_insert) {
                let (key, stamp) = model.fresh_key(&mut rng);
                suite
                    .insert(&Key::User(key.clone()), &value_for(stamp))
                    .expect("insert fresh");
                model.insert(key, stamp);
                report.inserts += 1;
            } else {
                let key = model.random_key(&mut rng);
                let out = suite
                    .delete(&Key::User(key.clone()))
                    .expect("delete existing");
                model.remove(&key);
                report.deletes += 1;
                for (_, removed) in &out.entries_in_range {
                    report.entries_coalesced.push(*removed as f64);
                }
                report
                    .deletions_while_coalescing
                    .push(out.ghosts_deleted as f64);
                report
                    .insertions_while_coalescing
                    .push(out.copies_inserted as f64);
                report
                    .search_steps
                    .record((out.pred_steps + out.succ_steps) as usize);
                report
                    .neighbor_rpcs
                    .push((out.pred_rpcs + out.succ_rpcs) as f64);
            }
        }
        if params.check_model {
            // Spot-check a uniform key against the model: either a current
            // entry or a uniformly random absent key.
            let probe = if !model.is_empty() && rng.gen_bool(0.5) {
                model.random_key(&mut rng)
            } else {
                UserKey::from_u64(rng.gen())
            };
            let got = suite.lookup(&Key::User(probe.clone())).expect("lookup");
            match model.get(&probe) {
                Some(stamp) => {
                    assert!(got.present, "model has {probe:?}, suite says absent");
                    assert_eq!(
                        got.value.as_ref(),
                        Some(&value_for(*stamp)),
                        "value mismatch for {probe:?}"
                    );
                }
                None => assert!(!got.present, "suite resurrected {probe:?}"),
            }
        }
    }

    report.final_size = model.len();
    report.rep_entry_counts = (0..suite.member_count())
        .map(|i| suite.member(i).len())
        .collect();
    report
}

fn value_for(stamp: u64) -> Value {
    Value::from(stamp.to_le_bytes().to_vec())
}

/// The sequential oracle: a map plus a dense key vector for O(1) uniform
/// sampling of existing keys.
#[derive(Default)]
struct Model {
    slots: HashMap<UserKey, (usize, u64)>,
    keys: Vec<UserKey>,
}

impl Model {
    fn new() -> Self {
        Model::default()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn get(&self, key: &UserKey) -> Option<&u64> {
        self.slots.get(key).map(|(_, stamp)| stamp)
    }

    fn insert(&mut self, key: UserKey, stamp: u64) {
        match self.slots.get_mut(&key) {
            Some((_, slot)) => *slot = stamp,
            None => {
                self.slots.insert(key.clone(), (self.keys.len(), stamp));
                self.keys.push(key);
            }
        }
    }

    fn remove(&mut self, key: &UserKey) {
        if let Some((idx, _)) = self.slots.remove(key) {
            self.keys.swap_remove(idx);
            if let Some(moved) = self.keys.get(idx) {
                self.slots.get_mut(moved).expect("moved key tracked").0 = idx;
            }
        }
    }

    fn random_key(&self, rng: &mut StdRng) -> UserKey {
        self.keys[rng.gen_range(0..self.keys.len())].clone()
    }

    fn fresh_key(&self, rng: &mut StdRng) -> (UserKey, u64) {
        loop {
            let key = UserKey::from_u64(rng.gen());
            if !self.slots.contains_key(&key) {
                return (key, rng.gen());
            }
        }
    }
}

/// Convenience error type for drivers that surface suite failures instead
/// of panicking.
pub type SimResult<T> = Result<T, SuiteError>;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(config: SuiteConfig, seed: u64) -> SimParams {
        SimParams {
            config,
            target_size: 30,
            ops: 800,
            seed,
            policy: PolicyKind::Random,
            update_fraction: 0.2,
            check_model: true,
            neighbor_batch: 1,
        }
    }

    #[test]
    fn steady_state_stays_near_target() {
        let report = run_sim(&quick(SuiteConfig::symmetric(3, 2, 2).unwrap(), 1));
        assert!(
            report.final_size >= 10 && report.final_size <= 60,
            "size drifted to {}",
            report.final_size
        );
        assert!(report.deletes > 50, "deletes: {}", report.deletes);
        assert!(report.inserts > 50);
        assert!(report.updates > 50);
    }

    #[test]
    fn model_check_holds_across_configs() {
        for (n, r, w) in [(1, 1, 1), (2, 1, 2), (3, 2, 2), (4, 2, 3), (5, 3, 3)] {
            let config = SuiteConfig::symmetric(n, r, w).unwrap();
            // run_sim panics on any model divergence.
            let report = run_sim(&quick(config, 7 + n as u64));
            assert_eq!(report.deletes, report.deletions_while_coalescing.count());
        }
    }

    #[test]
    fn single_rep_suite_has_no_replication_overhead() {
        let report = run_sim(&quick(SuiteConfig::symmetric(1, 1, 1).unwrap(), 3));
        // With one representative there are never ghosts or missing
        // neighbors.
        assert_eq!(report.deletions_while_coalescing.mean(), 0.0);
        assert_eq!(report.insertions_while_coalescing.mean(), 0.0);
        // Every coalesce removes exactly the deleted entry.
        assert!((report.entries_coalesced.mean() - 1.0).abs() < 1e-9);
        assert_eq!(report.entries_coalesced.max(), 1.0);
    }

    #[test]
    fn unanimous_write_quorum_has_no_ghosts() {
        // W = N: every replica sees every write, so deletes never find
        // ghosts and never copy neighbors.
        let report = run_sim(&quick(SuiteConfig::symmetric(3, 1, 3).unwrap(), 4));
        assert_eq!(report.deletions_while_coalescing.mean(), 0.0);
        assert_eq!(report.insertions_while_coalescing.mean(), 0.0);
    }

    #[test]
    fn random_quorums_do_produce_ghost_work_in_322() {
        let report = run_sim(&quick(SuiteConfig::symmetric(3, 2, 2).unwrap(), 5));
        assert!(
            report.entries_coalesced.mean() > 1.0,
            "ghosts should appear: {}",
            report.entries_coalesced.mean()
        );
        assert!(report.insertions_while_coalescing.mean() > 0.0);
    }

    #[test]
    fn sticky_quorums_reduce_coalescing_work() {
        let mut random = quick(SuiteConfig::symmetric(3, 2, 2).unwrap(), 6);
        random.ops = 2000;
        let mut sticky = random.clone();
        sticky.policy = PolicyKind::Sticky(0.01);
        let r = run_sim(&random);
        let s = run_sim(&sticky);
        assert!(
            s.deletions_while_coalescing.mean() < r.deletions_while_coalescing.mean(),
            "sticky {} !< random {}",
            s.deletions_while_coalescing.mean(),
            r.deletions_while_coalescing.mean()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = quick(SuiteConfig::symmetric(3, 2, 2).unwrap(), 42);
        let a = run_sim(&p);
        let b = run_sim(&p);
        assert_eq!(a.entries_coalesced, b.entries_coalesced);
        assert_eq!(a.final_size, b.final_size);
        assert_eq!(a.rep_entry_counts, b.rep_entry_counts);
    }

    #[test]
    fn figure_rows_render() {
        let report = run_sim(&quick(SuiteConfig::symmetric(3, 2, 2).unwrap(), 8));
        let rows = report.figure_rows();
        assert!(rows.contains("Entries in ranges coalesced"));
        assert!(rows.lines().count() == 3);
    }
}
