//! # repdir-workload
//!
//! Workload generation, simulation, and measurement for replicated
//! directories — everything behind the paper's §4 evaluation and the
//! benchmark harness:
//!
//! * [`sim`] — the steady-state uniform-random simulation of §4, producing
//!   the three deletion statistics of Figures 14 and 15
//!   ([`SimParams`], [`run_sim`], [`SimReport`]);
//! * [`stats`] — [`RunningStat`] (avg/max/σ, the Figure 15 aggregates) and
//!   [`Histogram`] (the §4 search-step distribution);
//! * [`availability`] — closed-form and Monte-Carlo quorum availability
//!   (the §1/§5 tunability claims), including the unanimous-update
//!   comparison;
//! * [`locality`] — the Figure 16 experiment: local reads, evenly spread
//!   remote writes;
//! * [`concurrency`] — threaded throughput of the transactional stack and
//!   the single-version file baseline's conflict behaviour;
//! * [`adapter`] — the paper's algorithm behind the baselines'
//!   [`DirectoryOps`](repdir_baselines::DirectoryOps) interface, plus an
//!   empirical availability driver.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapter;
pub mod analytic;
pub mod availability;
pub mod concurrency;
pub mod keys;
pub mod locality;
pub mod sim;
pub mod stats;

pub use adapter::{empirical_availability, SuiteDirectory, TrialOutcome};
pub use analytic::{analytic_delete_stats, AnalyticStats};
pub use availability::{
    monte_carlo_availability, suite_availability, symmetric_availability, unanimous_availability,
    weighted_availability,
};
pub use concurrency::{
    gifford_interleaved_conflicts, repdir_throughput, skewed_contention, ConflictReport,
    ThroughputReport,
};
pub use keys::Zipf;
pub use locality::{run_locality, LocalityReport};
pub use sim::{run_sim, PolicyKind, SimParams, SimReport};
pub use stats::{Histogram, RunningStat};
