//! Statistics accumulators for the simulation reports.

use std::fmt;

/// Running mean / max / standard deviation over streamed samples
/// (Welford's algorithm — single pass, numerically stable).
///
/// The paper's Figure 15 reports exactly these three aggregates (Avg, Max,
/// Std Dev) for each statistic.
///
/// # Examples
///
/// ```
/// use repdir_workload::RunningStat;
///
/// let mut s = RunningStat::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.max(), 3.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if self.n == 1 || x > self.max {
            self.max = x;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population standard deviation (0 when fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl fmt::Display for RunningStat {
    /// `avg max σ` in the paper's Figure 15 layout.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} {:>3} {:.2}",
            self.mean(),
            self.max() as u64,
            self.std_dev()
        )
    }
}

/// A histogram over small non-negative integers (search-step counts,
/// quorum sizes, …).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if self.counts.len() <= value {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Observations of exactly `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations `<= value` (0 when empty).
    pub fn fraction_at_most(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().take(value + 1).sum();
        sum as f64 / self.total as f64
    }

    /// `(value, count)` pairs with non-zero counts.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max_stddev_known_values() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.max(), 9.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-12, "{}", s.std_dev());
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stat_is_all_zero() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let mut s = RunningStat::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_equals_pushing_everything() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.count(), whole.count());

        // Merging into/from empties.
        let mut e = RunningStat::new();
        e.merge(&whole);
        assert_eq!(e, whole);
        let before = whole;
        let mut w2 = whole;
        w2.merge(&RunningStat::new());
        assert_eq!(w2, before);
    }

    #[test]
    fn display_matches_figure15_layout() {
        let mut s = RunningStat::new();
        s.push(1.0);
        s.push(2.0);
        let line = s.to_string();
        assert!(line.starts_with("1.50"), "{line}");
        assert!(line.contains('2'), "{line}");
    }

    #[test]
    fn histogram_counts_and_fractions() {
        let mut h = Histogram::new();
        for v in [1, 1, 1, 2, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 6);
        assert!((h.fraction_at_most(1) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_most(2) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets().count(), 3);
        assert_eq!(Histogram::new().fraction_at_most(5), 0.0);
    }
}
