//! A B+-tree holding gap-versioned directory entries.
//!
//! The paper's Discussion (§5) prescribes this representation: "We envision
//! that directories could be represented as B-trees. Version numbers for
//! gaps could be stored in fields in their bounding entries." [`GapBTree`]
//! does exactly that — each leaf record carries the version of the gap
//! *after* its entry, and the tree stores the first gap's version directly —
//! and offers the same operation set as
//! [`GapMap`](repdir_core::GapMap), against which it is cross-checked by
//! property tests.
//!
//! The tree is a textbook B+-tree: entries live in leaves, internal nodes
//! hold separator keys, inserts split upward, deletes borrow from or merge
//! with siblings.

use std::fmt;

use repdir_core::{
    CoalesceOutcome, GapInfo, InsertOutcome, Key, LookupReply, NeighborReply, RemovedEntry,
    RepError, UserKey, Value, Version,
};

/// One leaf record: the entry plus the version of the gap following it.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LeafRec {
    version: Version,
    value: Value,
    gap_after: Version,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Node {
    Leaf {
        entries: Vec<(UserKey, LeafRec)>,
    },
    Internal {
        /// `separators[i]` bounds: every key in `children[i]` is `<
        /// separators[i]`, every key in `children[i+1]` is `>=`.
        separators: Vec<UserKey>,
        children: Vec<Node>,
    },
}

impl Node {
    fn key_count(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { separators, .. } => separators.len(),
        }
    }
}

/// A gap-versioned B+-tree directory representative state.
///
/// Functionally identical to [`GapMap`](repdir_core::GapMap); use this when
/// the §5 B-tree representation (ordered pages, logarithmic descent) is
/// wanted, e.g. for large directories.
///
/// # Examples
///
/// ```
/// use repdir_core::{Key, Value, Version};
/// use repdir_storage::GapBTree;
///
/// let mut t = GapBTree::new(8);
/// for i in 0..100u64 {
///     t.insert(&Key::from(i), Version::new(1), Value::from("v"))?;
/// }
/// assert_eq!(t.len(), 100);
/// assert!(t.lookup(&Key::from(42u64)).is_present());
/// # Ok::<(), repdir_core::RepError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct GapBTree {
    order: usize,
    low_gap: Version,
    root: Node,
    len: usize,
}

impl GapBTree {
    /// Creates an empty tree. `order` is the maximum number of keys per
    /// node; nodes hold at least `order / 2` keys (root exempt).
    ///
    /// # Panics
    ///
    /// Panics if `order < 3`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 3, "B-tree order must be at least 3");
        GapBTree {
            order,
            low_gap: Version::ZERO,
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// The tree's node order (max keys per node).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether an entry exists for `key`. Sentinels are always "present".
    pub fn contains(&self, key: &Key) -> bool {
        match key {
            Key::Low | Key::High => true,
            Key::User(u) => self.get(u).is_some(),
        }
    }

    /// The version associated with any key (entry, containing gap, or zero
    /// for sentinels).
    pub fn version_of(&self, key: &Key) -> Version {
        self.lookup(key).version()
    }

    /// `DirRepLookup(x)` — see [`GapMap::lookup`](repdir_core::GapMap::lookup).
    pub fn lookup(&self, key: &Key) -> LookupReply {
        match key {
            Key::Low | Key::High => LookupReply::Present {
                version: Version::ZERO,
                value: Value::empty(),
            },
            Key::User(u) => match self.get(u) {
                Some(rec) => LookupReply::Present {
                    version: rec.version,
                    value: rec.value.clone(),
                },
                None => LookupReply::Absent {
                    gap_version: self.gap_version_below(u),
                },
            },
        }
    }

    /// `DirRepPredecessor(x)` — see
    /// [`GapMap::predecessor`](repdir_core::GapMap::predecessor).
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `x` is `LOW`.
    pub fn predecessor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        match key {
            Key::Low => Err(RepError::SentinelViolation {
                key: Key::Low,
                op: "predecessor",
            }),
            Key::User(u) => Ok(self.pred_reply(Some(u))),
            Key::High => Ok(self.pred_reply(None)),
        }
    }

    /// `DirRepSuccessor(x)` — see
    /// [`GapMap::successor`](repdir_core::GapMap::successor).
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `x` is `HIGH`.
    pub fn successor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        let (succ_entry, gap_version) = match key {
            Key::High => {
                return Err(RepError::SentinelViolation {
                    key: Key::High,
                    op: "successor",
                })
            }
            Key::Low => (self.min_entry(), self.low_gap),
            Key::User(u) => {
                let gap = match self.get(u) {
                    Some(rec) => rec.gap_after,
                    None => self.gap_version_below(u),
                };
                (self.succ_of(&self.root, u), gap)
            }
        };
        Ok(match succ_entry {
            Some((k, rec)) => NeighborReply {
                key: Key::User(k.clone()),
                entry_version: rec.version,
                gap_version,
            },
            None => NeighborReply {
                key: Key::High,
                entry_version: Version::ZERO,
                gap_version,
            },
        })
    }

    /// `DirRepInsert(x, v, z)` — see
    /// [`GapMap::insert`](repdir_core::GapMap::insert).
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `x` is a sentinel.
    pub fn insert(
        &mut self,
        key: &Key,
        version: Version,
        value: Value,
    ) -> Result<InsertOutcome, RepError> {
        let u = match key {
            Key::User(u) => u.clone(),
            s => {
                return Err(RepError::SentinelViolation {
                    key: s.clone(),
                    op: "insert",
                })
            }
        };
        if let Some(rec) = self.get_mut(&u) {
            let old_version = rec.version;
            let old_value = std::mem::replace(&mut rec.value, value);
            rec.version = version;
            return Ok(InsertOutcome::Updated {
                old_version,
                old_value,
            });
        }
        let split_gap_version = self.gap_version_below(&u);
        let rec = LeafRec {
            version,
            value,
            gap_after: split_gap_version,
        };
        let order = self.order;
        if let Some((sep, right)) = insert_rec(&mut self.root, u, rec, order) {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    separators: Vec::new(),
                    children: Vec::new(),
                },
            );
            self.root = Node::Internal {
                separators: vec![sep],
                children: vec![old_root, right],
            };
        }
        self.len += 1;
        Ok(InsertOutcome::Created { split_gap_version })
    }

    /// `DirRepCoalesce(l, h, v)` — see
    /// [`GapMap::coalesce`](repdir_core::GapMap::coalesce).
    ///
    /// # Errors
    ///
    /// [`RepError::InvalidRange`] / [`RepError::NoSuchBoundary`] as for
    /// [`GapMap::coalesce`](repdir_core::GapMap::coalesce).
    pub fn coalesce(
        &mut self,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> Result<CoalesceOutcome, RepError> {
        if low >= high {
            return Err(RepError::InvalidRange {
                low: low.clone(),
                high: high.clone(),
            });
        }
        if !self.contains(low) {
            return Err(RepError::NoSuchBoundary { key: low.clone() });
        }
        if !self.contains(high) {
            return Err(RepError::NoSuchBoundary { key: high.clone() });
        }

        // Collect doomed keys by a bounded tree descent (only subtrees
        // intersecting the open interval are visited).
        let mut doomed: Vec<UserKey> = Vec::new();
        collect_open_range(&self.root, low.as_user(), high.as_user(), &mut doomed);
        let mut removed = Vec::with_capacity(doomed.len());
        for k in doomed {
            let rec = self.remove(&k).expect("key enumerated above");
            removed.push(RemovedEntry {
                key: k,
                version: rec.version,
                value: rec.value,
                gap_after: rec.gap_after,
            });
        }
        let old_gap_version = match low {
            Key::Low => std::mem::replace(&mut self.low_gap, version),
            Key::User(u) => {
                let rec = self.get_mut(u).expect("boundary checked above");
                std::mem::replace(&mut rec.gap_after, version)
            }
            Key::High => unreachable!("low < high"),
        };
        Ok(CoalesceOutcome {
            removed,
            old_gap_version,
        })
    }

    /// All entries in key order as `(key, version, value)` clones.
    pub fn iter_collect(&self) -> Vec<(UserKey, Version, Value)> {
        self.iter()
            .map(|(k, v, val)| (k.clone(), v, val.clone()))
            .collect()
    }

    /// Lazily iterates entries in key order without copying.
    pub fn iter(&self) -> Iter<'_> {
        let mut stack = Vec::new();
        push_leftmost(&self.root, &mut stack);
        Iter { stack }
    }

    /// Version of the leading gap (between `LOW` and the first entry).
    pub fn low_gap(&self) -> Version {
        self.low_gap
    }

    /// Visits entries with byte keys in `[low, high)` in key order as
    /// `(key, version, value, gap_after)`, pruning subtrees entirely
    /// outside the range via separator keys. `None` bounds run to the
    /// corresponding sentinel. The `gap_after` versions let range
    /// summaries (repair subtree hashes) cover gap-only divergence.
    pub fn range_scan(
        &self,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        visit: &mut dyn FnMut(&UserKey, Version, &Value, Version),
    ) {
        visit_closed_open_range(&self.root, low, high, visit);
    }

    /// The gaps in key order; a tree with `n` entries yields `n + 1` gaps.
    pub fn gaps(&self) -> Vec<GapInfo> {
        let mut entries = Vec::with_capacity(self.len);
        collect_full(&self.root, &mut entries);
        let mut out = Vec::with_capacity(entries.len() + 1);
        let mut lower = Key::Low;
        let mut version = self.low_gap;
        for (k, rec) in entries {
            out.push(GapInfo {
                lower: lower.clone(),
                upper: Key::User(k.clone()),
                version,
            });
            lower = Key::User(k);
            version = rec.gap_after;
        }
        out.push(GapInfo {
            lower,
            upper: Key::High,
            version,
        });
        out
    }

    /// Checks structural invariants (sorted keys, uniform depth, node
    /// occupancy, separator bounds); returns the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_depth = None;
        check_node(&self.root, true, self.order, 0, &mut leaf_depth, None, None)?;
        let collected = self.iter_collect();
        if collected.len() != self.len {
            return Err(format!(
                "len {} but {} entries reachable",
                self.len,
                collected.len()
            ));
        }
        for w in collected.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("keys out of order: {:?} then {:?}", w[0].0, w[1].0));
            }
        }
        Ok(())
    }
}

/// Recovery and undo primitives matching
/// [`GapMap`](repdir_core::GapMap)'s.
impl GapBTree {
    /// Reinstates an entry with an exact record. Overwrites any existing
    /// record for the key.
    pub fn restore_entry(
        &mut self,
        key: UserKey,
        version: Version,
        value: Value,
        gap_after: Version,
    ) {
        if let Some(rec) = self.get_mut(&key) {
            rec.version = version;
            rec.value = value;
            rec.gap_after = gap_after;
            return;
        }
        let rec = LeafRec {
            version,
            value,
            gap_after,
        };
        let order = self.order;
        if let Some((sep, right)) = insert_rec(&mut self.root, key, rec, order) {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            self.root = Node::Internal {
                separators: vec![sep],
                children: vec![old_root, right],
            };
        }
        self.len += 1;
    }

    /// Removes an entry record outright. Returns `true` if it existed.
    pub fn remove_entry_raw(&mut self, key: &UserKey) -> bool {
        self.remove(key).is_some()
    }

    /// Rewrites an entry's version and value, leaving `gap_after` untouched.
    pub fn update_entry_raw(&mut self, key: &UserKey, version: Version, value: Value) -> bool {
        match self.get_mut(key) {
            Some(rec) => {
                rec.version = version;
                rec.value = value;
                true
            }
            None => false,
        }
    }

    /// Sets the version of the gap immediately after `low`.
    ///
    /// # Errors
    ///
    /// As [`GapMap::set_gap_after`](repdir_core::GapMap::set_gap_after).
    pub fn set_gap_after(&mut self, low: &Key, version: Version) -> Result<(), RepError> {
        match low {
            Key::Low => {
                self.low_gap = version;
                Ok(())
            }
            Key::User(u) => match self.get_mut(&u.clone()) {
                Some(rec) => {
                    rec.gap_after = version;
                    Ok(())
                }
                None => Err(RepError::NoSuchBoundary { key: low.clone() }),
            },
            Key::High => Err(RepError::SentinelViolation {
                key: Key::High,
                op: "set_gap_after",
            }),
        }
    }

    fn get(&self, key: &UserKey) -> Option<&LeafRec> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by(|(k, _)| k.cmp(key))
                        .ok()
                        .map(|i| &entries[i].1);
                }
                Node::Internal {
                    separators,
                    children,
                } => {
                    node = &children[child_index(separators, key)];
                }
            }
        }
    }

    fn get_mut(&mut self, key: &UserKey) -> Option<&mut LeafRec> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                        Ok(i) => Some(&mut entries[i].1),
                        Err(_) => None,
                    };
                }
                Node::Internal {
                    separators,
                    children,
                } => {
                    let idx = child_index(separators, key);
                    node = &mut children[idx];
                }
            }
        }
    }

    fn remove(&mut self, key: &UserKey) -> Option<LeafRec> {
        let order = self.order;
        let removed = remove_rec(&mut self.root, key, order);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that shrank to one child.
            if let Node::Internal { children, .. } = &mut self.root {
                if children.len() == 1 {
                    let only = children.pop().expect("one child");
                    self.root = only;
                }
            }
        }
        removed
    }

    /// Largest entry strictly below `bound` (`None` bound = global max).
    fn pred_of<'a>(
        &'a self,
        node: &'a Node,
        bound: Option<&UserKey>,
    ) -> Option<(&'a UserKey, &'a LeafRec)> {
        match node {
            Node::Leaf { entries } => {
                let idx = match bound {
                    Some(b) => match entries.binary_search_by(|(k, _)| k.cmp(b)) {
                        Ok(i) | Err(i) => i,
                    },
                    None => entries.len(),
                };
                idx.checked_sub(1).map(|i| (&entries[i].0, &entries[i].1))
            }
            Node::Internal {
                separators,
                children,
            } => {
                let start = match bound {
                    Some(b) => child_index(separators, b),
                    None => children.len() - 1,
                };
                // Search the child that could contain the predecessor; on
                // miss, fall back to the rightmost entry of earlier children.
                for i in (0..=start).rev() {
                    let b = if i == start { bound } else { None };
                    if let Some(found) = self.pred_of(&children[i], b) {
                        return Some(found);
                    }
                }
                None
            }
        }
    }

    /// Smallest entry strictly above `key`.
    fn succ_of<'a>(&'a self, node: &'a Node, key: &UserKey) -> Option<(&'a UserKey, &'a LeafRec)> {
        match node {
            Node::Leaf { entries } => {
                let idx = match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                entries.get(idx).map(|(k, r)| (k, r))
            }
            Node::Internal {
                separators,
                children,
            } => {
                let start = child_index(separators, key);
                for (i, child) in children.iter().enumerate().skip(start) {
                    let found = if i == start {
                        self.succ_of(child, key)
                    } else {
                        min_of(child)
                    };
                    if found.is_some() {
                        return found;
                    }
                }
                None
            }
        }
    }

    fn min_entry(&self) -> Option<(&UserKey, &LeafRec)> {
        min_of(&self.root)
    }

    fn pred_reply(&self, bound: Option<&UserKey>) -> NeighborReply {
        match self.pred_of(&self.root, bound) {
            Some((k, rec)) => NeighborReply {
                key: Key::User(k.clone()),
                entry_version: rec.version,
                gap_version: rec.gap_after,
            },
            None => NeighborReply {
                key: Key::Low,
                entry_version: Version::ZERO,
                gap_version: self.low_gap,
            },
        }
    }

    fn gap_version_below(&self, u: &UserKey) -> Version {
        match self.pred_of(&self.root, Some(u)) {
            Some((_, rec)) => rec.gap_after,
            None => self.low_gap,
        }
    }
}

impl fmt::Debug for GapBTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GapBTree(order={}) [LOW |{}|", self.order, self.low_gap)?;
        for (k, v, _) in self.iter_collect() {
            let rec = self.get(&k).expect("iterated key exists");
            write!(f, " {k:?}(v{v}) |{}|", rec.gap_after)?;
        }
        write!(f, " HIGH]")
    }
}

/// Index of the child that may contain `key`: first separator `> key` ends
/// the scan. Keys equal to a separator go right.
fn child_index(separators: &[UserKey], key: &UserKey) -> usize {
    match separators.binary_search(key) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

fn min_of(node: &Node) -> Option<(&UserKey, &LeafRec)> {
    match node {
        Node::Leaf { entries } => entries.first().map(|(k, r)| (k, r)),
        Node::Internal { children, .. } => children.iter().find_map(min_of),
    }
}

/// In-order borrow iterator over the tree (see [`GapBTree::iter`]).
#[derive(Debug)]
pub struct Iter<'a> {
    /// Frames of `(node, next index)` — for leaves the next entry, for
    /// internal nodes the next child to descend into.
    stack: Vec<(&'a Node, usize)>,
}

fn push_leftmost<'a>(mut node: &'a Node, stack: &mut Vec<(&'a Node, usize)>) {
    loop {
        match node {
            Node::Leaf { .. } => {
                stack.push((node, 0));
                return;
            }
            Node::Internal { children, .. } => {
                stack.push((node, 1));
                node = &children[0];
            }
        }
    }
}

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a UserKey, Version, &'a Value);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = self.stack.last_mut()?;
            match node {
                Node::Leaf { entries } => {
                    if let Some((k, rec)) = entries.get(*idx) {
                        *idx += 1;
                        return Some((k, rec.version, &rec.value));
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if *idx < children.len() {
                        let child = &children[*idx];
                        *idx += 1;
                        push_leftmost(child, &mut self.stack);
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

/// Collects keys strictly inside `(low, high)` — `None` bounds mean the
/// corresponding sentinel. Prunes subtrees entirely outside the range via
/// separator keys.
fn collect_open_range(
    node: &Node,
    low: Option<&UserKey>,
    high: Option<&UserKey>,
    out: &mut Vec<UserKey>,
) {
    match node {
        Node::Leaf { entries } => {
            for (k, _) in entries {
                if low.is_some_and(|lo| k <= lo) {
                    continue;
                }
                if high.is_some_and(|hi| k >= hi) {
                    break;
                }
                out.push(k.clone());
            }
        }
        Node::Internal {
            separators,
            children,
        } => {
            // Child i spans (separators[i-1], separators[i]); skip children
            // whose span cannot intersect the open interval.
            for (i, child) in children.iter().enumerate() {
                if i > 0 {
                    // Keys in this child are >= separators[i-1]; if that
                    // bound already reaches high, nothing here qualifies.
                    if high.is_some_and(|hi| &separators[i - 1] >= hi) {
                        break;
                    }
                }
                if i < separators.len() {
                    // Keys in this child are < separators[i]; if that stays
                    // at or below low, skip ahead.
                    if low.is_some_and(|lo| &separators[i] <= lo) {
                        continue;
                    }
                }
                collect_open_range(child, low, high, out);
            }
        }
    }
}

/// Visits entries with keys in `[low, high)` — `None` bounds mean the
/// corresponding sentinel. Prunes subtrees entirely outside the range via
/// separator keys (same descent as [`collect_open_range`], but inclusive
/// on the low side and exposing the full leaf record).
fn visit_closed_open_range(
    node: &Node,
    low: Option<&[u8]>,
    high: Option<&[u8]>,
    visit: &mut dyn FnMut(&UserKey, Version, &Value, Version),
) {
    match node {
        Node::Leaf { entries } => {
            for (k, rec) in entries {
                if low.is_some_and(|lo| k.as_bytes() < lo) {
                    continue;
                }
                if high.is_some_and(|hi| k.as_bytes() >= hi) {
                    break;
                }
                visit(k, rec.version, &rec.value, rec.gap_after);
            }
        }
        Node::Internal {
            separators,
            children,
        } => {
            for (i, child) in children.iter().enumerate() {
                if i > 0 {
                    // Keys in this child are >= separators[i-1]; if that
                    // bound already reaches high, nothing here qualifies.
                    if high.is_some_and(|hi| separators[i - 1].as_bytes() >= hi) {
                        break;
                    }
                }
                if i < separators.len() {
                    // Keys in this child are < separators[i]; if that stays
                    // at or below low, skip ahead (low is inclusive, so a
                    // separator equal to low still excludes this child).
                    if low.is_some_and(|lo| separators[i].as_bytes() <= lo) {
                        continue;
                    }
                }
                visit_closed_open_range(child, low, high, visit);
            }
        }
    }
}

fn collect_full(node: &Node, out: &mut Vec<(UserKey, LeafRec)>) {
    match node {
        Node::Leaf { entries } => out.extend(entries.iter().cloned()),
        Node::Internal { children, .. } => {
            for c in children {
                collect_full(c, out);
            }
        }
    }
}

/// Inserts a fresh record (key known absent). Returns `Some((separator,
/// right-node))` if the node split.
fn insert_rec(
    node: &mut Node,
    key: UserKey,
    rec: LeafRec,
    order: usize,
) -> Option<(UserKey, Node)> {
    match node {
        Node::Leaf { entries } => {
            let idx = entries
                .binary_search_by(|(k, _)| k.cmp(&key))
                .expect_err("insert_rec requires an absent key");
            entries.insert(idx, (key, rec));
            if entries.len() <= order {
                return None;
            }
            let right_entries = entries.split_off(entries.len() / 2);
            let sep = right_entries[0].0.clone();
            Some((
                sep,
                Node::Leaf {
                    entries: right_entries,
                },
            ))
        }
        Node::Internal {
            separators,
            children,
        } => {
            let idx = child_index(separators, &key);
            let split = insert_rec(&mut children[idx], key, rec, order)?;
            separators.insert(idx, split.0);
            children.insert(idx + 1, split.1);
            if separators.len() <= order {
                return None;
            }
            // Split the internal node: the middle separator moves up.
            let mid = separators.len() / 2;
            let up = separators[mid].clone();
            let right_seps = separators.split_off(mid + 1);
            separators.pop(); // `up` moves to the parent
            let right_children = children.split_off(mid + 1);
            Some((
                up,
                Node::Internal {
                    separators: right_seps,
                    children: right_children,
                },
            ))
        }
    }
}

fn min_keys(order: usize) -> usize {
    order / 2
}

/// Removes `key` from the subtree; rebalances children that underflow.
fn remove_rec(node: &mut Node, key: &UserKey, order: usize) -> Option<LeafRec> {
    match node {
        Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => Some(entries.remove(i).1),
            Err(_) => None,
        },
        Node::Internal {
            separators,
            children,
        } => {
            let idx = child_index(separators, key);
            let removed = remove_rec(&mut children[idx], key, order)?;
            if children[idx].key_count() < min_keys(order) {
                rebalance(separators, children, idx, order);
            }
            Some(removed)
        }
    }
}

/// Restores occupancy of `children[idx]` by borrowing from a sibling or
/// merging with one.
fn rebalance(separators: &mut Vec<UserKey>, children: &mut Vec<Node>, idx: usize, order: usize) {
    let min = min_keys(order);
    // Try borrowing from the left sibling.
    if idx > 0 && children[idx - 1].key_count() > min {
        let (left_slice, right_slice) = children.split_at_mut(idx);
        let left = &mut left_slice[idx - 1];
        let cur = &mut right_slice[0];
        match (left, cur) {
            (Node::Leaf { entries: le }, Node::Leaf { entries: ce }) => {
                let moved = le.pop().expect("left has > min keys");
                separators[idx - 1] = moved.0.clone();
                ce.insert(0, moved);
            }
            (
                Node::Internal {
                    separators: ls,
                    children: lc,
                },
                Node::Internal {
                    separators: cs,
                    children: cc,
                },
            ) => {
                // Rotate: parent separator comes down, left's last separator
                // goes up, left's last child moves over.
                let up = ls.pop().expect("left has > min keys");
                let down = std::mem::replace(&mut separators[idx - 1], up);
                cs.insert(0, down);
                cc.insert(0, lc.pop().expect("internal node has children"));
            }
            _ => unreachable!("siblings at the same depth share a kind"),
        }
        return;
    }
    // Try borrowing from the right sibling.
    if idx + 1 < children.len() && children[idx + 1].key_count() > min {
        let (left_slice, right_slice) = children.split_at_mut(idx + 1);
        let cur = &mut left_slice[idx];
        let right = &mut right_slice[0];
        match (cur, right) {
            (Node::Leaf { entries: ce }, Node::Leaf { entries: re }) => {
                let moved = re.remove(0);
                ce.push(moved);
                separators[idx] = re[0].0.clone();
            }
            (
                Node::Internal {
                    separators: cs,
                    children: cc,
                },
                Node::Internal {
                    separators: rs,
                    children: rc,
                },
            ) => {
                let up = rs.remove(0);
                let down = std::mem::replace(&mut separators[idx], up);
                cs.push(down);
                cc.push(rc.remove(0));
            }
            _ => unreachable!("siblings at the same depth share a kind"),
        }
        return;
    }
    // Merge with a sibling (prefer left).
    let merge_left = idx > 0;
    let (li, ri) = if merge_left {
        (idx - 1, idx)
    } else {
        (idx, idx + 1)
    };
    let right = children.remove(ri);
    let sep = separators.remove(li);
    match (&mut children[li], right) {
        (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
            le.extend(re);
        }
        (
            Node::Internal {
                separators: ls,
                children: lc,
            },
            Node::Internal {
                separators: rs,
                children: rc,
            },
        ) => {
            ls.push(sep);
            ls.extend(rs);
            lc.extend(rc);
        }
        _ => unreachable!("siblings at the same depth share a kind"),
    }
}

#[allow(clippy::too_many_arguments)]
fn check_node(
    node: &Node,
    is_root: bool,
    order: usize,
    depth: usize,
    leaf_depth: &mut Option<usize>,
    lower: Option<&UserKey>,
    upper: Option<&UserKey>,
) -> Result<(), String> {
    let within =
        |k: &UserKey| -> bool { lower.is_none_or(|lo| k >= lo) && upper.is_none_or(|hi| k < hi) };
    match node {
        Node::Leaf { entries } => {
            if let Some(d) = *leaf_depth {
                if d != depth {
                    return Err(format!("leaf depth {depth} != {d}"));
                }
            } else {
                *leaf_depth = Some(depth);
            }
            if !is_root && entries.len() < min_keys(order) {
                return Err(format!("leaf underflow: {}", entries.len()));
            }
            if entries.len() > order {
                return Err(format!("leaf overflow: {}", entries.len()));
            }
            for (k, _) in entries {
                if !within(k) {
                    return Err(format!("leaf key {k:?} outside separator bounds"));
                }
            }
            Ok(())
        }
        Node::Internal {
            separators,
            children,
        } => {
            if children.len() != separators.len() + 1 {
                return Err("child/separator count mismatch".into());
            }
            if !is_root && separators.len() < min_keys(order) {
                return Err(format!("internal underflow: {}", separators.len()));
            }
            if separators.len() > order {
                return Err(format!("internal overflow: {}", separators.len()));
            }
            for w in separators.windows(2) {
                if w[0] >= w[1] {
                    return Err("separators out of order".into());
                }
            }
            for s in separators {
                if !within(s) {
                    return Err(format!("separator {s:?} outside bounds"));
                }
            }
            for (i, child) in children.iter().enumerate() {
                let lo = if i == 0 {
                    lower
                } else {
                    Some(&separators[i - 1])
                };
                let hi = if i == separators.len() {
                    upper
                } else {
                    Some(&separators[i])
                };
                check_node(child, false, order, depth + 1, leaf_depth, lo, hi)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repdir_core::GapMap;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn ku(n: u64) -> Key {
        Key::from(n)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn empty_tree_is_one_gap() {
        let t = GapBTree::new(4);
        assert!(t.is_empty());
        let gaps = t.gaps();
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].lower, Key::Low);
        assert_eq!(gaps[0].upper, Key::High);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_many_splits_and_stays_sorted() {
        let mut t = GapBTree::new(4);
        // Insert in a scrambled deterministic order.
        let mut keys: Vec<u64> = (0..200).collect();
        let mut rng = 12345u64;
        for i in (1..keys.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &n in &keys {
            t.insert(&ku(n), v(1), val("x")).unwrap();
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 200);
        let collected = t.iter_collect();
        for (i, (key, _, _)) in collected.iter().enumerate() {
            assert_eq!(*key, UserKey::from_u64(i as u64));
        }
    }

    #[test]
    fn lookup_entry_and_gap() {
        let mut t = GapBTree::new(3);
        t.insert(&k("a"), v(1), val("A")).unwrap();
        t.insert(&k("c"), v(1), val("C")).unwrap();
        assert!(t.lookup(&k("a")).is_present());
        let gap = t.lookup(&k("b"));
        assert!(!gap.is_present());
        assert_eq!(gap.version(), v(0));
        assert!(t.lookup(&Key::Low).is_present());
        assert_eq!(t.version_of(&k("zz")), v(0));
    }

    #[test]
    fn neighbors_match_gapmap_semantics() {
        let mut t = GapBTree::new(3);
        let mut m = GapMap::new();
        for key in ["b", "d", "f", "h", "j", "l", "n"] {
            t.insert(&k(key), v(1), val(key)).unwrap();
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        t.coalesce(&k("d"), &k("h"), v(5)).unwrap();
        m.coalesce(&k("d"), &k("h"), v(5)).unwrap();
        for probe in ["a", "b", "c", "e", "g", "h", "i", "m", "n", "z"] {
            assert_eq!(
                t.predecessor(&k(probe)).unwrap(),
                m.predecessor(&k(probe)).unwrap(),
                "pred({probe})"
            );
            assert_eq!(
                t.successor(&k(probe)).unwrap(),
                m.successor(&k(probe)).unwrap(),
                "succ({probe})"
            );
        }
        assert_eq!(
            t.predecessor(&Key::High).unwrap(),
            m.predecessor(&Key::High).unwrap()
        );
        assert_eq!(
            t.successor(&Key::Low).unwrap(),
            m.successor(&Key::Low).unwrap()
        );
        assert!(t.predecessor(&Key::Low).is_err());
        assert!(t.successor(&Key::High).is_err());
    }

    #[test]
    fn coalesce_removes_range_and_sets_gap() {
        let mut t = GapBTree::new(3);
        for n in 0..50u64 {
            t.insert(&ku(n), v(1), val("x")).unwrap();
        }
        let out = t.coalesce(&ku(10), &ku(30), v(9)).unwrap();
        assert_eq!(out.removed.len(), 19);
        assert_eq!(t.len(), 31);
        assert_eq!(t.version_of(&ku(20)), v(9));
        assert_eq!(t.version_of(&ku(10)), v(1));
        t.check_invariants().unwrap();
        let gaps = t.gaps();
        assert_eq!(gaps.len(), t.len() + 1);
    }

    #[test]
    fn coalesce_boundary_errors_match_gapmap() {
        let mut t = GapBTree::new(4);
        t.insert(&k("a"), v(1), val("A")).unwrap();
        assert!(matches!(
            t.coalesce(&k("a"), &k("a"), v(1)),
            Err(RepError::InvalidRange { .. })
        ));
        assert!(matches!(
            t.coalesce(&k("a"), &k("zz"), v(1)),
            Err(RepError::NoSuchBoundary { .. })
        ));
        assert!(matches!(
            t.coalesce(&k("0"), &k("a"), v(1)),
            Err(RepError::NoSuchBoundary { .. })
        ));
    }

    #[test]
    fn deletion_rebalances_down_to_empty() {
        let mut t = GapBTree::new(3);
        for n in 0..100u64 {
            t.insert(&ku(n), v(1), val("x")).unwrap();
        }
        // Remove everything via coalesce of the full range.
        let out = t.coalesce(&Key::Low, &Key::High, v(2)).unwrap();
        assert_eq!(out.removed.len(), 100);
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        assert_eq!(t.version_of(&ku(3)), v(2));
    }

    #[test]
    fn alternating_insert_remove_keeps_invariants() {
        let mut t = GapBTree::new(4);
        for round in 0..10u64 {
            for n in 0..40u64 {
                t.insert(&ku(round * 1000 + n), v(round), val("x")).unwrap();
            }
            t.check_invariants().unwrap();
            // Coalesce away the middle of this round's keys.
            t.coalesce(&ku(round * 1000 + 5), &ku(round * 1000 + 35), v(round + 1))
                .unwrap();
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 10 * (40 - 29));
    }

    #[test]
    fn update_existing_key() {
        let mut t = GapBTree::new(4);
        t.insert(&k("a"), v(1), val("A")).unwrap();
        let out = t.insert(&k("a"), v(2), val("A2")).unwrap();
        assert_eq!(
            out,
            InsertOutcome::Updated {
                old_version: v(1),
                old_value: val("A"),
            }
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&k("a")).version(), v(2));
    }

    #[test]
    fn sentinel_mutations_rejected() {
        let mut t = GapBTree::new(4);
        assert!(t.insert(&Key::Low, v(1), val("x")).is_err());
        assert!(t.insert(&Key::High, v(1), val("x")).is_err());
        assert!(t.set_gap_after(&Key::High, v(1)).is_err());
        assert!(t.set_gap_after(&k("missing"), v(1)).is_err());
        assert!(t.set_gap_after(&Key::Low, v(3)).is_ok());
        assert_eq!(t.version_of(&k("q")), v(3));
    }

    #[test]
    fn recovery_primitives_round_trip() {
        let mut t = GapBTree::new(4);
        for key in ["a", "b", "c"] {
            t.insert(&k(key), v(1), val(key)).unwrap();
        }
        let before = t.clone();
        let out = t.coalesce(&k("a"), &k("c"), v(9)).unwrap();
        for r in out.removed {
            t.restore_entry(r.key, r.version, r.value, r.gap_after);
        }
        t.set_gap_after(&k("a"), out.old_gap_version).unwrap();
        assert_eq!(t.iter_collect(), before.iter_collect());
        assert_eq!(t.gaps(), before.gaps());

        assert!(t.update_entry_raw(&UserKey::from("b"), v(7), val("B7")));
        assert_eq!(t.lookup(&k("b")).version(), v(7));
        assert!(t.remove_entry_raw(&UserKey::from("b")));
        assert!(!t.remove_entry_raw(&UserKey::from("b")));
    }

    #[test]
    fn lazy_iter_matches_order_and_supports_partial_reads() {
        let mut t = GapBTree::new(3);
        for n in [5u64, 1, 9, 3, 7, 2, 8] {
            t.insert(&ku(n), v(n), val("x")).unwrap();
        }
        let keys: Vec<u64> = t
            .iter()
            .map(|(k, _, _)| u64::from_be_bytes(k.as_bytes().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
        // Versions ride along.
        for (k, ver, _) in t.iter() {
            let n = u64::from_be_bytes(k.as_bytes().try_into().unwrap());
            assert_eq!(ver, v(n));
        }
        // Partial consumption works (lazy).
        let first_two: Vec<_> = t.iter().take(2).map(|(k, _, _)| k.clone()).collect();
        assert_eq!(first_two.len(), 2);
        // Empty tree yields nothing.
        assert_eq!(GapBTree::new(4).iter().count(), 0);
    }

    #[test]
    fn debug_render_is_nonempty() {
        let mut t = GapBTree::new(4);
        t.insert(&k("a"), v(1), val("A")).unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("LOW"));
        assert!(s.contains("HIGH"));
    }

    #[test]
    fn matches_gapmap_on_mixed_workload() {
        // Deterministic fuzz: the tree must agree with GapMap op-for-op.
        let mut t = GapBTree::new(4);
        let mut m = GapMap::new();
        let mut rng = 987654321u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 16
        };
        for step in 0..2000 {
            let key = ku(next() % 64);
            match next() % 4 {
                0 | 1 => {
                    let ver = v(step);
                    let r1 = t.insert(&key, ver, val("x"));
                    let r2 = m.insert(&key, ver, val("x"));
                    assert_eq!(r1, r2);
                }
                2 => {
                    // Coalesce between two existing entries (or sentinels).
                    let lo = m.predecessor(&key).map(|n| n.key).unwrap_or(Key::Low);
                    let hi = m.successor(&key).map(|n| n.key).unwrap_or(Key::High);
                    if lo < hi {
                        let r1 = t.coalesce(&lo, &hi, v(step));
                        let r2 = m.coalesce(&lo, &hi, v(step));
                        assert_eq!(r1, r2);
                    }
                }
                _ => {
                    assert_eq!(t.lookup(&key), m.lookup(&key));
                    assert_eq!(t.predecessor(&key), m.predecessor(&key));
                    assert_eq!(t.successor(&key), m.successor(&key));
                }
            }
            if step % 100 == 0 {
                t.check_invariants().unwrap();
                assert_eq!(t.len(), m.len());
            }
        }
        let tree_entries = t.iter_collect();
        let map_entries: Vec<_> = m
            .iter()
            .map(|(k, ver, val)| (k.clone(), ver, val.clone()))
            .collect();
        assert_eq!(tree_entries, map_entries);
    }

    #[test]
    #[should_panic(expected = "order must be at least 3")]
    fn tiny_order_rejected() {
        GapBTree::new(2);
    }
}
