//! CRC-32 (IEEE 802.3) for write-ahead-log record integrity.
//!
//! A torn tail must be distinguishable from a corrupt middle; each WAL
//! record carries a CRC of its body so replay can stop at the first record
//! that fails the check.

/// Computes the CRC-32/IEEE checksum of `data`.
///
/// # Examples
///
/// ```
/// use repdir_storage::crc32;
///
/// // The standard check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello wal record".to_vec();
        let before = crc32(&data);
        data[3] ^= 0x10;
        assert_ne!(crc32(&data), before);
    }

    #[test]
    fn detects_truncation() {
        let data = b"some record body";
        assert_ne!(crc32(data), crc32(&data[..data.len() - 1]));
    }
}
