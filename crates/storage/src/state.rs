//! The representative-state abstraction: one interface over the two §5
//! representations, so the transactional stack can run on either.
//!
//! "We envision that directories could be represented as B-trees" (§5) —
//! with [`DirState`], a representative's durable state can be the
//! BTreeMap-backed [`GapMap`](repdir_core::GapMap) (simple, the default) or
//! the explicit [`GapBTree`] (the paper's suggested on-disk layout),
//! selected by [`Backend`].

use std::fmt;

use repdir_core::{
    CoalesceOutcome, GapMap, InsertOutcome, Key, LookupReply, NeighborReply, RepError, UserKey,
    Value, Version,
};

use crate::gapbtree::GapBTree;

/// Gap-versioned representative state: the five Fig. 6 operations plus the
/// recovery/undo primitives rollback and WAL replay need.
///
/// Implemented by [`GapMap`](repdir_core::GapMap) and [`GapBTree`]; the
/// property tests in this workspace verify the two are observationally
/// identical.
pub trait DirState: Send + fmt::Debug {
    /// `DirRepLookup(x)`.
    fn lookup(&self, key: &Key) -> LookupReply;

    /// `DirRepPredecessor(x)`.
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] for `LOW`.
    fn predecessor(&self, key: &Key) -> Result<NeighborReply, RepError>;

    /// `DirRepSuccessor(x)`.
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] for `HIGH`.
    fn successor(&self, key: &Key) -> Result<NeighborReply, RepError>;

    /// `DirRepInsert(x, v, z)`.
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] for sentinels.
    fn insert(
        &mut self,
        key: &Key,
        version: Version,
        value: Value,
    ) -> Result<InsertOutcome, RepError>;

    /// `DirRepCoalesce(l, h, v)`.
    ///
    /// # Errors
    ///
    /// [`RepError::InvalidRange`] / [`RepError::NoSuchBoundary`].
    fn coalesce(
        &mut self,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> Result<CoalesceOutcome, RepError>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reinstates an exact entry record (undo / replay).
    fn restore_entry(&mut self, key: UserKey, version: Version, value: Value, gap_after: Version);

    /// Removes an entry record outright (undo of a created insert).
    fn remove_entry_raw(&mut self, key: &UserKey) -> bool;

    /// Rewrites version/value leaving the trailing gap untouched (undo of
    /// an update).
    fn update_entry_raw(&mut self, key: &UserKey, version: Version, value: Value) -> bool;

    /// Sets the version of the gap after `low` (undo of a coalesce).
    ///
    /// # Errors
    ///
    /// As [`GapMap::set_gap_after`](repdir_core::GapMap::set_gap_after).
    fn set_gap_after(&mut self, low: &Key, version: Version) -> Result<(), RepError>;

    /// Version of the leading gap (between `LOW` and the first entry).
    fn low_gap(&self) -> Version;

    /// Visits entries with byte keys in `[low, high)` in key order as
    /// `(key, version, value, gap_after)`; `None` bounds run to the
    /// corresponding sentinel. Used by the repair subsystem to hash key
    /// ranges into summary-tree buckets without copying the state.
    fn visit_range(
        &self,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        visit: &mut dyn FnMut(&UserKey, Version, &Value, Version),
    );

    /// A [`GapMap`] copy of the full state (snapshots, checkpoints,
    /// cross-backend comparison).
    fn to_gapmap(&self) -> GapMap;

    /// Replaces the state with the contents of a [`GapMap`] (recovery).
    fn load(&mut self, map: &GapMap);
}

impl DirState for GapMap {
    fn lookup(&self, key: &Key) -> LookupReply {
        GapMap::lookup(self, key)
    }
    fn predecessor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        GapMap::predecessor(self, key)
    }
    fn successor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        GapMap::successor(self, key)
    }
    fn insert(
        &mut self,
        key: &Key,
        version: Version,
        value: Value,
    ) -> Result<InsertOutcome, RepError> {
        GapMap::insert(self, key, version, value)
    }
    fn coalesce(
        &mut self,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> Result<CoalesceOutcome, RepError> {
        GapMap::coalesce(self, low, high, version)
    }
    fn len(&self) -> usize {
        GapMap::len(self)
    }
    fn restore_entry(&mut self, key: UserKey, version: Version, value: Value, gap_after: Version) {
        GapMap::restore_entry(self, key, version, value, gap_after);
    }
    fn remove_entry_raw(&mut self, key: &UserKey) -> bool {
        GapMap::remove_entry_raw(self, key)
    }
    fn update_entry_raw(&mut self, key: &UserKey, version: Version, value: Value) -> bool {
        GapMap::update_entry_raw(self, key, version, value)
    }
    fn set_gap_after(&mut self, low: &Key, version: Version) -> Result<(), RepError> {
        GapMap::set_gap_after(self, low, version)
    }
    fn low_gap(&self) -> Version {
        GapMap::low_gap(self)
    }
    fn visit_range(
        &self,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        visit: &mut dyn FnMut(&UserKey, Version, &Value, Version),
    ) {
        GapMap::range_scan(self, low, high, visit);
    }
    fn to_gapmap(&self) -> GapMap {
        self.clone()
    }
    fn load(&mut self, map: &GapMap) {
        *self = map.clone();
    }
}

impl DirState for GapBTree {
    fn lookup(&self, key: &Key) -> LookupReply {
        GapBTree::lookup(self, key)
    }
    fn predecessor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        GapBTree::predecessor(self, key)
    }
    fn successor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        GapBTree::successor(self, key)
    }
    fn insert(
        &mut self,
        key: &Key,
        version: Version,
        value: Value,
    ) -> Result<InsertOutcome, RepError> {
        GapBTree::insert(self, key, version, value)
    }
    fn coalesce(
        &mut self,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> Result<CoalesceOutcome, RepError> {
        GapBTree::coalesce(self, low, high, version)
    }
    fn len(&self) -> usize {
        GapBTree::len(self)
    }
    fn restore_entry(&mut self, key: UserKey, version: Version, value: Value, gap_after: Version) {
        GapBTree::restore_entry(self, key, version, value, gap_after);
    }
    fn remove_entry_raw(&mut self, key: &UserKey) -> bool {
        GapBTree::remove_entry_raw(self, key)
    }
    fn update_entry_raw(&mut self, key: &UserKey, version: Version, value: Value) -> bool {
        GapBTree::update_entry_raw(self, key, version, value)
    }
    fn set_gap_after(&mut self, low: &Key, version: Version) -> Result<(), RepError> {
        GapBTree::set_gap_after(self, low, version)
    }
    fn low_gap(&self) -> Version {
        GapBTree::low_gap(self)
    }
    fn visit_range(
        &self,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        visit: &mut dyn FnMut(&UserKey, Version, &Value, Version),
    ) {
        GapBTree::range_scan(self, low, high, visit);
    }
    fn to_gapmap(&self) -> GapMap {
        let mut map = GapMap::new();
        for (key, version, value) in self.iter_collect() {
            map.restore_entry(key, version, value, Version::ZERO);
        }
        for gap in self.gaps() {
            map.set_gap_after(&gap.lower, gap.version)
                .expect("gap lower bound exists in copy");
        }
        map
    }
    fn load(&mut self, map: &GapMap) {
        // Rebuild from scratch; entries first, then gap versions.
        *self = GapBTree::new(self.order());
        for (key, version, value) in map.iter() {
            self.restore_entry(key.clone(), version, value.clone(), Version::ZERO);
        }
        for gap in map.gaps() {
            self.set_gap_after(&gap.lower, gap.version)
                .expect("gap lower bound exists in rebuilt tree");
        }
    }
}

/// Which representation backs a representative's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// `std::collections::BTreeMap`-backed [`GapMap`] (default).
    #[default]
    GapMap,
    /// The §5 explicit B-tree with the given node order.
    GapBTree {
        /// Maximum keys per node (min 3).
        order: usize,
    },
}

impl Backend {
    /// Instantiates an empty state of this backend.
    pub fn new_state(self) -> Box<dyn DirState> {
        match self {
            Backend::GapMap => Box::new(GapMap::new()),
            Backend::GapBTree { order } => Box::new(GapBTree::new(order)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    fn exercise(state: &mut dyn DirState) {
        assert!(state.is_empty());
        state.insert(&k("a"), v(1), val("A")).unwrap();
        state.insert(&k("c"), v(1), val("C")).unwrap();
        state.insert(&k("b"), v(1), val("B")).unwrap();
        assert_eq!(state.len(), 3);
        assert!(state.lookup(&k("b")).is_present());
        assert_eq!(state.predecessor(&k("b")).unwrap().key, k("a"));
        assert_eq!(state.successor(&k("b")).unwrap().key, k("c"));
        let out = state.coalesce(&k("a"), &k("c"), v(2)).unwrap();
        assert_eq!(out.removed.len(), 1);
        assert_eq!(state.lookup(&k("b")).version(), v(2));
        // Recovery primitives.
        state.restore_entry(UserKey::from("b"), v(1), val("B"), v(0));
        assert!(state.update_entry_raw(&UserKey::from("b"), v(3), val("B3")));
        assert!(state.remove_entry_raw(&UserKey::from("b")));
        state.set_gap_after(&k("a"), v(4)).unwrap();
        assert_eq!(state.lookup(&k("b")).version(), v(4));
    }

    #[test]
    fn both_backends_satisfy_the_contract() {
        for backend in [Backend::GapMap, Backend::GapBTree { order: 4 }] {
            let mut state = backend.new_state();
            exercise(state.as_mut());
        }
    }

    #[test]
    fn to_gapmap_and_load_round_trip() {
        let mut tree = GapBTree::new(5);
        for key in ["m", "c", "x", "f"] {
            DirState::insert(&mut tree, &k(key), v(1), val(key)).unwrap();
        }
        DirState::coalesce(&mut tree, &k("c"), &k("m"), v(7)).unwrap();
        let map = DirState::to_gapmap(&tree);
        assert_eq!(map.len(), 3);
        assert_eq!(map.version_of(&k("g")), v(7));

        // Load the map into a fresh tree: observationally identical.
        let mut tree2 = GapBTree::new(3);
        DirState::load(&mut tree2, &map);
        assert_eq!(DirState::to_gapmap(&tree2), map);
        tree2.check_invariants().unwrap();

        // And into a fresh map.
        let mut map2 = GapMap::new();
        DirState::load(&mut map2, &map);
        assert_eq!(map2, map);
    }

    #[test]
    fn visit_range_is_half_open_and_backend_agnostic() {
        type Row = (UserKey, Version, Value, Version);
        fn collect(state: &dyn DirState, low: Option<&[u8]>, high: Option<&[u8]>) -> Vec<Row> {
            let mut rows = Vec::new();
            state.visit_range(low, high, &mut |k, ver, val, gap| {
                rows.push((k.clone(), ver, val.clone(), gap));
            });
            rows
        }
        let mut expected = None;
        for backend in [Backend::GapMap, Backend::GapBTree { order: 3 }] {
            let mut state = backend.new_state();
            for key in ["b", "d", "f", "h", "j", "l"] {
                state.insert(&k(key), v(1), val(key)).unwrap();
            }
            // A coalesce gives interior entries distinct gap_after versions.
            state.coalesce(&k("d"), &k("f"), v(5)).unwrap();
            let all = collect(state.as_ref(), None, None);
            assert_eq!(all.len(), 6, "unbounded visits everything");
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "key order");
            // [d, j): inclusive low, exclusive high.
            let mid = collect(state.as_ref(), Some(b"d"), Some(b"j"));
            assert_eq!(
                mid.iter().map(|r| r.0.clone()).collect::<Vec<_>>(),
                ["d", "f", "h"].map(UserKey::from).to_vec()
            );
            assert_eq!(mid[0].3, v(5), "d's trailing gap carries the coalesce");
            assert!(collect(state.as_ref(), Some(b"x"), None).is_empty());
            match &expected {
                None => expected = Some((all, mid)),
                Some((a, m)) => {
                    assert_eq!(&collect(state.as_ref(), None, None), a);
                    assert_eq!(&collect(state.as_ref(), Some(b"d"), Some(b"j")), m);
                }
            }
            assert_eq!(state.low_gap(), Version::ZERO);
        }
    }

    #[test]
    fn backend_default_is_gapmap() {
        assert_eq!(Backend::default(), Backend::GapMap);
        let s = Backend::default().new_state();
        assert!(s.is_empty());
    }
}
