//! # repdir-storage
//!
//! Recoverable storage for directory representatives — the substrate the
//! paper assumes ("transactional storage systems … are assumed to hold each
//! representative", §2; representatives must "store critical information in
//! a fashion that recovers from failures", §3.1):
//!
//! * [`SimDisk`] — a simulated append-only disk with explicit sync barriers
//!   and crash/torn-write injection;
//! * [`wal`] — the write-ahead log: CRC-framed records
//!   ([`WalRecord`]), torn-tail-tolerant decoding, and
//!   commit-order replay;
//! * [`DurableState`] — a gap-versioned map wired to the WAL with
//!   per-transaction undo, commit-time sync, and crash recovery;
//! * [`GapBTree`] — the B-tree representation the paper prescribes in §5,
//!   with gap versions stored in their bounding entries, functionally
//!   interchangeable with [`GapMap`](repdir_core::GapMap);
//! * [`crc32`] — record checksumming.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crc;
mod durable;
mod gapbtree;
mod simdisk;
mod state;
pub mod wal;

pub use crc::crc32;
pub use durable::DurableState;
pub use gapbtree::GapBTree;
pub use simdisk::SimDisk;
pub use state::{Backend, DirState};
pub use wal::{decode_log, encode_record, replay, stale_votes_after, Wal, WalError, WalRecord};
