//! The write-ahead log: record format, framing, and crash-recovery replay.
//!
//! Protocol (standard redo logging, applied at commit):
//!
//! * every mutating representative operation appends an [`WalRecord`] before
//!   the in-memory state changes;
//! * commit appends [`WalRecord::Commit`] and syncs the disk — the
//!   transaction is durable exactly when that sync returns;
//! * recovery decodes the durable log, ignores torn/corrupt tails, and
//!   re-applies the operations of committed transactions in commit order.
//!   Under strict two-phase locking, commit order is a valid serialization,
//!   so replay reconstructs the pre-crash committed state exactly.
//!
//! Framing: `[u32 body-length][body][u32 crc32(body)]`, little-endian. A
//! record whose frame is incomplete or whose CRC fails ends the usable log.

use repdir_core::bytes::{Buf, BufMut};
use repdir_core::{GapMap, Key, UserKey, Value, Version};

use crate::crc::crc32;
use crate::simdisk::SimDisk;

/// A checkpointed entry: key, version, value, and the version of the gap
/// after it.
pub type CheckpointEntry = (UserKey, Version, Value, Version);

/// One log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction began.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// Redo for `DirRepInsert(key, version, value)`.
    Insert {
        /// Owning transaction.
        txn: u64,
        /// Inserted key.
        key: Key,
        /// Version written.
        version: Version,
        /// Value written.
        value: Value,
    },
    /// Redo for `DirRepCoalesce(low, high, version)`.
    Coalesce {
        /// Owning transaction.
        txn: u64,
        /// Lower boundary.
        low: Key,
        /// Upper boundary.
        high: Key,
        /// Version assigned to the coalesced gap.
        version: Version,
    },
    /// The transaction committed; its preceding operations are durable.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction aborted; its preceding operations must be discarded.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// A full snapshot of the representative state, taken while quiesced.
    /// Replay starts from the last complete checkpoint.
    Checkpoint {
        /// Version of the gap after `LOW`.
        low_gap: Version,
        /// Every entry with its trailing-gap version.
        entries: Vec<CheckpointEntry>,
    },
    /// Sidecar record: a stale vote observed against this representative,
    /// spilled so a restarted repair driver resumes its targeted pulls
    /// instead of waiting for the fallback sweep. Ignored by [`replay`]
    /// (it carries repair evidence, not directory state); a checkpoint
    /// retires every earlier spill.
    StaleVote {
        /// Suite index of the member that voted stale.
        member: u64,
        /// The key the read asked about.
        key: Key,
        /// The version the stale member answered with.
        seen: Version,
        /// The winning version the quorum merge settled on.
        latest: Version,
    },
}

impl WalRecord {
    /// Builds a checkpoint record capturing `map`'s exact state.
    pub fn checkpoint_of(map: &GapMap) -> WalRecord {
        let mut entries: Vec<CheckpointEntry> = map
            .iter()
            .map(|(k, v, val)| (k.clone(), v, val.clone(), Version::ZERO))
            .collect();
        let mut low_gap = Version::ZERO;
        for gap in map.gaps() {
            match gap.lower {
                Key::Low => low_gap = gap.version,
                Key::User(u) => {
                    let slot = entries
                        .iter_mut()
                        .find(|(k, ..)| *k == u)
                        .expect("gap lower bound is an entry");
                    slot.3 = gap.version;
                }
                Key::High => unreachable!("HIGH never lower-bounds a gap"),
            }
        }
        WalRecord::Checkpoint { low_gap, entries }
    }
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_COALESCE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_STALE_VOTE: u8 = 7;

const KEY_LOW: u8 = 0;
const KEY_USER: u8 = 1;
const KEY_HIGH: u8 = 2;

fn put_key(buf: &mut Vec<u8>, key: &Key) {
    match key {
        Key::Low => buf.put_u8(KEY_LOW),
        Key::User(u) => {
            buf.put_u8(KEY_USER);
            buf.put_u32_le(u.len() as u32);
            buf.put_slice(u.as_bytes());
        }
        Key::High => buf.put_u8(KEY_HIGH),
    }
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.put_u32_le(bytes.len() as u32);
    buf.put_slice(bytes);
}

/// Errors raised while decoding or replaying a log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// A structurally complete record had an unknown tag or malformed body.
    Malformed(String),
    /// Replay hit an operation that cannot apply (e.g. a coalesce whose
    /// boundary is missing) — the log is inconsistent.
    Inconsistent(String),
    /// A checkpoint was requested while transactions were in flight; the
    /// caller should quiesce (or retry once the active transactions drain)
    /// and ask again. Carries the number of in-flight transactions.
    CheckpointBusy(usize),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Malformed(m) => write!(f, "malformed wal record: {m}"),
            WalError::Inconsistent(m) => write!(f, "inconsistent wal: {m}"),
            WalError::CheckpointBusy(n) => write!(
                f,
                "checkpoint requires a quiesced representative ({n} transactions in flight)"
            ),
        }
    }
}

impl std::error::Error for WalError {}

fn get_key(buf: &mut &[u8]) -> Result<Key, WalError> {
    if buf.remaining() < 1 {
        return Err(WalError::Malformed("missing key tag".into()));
    }
    match buf.get_u8() {
        KEY_LOW => Ok(Key::Low),
        KEY_HIGH => Ok(Key::High),
        KEY_USER => {
            if buf.remaining() < 4 {
                return Err(WalError::Malformed("missing key length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(WalError::Malformed("short key bytes".into()));
            }
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            Ok(Key::User(UserKey::from(bytes)))
        }
        t => Err(WalError::Malformed(format!("bad key tag {t}"))),
    }
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, WalError> {
    if buf.remaining() < 4 {
        return Err(WalError::Malformed("missing length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(WalError::Malformed("short bytes".into()));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    Ok(bytes)
}

/// Encodes a record body (without framing).
fn encode_body(record: &WalRecord) -> Vec<u8> {
    let mut b = Vec::new();
    match record {
        WalRecord::Begin { txn } => {
            b.put_u8(TAG_BEGIN);
            b.put_u64_le(*txn);
        }
        WalRecord::Insert {
            txn,
            key,
            version,
            value,
        } => {
            b.put_u8(TAG_INSERT);
            b.put_u64_le(*txn);
            put_key(&mut b, key);
            b.put_u64_le(version.get());
            put_bytes(&mut b, value.as_bytes());
        }
        WalRecord::Coalesce {
            txn,
            low,
            high,
            version,
        } => {
            b.put_u8(TAG_COALESCE);
            b.put_u64_le(*txn);
            put_key(&mut b, low);
            put_key(&mut b, high);
            b.put_u64_le(version.get());
        }
        WalRecord::Commit { txn } => {
            b.put_u8(TAG_COMMIT);
            b.put_u64_le(*txn);
        }
        WalRecord::Abort { txn } => {
            b.put_u8(TAG_ABORT);
            b.put_u64_le(*txn);
        }
        WalRecord::Checkpoint { low_gap, entries } => {
            b.put_u8(TAG_CHECKPOINT);
            b.put_u64_le(low_gap.get());
            b.put_u32_le(entries.len() as u32);
            for (key, version, value, gap_after) in entries {
                put_bytes(&mut b, key.as_bytes());
                b.put_u64_le(version.get());
                put_bytes(&mut b, value.as_bytes());
                b.put_u64_le(gap_after.get());
            }
        }
        WalRecord::StaleVote {
            member,
            key,
            seen,
            latest,
        } => {
            b.put_u8(TAG_STALE_VOTE);
            b.put_u64_le(*member);
            put_key(&mut b, key);
            b.put_u64_le(seen.get());
            b.put_u64_le(latest.get());
        }
    }
    b
}

fn decode_body(mut buf: &[u8]) -> Result<WalRecord, WalError> {
    if buf.remaining() < 1 {
        return Err(WalError::Malformed("empty body".into()));
    }
    let tag = buf.get_u8();
    let need_u64 = |buf: &mut &[u8]| -> Result<u64, WalError> {
        if buf.remaining() < 8 {
            Err(WalError::Malformed("missing u64".into()))
        } else {
            Ok(buf.get_u64_le())
        }
    };
    match tag {
        TAG_BEGIN => Ok(WalRecord::Begin {
            txn: need_u64(&mut buf)?,
        }),
        TAG_INSERT => {
            let txn = need_u64(&mut buf)?;
            let key = get_key(&mut buf)?;
            let version = Version::new(need_u64(&mut buf)?);
            let value = Value::from(get_bytes(&mut buf)?);
            Ok(WalRecord::Insert {
                txn,
                key,
                version,
                value,
            })
        }
        TAG_COALESCE => {
            let txn = need_u64(&mut buf)?;
            let low = get_key(&mut buf)?;
            let high = get_key(&mut buf)?;
            let version = Version::new(need_u64(&mut buf)?);
            Ok(WalRecord::Coalesce {
                txn,
                low,
                high,
                version,
            })
        }
        TAG_COMMIT => Ok(WalRecord::Commit {
            txn: need_u64(&mut buf)?,
        }),
        TAG_ABORT => Ok(WalRecord::Abort {
            txn: need_u64(&mut buf)?,
        }),
        TAG_CHECKPOINT => {
            let low_gap = Version::new(need_u64(&mut buf)?);
            if buf.remaining() < 4 {
                return Err(WalError::Malformed("missing entry count".into()));
            }
            let n = buf.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let key = UserKey::from(get_bytes(&mut buf)?);
                let version = Version::new(need_u64(&mut buf)?);
                let value = Value::from(get_bytes(&mut buf)?);
                let gap_after = Version::new(need_u64(&mut buf)?);
                entries.push((key, version, value, gap_after));
            }
            Ok(WalRecord::Checkpoint { low_gap, entries })
        }
        TAG_STALE_VOTE => {
            let member = need_u64(&mut buf)?;
            let key = get_key(&mut buf)?;
            let seen = Version::new(need_u64(&mut buf)?);
            let latest = Version::new(need_u64(&mut buf)?);
            Ok(WalRecord::StaleVote {
                member,
                key,
                seen,
                latest,
            })
        }
        t => Err(WalError::Malformed(format!("unknown tag {t}"))),
    }
}

/// Encodes one framed record: length, body, CRC.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let body = encode_body(record);
    let mut out = Vec::with_capacity(body.len() + 8);
    out.put_u32_le(body.len() as u32);
    out.put_slice(&body);
    out.put_u32_le(crc32(&body));
    out
}

/// Decodes as many complete, CRC-valid records as the buffer holds.
///
/// Returns the records and whether the log ended cleanly (`true`) or with a
/// torn/corrupt tail that was discarded (`false`) — the expected outcome
/// after a crash mid-append.
pub fn decode_log(mut data: &[u8]) -> (Vec<WalRecord>, bool) {
    let mut out = Vec::new();
    loop {
        if data.is_empty() {
            return (out, true);
        }
        if data.len() < 4 {
            return (out, false);
        }
        let len = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
        if data.len() < 4 + len + 4 {
            return (out, false);
        }
        let body = &data[4..4 + len];
        let stored_crc =
            u32::from_le_bytes(data[4 + len..4 + len + 4].try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return (out, false);
        }
        match decode_body(body) {
            Ok(rec) => out.push(rec),
            Err(_) => return (out, false),
        }
        data = &data[4 + len + 4..];
    }
}

/// Rebuilds representative state from a decoded log: start from the last
/// checkpoint, then re-apply the operations of committed transactions in
/// commit order.
///
/// # Errors
///
/// [`WalError::Inconsistent`] if a committed operation cannot be re-applied
/// (impossible for logs produced by this crate under two-phase locking).
pub fn replay(records: &[WalRecord]) -> Result<GapMap, WalError> {
    use std::collections::HashMap;

    let g = repdir_obs::global();
    g.counter("wal.recoveries").inc();
    g.counter("wal.replayed_records").add(records.len() as u64);

    // Start from the last checkpoint, if any.
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }));
    let mut map = GapMap::new();
    let tail = match start {
        Some(idx) => {
            let WalRecord::Checkpoint { low_gap, entries } = &records[idx] else {
                unreachable!("rposition matched a checkpoint");
            };
            for (key, version, value, gap_after) in entries {
                map.restore_entry(key.clone(), *version, value.clone(), *gap_after);
            }
            map.set_gap_after(&Key::Low, *low_gap)
                .expect("LOW always accepts a gap version");
            &records[idx + 1..]
        }
        None => records,
    };

    // Buffer operations per transaction; apply at Commit, drop at Abort.
    let mut pending: HashMap<u64, Vec<&WalRecord>> = HashMap::new();
    for rec in tail {
        match rec {
            WalRecord::Begin { txn } => {
                pending.entry(*txn).or_default();
            }
            WalRecord::Insert { txn, .. } | WalRecord::Coalesce { txn, .. } => {
                pending.entry(*txn).or_default().push(rec);
            }
            WalRecord::Abort { txn } => {
                pending.remove(txn);
            }
            WalRecord::Commit { txn } => {
                if let Some(ops) = pending.remove(txn) {
                    for op in ops {
                        apply(&mut map, op)?;
                    }
                }
            }
            WalRecord::Checkpoint { .. } => {
                unreachable!("later checkpoints handled by rposition")
            }
            // Repair evidence, not directory state: replay skips it. The
            // replica layer re-reads these via `stale_votes_after` when it
            // reseeds its drivers.
            WalRecord::StaleVote { .. } => {}
        }
    }
    // Transactions with no commit record died with the crash: discarded.
    Ok(map)
}

/// The live stale-vote spills in a decoded log: every
/// [`WalRecord::StaleVote`] after the last checkpoint, in append order, as
/// `(member, key, seen, latest)`. A checkpoint captures converged state, so
/// it retires every earlier spill; votes spilled after it are evidence a
/// restarted repair driver should still act on.
pub fn stale_votes_after(records: &[WalRecord]) -> Vec<(u64, Key, Version, Version)> {
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint { .. }))
        .map_or(0, |idx| idx + 1);
    records[start..]
        .iter()
        .filter_map(|r| match r {
            WalRecord::StaleVote {
                member,
                key,
                seen,
                latest,
            } => Some((*member, key.clone(), *seen, *latest)),
            _ => None,
        })
        .collect()
}

fn apply(map: &mut GapMap, op: &WalRecord) -> Result<(), WalError> {
    match op {
        WalRecord::Insert {
            key,
            version,
            value,
            ..
        } => {
            map.insert(key, *version, value.clone())
                .map_err(|e| WalError::Inconsistent(format!("insert {key:?}: {e}")))?;
        }
        WalRecord::Coalesce {
            low, high, version, ..
        } => {
            map.coalesce(low, high, *version)
                .map_err(|e| WalError::Inconsistent(format!("coalesce {low:?}..{high:?}: {e}")))?;
        }
        _ => unreachable!("only operations are buffered"),
    }
    Ok(())
}

/// A write-ahead log bound to a [`SimDisk`].
#[derive(Debug)]
pub struct Wal {
    disk: std::sync::Arc<SimDisk>,
    appends: repdir_obs::Counter,
    syncs: repdir_obs::Counter,
}

impl Wal {
    /// Creates a log writing to `disk`.
    pub fn new(disk: std::sync::Arc<SimDisk>) -> Self {
        let g = repdir_obs::global();
        Wal {
            disk,
            appends: g.counter("wal.appends"),
            syncs: g.counter("wal.syncs"),
        }
    }

    /// Appends a record (not yet durable).
    pub fn append(&self, record: &WalRecord) {
        self.appends.inc();
        self.disk.append(&encode_record(record));
    }

    /// Makes everything appended so far durable.
    pub fn sync(&self) {
        self.syncs.inc();
        self.disk.sync();
    }

    /// The underlying disk (for crash injection in tests).
    pub fn disk(&self) -> &std::sync::Arc<SimDisk> {
        &self.disk
    }

    /// Decodes the durable log contents.
    pub fn durable_records(&self) -> (Vec<WalRecord>, bool) {
        decode_log(&self.disk.read_all())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Insert {
                txn: 1,
                key: k("a"),
                version: v(1),
                value: val("A"),
            },
            WalRecord::Coalesce {
                txn: 1,
                low: Key::Low,
                high: Key::High,
                version: v(2),
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Abort { txn: 2 },
            WalRecord::StaleVote {
                member: 2,
                key: k("stale"),
                seen: v(1),
                latest: v(9),
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let framed = encode_record(&rec);
            let (decoded, clean) = decode_log(&framed);
            assert!(clean);
            assert_eq!(decoded, vec![rec]);
        }
    }

    #[test]
    fn checkpoint_round_trips_exact_state() {
        let mut m = GapMap::new();
        m.insert(&k("a"), v(1), val("A")).unwrap();
        m.insert(&k("c"), v(3), val("C")).unwrap();
        m.coalesce(&k("a"), &k("c"), v(7)).unwrap();
        let rec = WalRecord::checkpoint_of(&m);
        let framed = encode_record(&rec);
        let (decoded, clean) = decode_log(&framed);
        assert!(clean);
        let rebuilt = replay(&decoded).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut log = Vec::new();
        for rec in sample_records() {
            log.extend(encode_record(&rec));
        }
        let full_len = log.len();
        // Frame boundaries: a cut landing exactly on one decodes clean (it
        // is indistinguishable from a shorter log); any other cut must be
        // reported torn. Either way only a prefix of records is returned.
        let mut boundaries = vec![0usize];
        {
            let mut off = 0;
            for rec in sample_records() {
                off += encode_record(&rec).len();
                boundaries.push(off);
            }
        }
        for cut in 1..full_len {
            let kept = full_len - cut;
            let (records, clean) = decode_log(&log[..kept]);
            let boundary = boundaries.iter().position(|&b| b == kept);
            match boundary {
                Some(n_records) => {
                    assert!(clean, "cut at boundary {kept} should decode clean");
                    assert_eq!(records.len(), n_records);
                }
                None => {
                    assert!(!clean, "mid-record cut at {kept} must be torn");
                    assert!(records.len() < sample_records().len());
                }
            }
        }
    }

    #[test]
    fn corrupt_record_stops_decode() {
        let mut log = encode_record(&WalRecord::Begin { txn: 1 });
        let second = encode_record(&WalRecord::Commit { txn: 1 });
        let offset = log.len() + 6; // inside the second record's body
        log.extend(second);
        log[offset] ^= 0xFF;
        let (records, clean) = decode_log(&log);
        assert_eq!(records, vec![WalRecord::Begin { txn: 1 }]);
        assert!(!clean);
    }

    #[test]
    fn replay_applies_committed_only() {
        let records = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Insert {
                txn: 1,
                key: k("a"),
                version: v(1),
                value: val("A"),
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Begin { txn: 2 },
            WalRecord::Insert {
                txn: 2,
                key: k("b"),
                version: v(1),
                value: val("B"),
            },
            // txn 2 never commits (crashed mid-flight).
            WalRecord::Begin { txn: 3 },
            WalRecord::Insert {
                txn: 3,
                key: k("c"),
                version: v(1),
                value: val("C"),
            },
            WalRecord::Abort { txn: 3 },
        ];
        let map = replay(&records).unwrap();
        assert!(map.lookup(&k("a")).is_present());
        assert!(!map.lookup(&k("b")).is_present());
        assert!(!map.lookup(&k("c")).is_present());
    }

    #[test]
    fn replay_interleaved_transactions_in_commit_order() {
        // txn 2 commits before txn 1 even though it began later; replay
        // must apply txn 2's ops first.
        let records = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Begin { txn: 2 },
            WalRecord::Insert {
                txn: 2,
                key: k("x"),
                version: v(1),
                value: val("X1"),
            },
            WalRecord::Commit { txn: 2 },
            WalRecord::Insert {
                txn: 1,
                key: k("x"),
                version: v(2),
                value: val("X2"),
            },
            WalRecord::Commit { txn: 1 },
        ];
        let map = replay(&records).unwrap();
        let r = map.lookup(&k("x"));
        assert_eq!(r.version(), v(2));
        assert_eq!(r.value(), Some(&val("X2")));
    }

    #[test]
    fn replay_starts_from_last_checkpoint() {
        let mut m = GapMap::new();
        m.insert(&k("base"), v(5), val("B")).unwrap();
        let records = vec![
            // A stale record before the checkpoint must be ignored.
            WalRecord::Begin { txn: 1 },
            WalRecord::Insert {
                txn: 1,
                key: k("stale"),
                version: v(1),
                value: val("S"),
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::checkpoint_of(&m),
            WalRecord::Begin { txn: 2 },
            WalRecord::Insert {
                txn: 2,
                key: k("new"),
                version: v(1),
                value: val("N"),
            },
            WalRecord::Commit { txn: 2 },
        ];
        let map = replay(&records).unwrap();
        assert!(!map.lookup(&k("stale")).is_present());
        assert!(map.lookup(&k("base")).is_present());
        assert!(map.lookup(&k("new")).is_present());
    }

    #[test]
    fn stale_vote_spills_are_skipped_by_replay_and_retired_by_checkpoint() {
        let spill = |member: u64, key: &str, latest: u64| WalRecord::StaleVote {
            member,
            key: k(key),
            seen: v(0),
            latest: v(latest),
        };
        let mut m = GapMap::new();
        m.insert(&k("base"), v(5), val("B")).unwrap();
        let records = vec![
            spill(0, "retired", 3),
            WalRecord::checkpoint_of(&m),
            WalRecord::Begin { txn: 1 },
            spill(2, "a", 7),
            WalRecord::Insert {
                txn: 1,
                key: k("x"),
                version: v(6),
                value: val("X"),
            },
            WalRecord::Commit { txn: 1 },
            spill(1, "b", 9),
        ];
        // Replay ignores the sidecar records entirely.
        let map = replay(&records).unwrap();
        assert!(map.lookup(&k("base")).is_present());
        assert!(map.lookup(&k("x")).is_present());
        assert!(!map.lookup(&k("a")).is_present());
        // Only post-checkpoint spills are still live, in append order.
        let votes = stale_votes_after(&records);
        assert_eq!(
            votes,
            vec![(2, k("a"), v(0), v(7)), (1, k("b"), v(0), v(9))]
        );
    }

    #[test]
    fn replay_rejects_inconsistent_coalesce() {
        let records = vec![
            WalRecord::Begin { txn: 1 },
            WalRecord::Coalesce {
                txn: 1,
                low: k("missing"),
                high: Key::High,
                version: v(1),
            },
            WalRecord::Commit { txn: 1 },
        ];
        assert!(matches!(replay(&records), Err(WalError::Inconsistent(_))));
    }

    #[test]
    fn wal_on_simdisk_survives_crash_after_commit_sync() {
        let disk = Arc::new(SimDisk::new());
        let wal = Wal::new(Arc::clone(&disk));
        wal.append(&WalRecord::Begin { txn: 1 });
        wal.append(&WalRecord::Insert {
            txn: 1,
            key: k("a"),
            version: v(1),
            value: val("A"),
        });
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.sync(); // commit point

        wal.append(&WalRecord::Begin { txn: 2 });
        wal.append(&WalRecord::Insert {
            txn: 2,
            key: k("b"),
            version: v(1),
            value: val("B"),
        });
        // Crash mid-append of txn 2's commit; 3 bytes of garbage land.
        disk.crash(3);

        let (records, clean) = wal.durable_records();
        assert!(!clean);
        let map = replay(&records).unwrap();
        assert!(map.lookup(&k("a")).is_present());
        assert!(!map.lookup(&k("b")).is_present());
    }

    #[test]
    fn empty_log_replays_to_empty_map() {
        let (records, clean) = decode_log(&[]);
        assert!(clean);
        assert!(records.is_empty());
        assert!(replay(&records).unwrap().is_empty());
    }
}
