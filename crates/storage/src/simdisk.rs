//! A simulated append-only disk with explicit sync barriers and crash
//! injection.
//!
//! The paper's representatives must "store critical information in a fashion
//! that recovers from failures" (§3.1). Real deployments would put the
//! write-ahead log on stable storage; for a laptop-scale reproduction we
//! simulate the one property recovery depends on — *data written before a
//! sync survives a crash, data after it may not, and the tail may be torn* —
//! so the recovery path is exercised against realistic failure shapes.

use std::fmt;

use repdir_core::sync::Mutex;

/// An append-only simulated disk.
///
/// Appended bytes sit in a volatile buffer until [`sync`](SimDisk::sync)
/// moves them to the durable region. [`crash`](SimDisk::crash) models power
/// loss: volatile bytes are lost, except for an arbitrary prefix the caller
/// chooses (hardware may have flushed part of the cache — a *torn write*).
///
/// # Examples
///
/// ```
/// use repdir_storage::SimDisk;
///
/// let disk = SimDisk::new();
/// disk.append(b"hello ");
/// disk.sync();
/// disk.append(b"world");
/// disk.crash(2); // only "wo" of the unsynced tail survived
/// assert_eq!(disk.read_all(), b"hello wo");
/// ```
pub struct SimDisk {
    inner: Mutex<DiskInner>,
}

#[derive(Default)]
struct DiskInner {
    durable: Vec<u8>,
    volatile: Vec<u8>,
    syncs: u64,
    crashes: u64,
}

impl Default for SimDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl SimDisk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        SimDisk {
            inner: Mutex::new(DiskInner::default()),
        }
    }

    /// Appends bytes to the volatile buffer.
    pub fn append(&self, bytes: &[u8]) {
        self.inner.lock().volatile.extend_from_slice(bytes);
    }

    /// Flushes the volatile buffer into the durable region (an `fsync`).
    pub fn sync(&self) {
        let mut d = self.inner.lock();
        let tail = std::mem::take(&mut d.volatile);
        d.durable.extend_from_slice(&tail);
        d.syncs += 1;
    }

    /// Simulates a crash: at most `surviving_prefix` bytes of the volatile
    /// buffer reach the durable region (possibly tearing a record); the rest
    /// are lost.
    pub fn crash(&self, surviving_prefix: usize) {
        let mut d = self.inner.lock();
        let keep = surviving_prefix.min(d.volatile.len());
        let tail: Vec<u8> = d.volatile[..keep].to_vec();
        d.durable.extend_from_slice(&tail);
        d.volatile.clear();
        d.crashes += 1;
    }

    /// Everything that would be readable after remounting: the durable
    /// region only.
    pub fn read_all(&self) -> Vec<u8> {
        self.inner.lock().durable.clone()
    }

    /// Bytes in the durable region.
    pub fn durable_len(&self) -> usize {
        self.inner.lock().durable.len()
    }

    /// Bytes appended but not yet synced.
    pub fn volatile_len(&self) -> usize {
        self.inner.lock().volatile.len()
    }

    /// Number of syncs performed (the WAL's durability cost metric).
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// Number of crashes injected.
    pub fn crash_count(&self) -> u64 {
        self.inner.lock().crashes
    }
}

impl fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.inner.lock();
        f.debug_struct("SimDisk")
            .field("durable", &d.durable.len())
            .field("volatile", &d.volatile.len())
            .field("syncs", &d.syncs)
            .field("crashes", &d.crashes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_data_survives_crash() {
        let disk = SimDisk::new();
        disk.append(b"abc");
        disk.sync();
        disk.append(b"def");
        disk.crash(0);
        assert_eq!(disk.read_all(), b"abc");
        assert_eq!(disk.crash_count(), 1);
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let disk = SimDisk::new();
        disk.append(b"abcdef");
        disk.crash(4);
        assert_eq!(disk.read_all(), b"abcd");
    }

    #[test]
    fn crash_prefix_clamped_to_volatile_len() {
        let disk = SimDisk::new();
        disk.append(b"xy");
        disk.crash(100);
        assert_eq!(disk.read_all(), b"xy");
    }

    #[test]
    fn appends_accumulate_and_counters_track() {
        let disk = SimDisk::new();
        disk.append(b"a");
        disk.append(b"b");
        assert_eq!(disk.volatile_len(), 2);
        assert_eq!(disk.durable_len(), 0);
        disk.sync();
        assert_eq!(disk.volatile_len(), 0);
        assert_eq!(disk.durable_len(), 2);
        assert_eq!(disk.sync_count(), 1);
        disk.sync();
        assert_eq!(disk.sync_count(), 2);
        assert_eq!(disk.read_all(), b"ab");
    }

    #[test]
    fn appends_after_crash_continue_normally() {
        let disk = SimDisk::new();
        disk.append(b"lost");
        disk.crash(0);
        disk.append(b"kept");
        disk.sync();
        assert_eq!(disk.read_all(), b"kept");
    }
}
