//! Durable representative state: gap-versioned map + write-ahead log +
//! in-memory undo, with crash recovery.

use std::collections::HashMap;
use std::sync::Arc;

use repdir_core::{
    CoalesceOutcome, GapMap, InsertOutcome, Key, LookupReply, NeighborReply, RepError, UserKey,
    Value, Version,
};
use repdir_txn::{undo_for_coalesce, undo_for_insert, TxnId, UndoRecord};

use crate::simdisk::SimDisk;
use crate::state::{Backend, DirState};
use crate::wal::{replay, Wal, WalError, WalRecord};

/// A representative's state with full transactional durability:
///
/// * mutations apply to the in-memory [`GapMap`] and append redo records to
///   the WAL;
/// * [`commit`](DurableState::commit) appends a commit record and syncs —
///   the durability point;
/// * [`abort`](DurableState::abort) rolls the memory state back via the
///   undo log and appends an abort record;
/// * [`recover`](DurableState::recover) rebuilds the committed state from
///   the durable log after a crash, discarding in-flight transactions.
///
/// This is the "transactional storage system … assumed to hold each
/// representative" of the paper's §2, made concrete.
///
/// # Examples
///
/// ```
/// use repdir_core::{Key, Value, Version};
/// use repdir_storage::{DurableState, SimDisk};
/// use repdir_txn::TxnId;
/// use std::sync::Arc;
///
/// let disk = Arc::new(SimDisk::new());
/// let mut st = DurableState::new(Arc::clone(&disk));
/// let t = TxnId(1);
/// st.begin(t);
/// st.insert(t, &Key::from("a"), Version::new(1), Value::from("A"))?;
/// st.commit(t);
///
/// // Crash: everything unsynced is lost; recovery finds the commit.
/// disk.crash(0);
/// let recovered = DurableState::recover(disk)?;
/// assert!(recovered.lookup(&Key::from("a")).is_present());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DurableState {
    state: Box<dyn DirState>,
    wal: Wal,
    undo: HashMap<TxnId, Vec<UndoRecord>>,
}

impl DurableState {
    /// Creates empty state logging to `disk`, backed by the default
    /// [`GapMap`] representation.
    pub fn new(disk: Arc<SimDisk>) -> Self {
        Self::with_backend(disk, Backend::GapMap)
    }

    /// Creates empty state with an explicit representation (e.g. the §5
    /// B-tree).
    pub fn with_backend(disk: Arc<SimDisk>, backend: Backend) -> Self {
        DurableState {
            state: backend.new_state(),
            wal: Wal::new(disk),
            undo: HashMap::new(),
        }
    }

    /// Rebuilds committed state from the disk's durable log. Torn tails are
    /// discarded; transactions without a durable commit record are rolled
    /// back by omission.
    ///
    /// # Errors
    ///
    /// [`WalError`] if the durable log is internally inconsistent (not
    /// producible by this crate).
    pub fn recover(disk: Arc<SimDisk>) -> Result<Self, WalError> {
        Self::recover_with_backend(disk, Backend::GapMap)
    }

    /// Recovery into an explicit representation.
    ///
    /// # Errors
    ///
    /// As [`recover`](DurableState::recover).
    pub fn recover_with_backend(disk: Arc<SimDisk>, backend: Backend) -> Result<Self, WalError> {
        let (records, _clean) = crate::wal::decode_log(&disk.read_all());
        let map = replay(&records)?;
        let mut state = backend.new_state();
        state.load(&map);
        Ok(DurableState {
            state,
            wal: Wal::new(disk),
            undo: HashMap::new(),
        })
    }

    /// A [`GapMap`] copy of the current (including uncommitted) state.
    pub fn map(&self) -> GapMap {
        self.state.to_gapmap()
    }

    /// Version of the leading gap (between `LOW` and the first entry).
    pub fn low_gap(&self) -> Version {
        self.state.low_gap()
    }

    /// Visits entries with byte keys in `[low, high)` in key order as
    /// `(key, version, value, gap_after)` without copying the state; see
    /// [`DirState::visit_range`](crate::DirState::visit_range).
    pub fn visit_range(
        &self,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        visit: &mut dyn FnMut(&UserKey, Version, &Value, Version),
    ) {
        self.state.visit_range(low, high, visit);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Number of in-flight transactions.
    pub fn active_txns(&self) -> usize {
        self.undo.len()
    }

    /// Registers a transaction and logs its begin record.
    pub fn begin(&mut self, txn: TxnId) {
        self.undo.entry(txn).or_default();
        self.wal.append(&WalRecord::Begin { txn: txn.0 });
    }

    /// `DirRepLookup` against current state (reads need no redo records).
    pub fn lookup(&self, key: &Key) -> LookupReply {
        self.state.lookup(key)
    }

    /// `DirRepPredecessor` against current state.
    ///
    /// # Errors
    ///
    /// As [`GapMap::predecessor`].
    pub fn predecessor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        self.state.predecessor(key)
    }

    /// `DirRepSuccessor` against current state.
    ///
    /// # Errors
    ///
    /// As [`GapMap::successor`].
    pub fn successor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        self.state.successor(key)
    }

    /// Transactional `DirRepInsert`: applies, logs redo, records undo.
    ///
    /// # Errors
    ///
    /// [`RepError::TransactionAborted`] for an unregistered transaction, or
    /// the underlying [`GapMap::insert`] error.
    pub fn insert(
        &mut self,
        txn: TxnId,
        key: &Key,
        version: Version,
        value: Value,
    ) -> Result<InsertOutcome, RepError> {
        if !self.undo.contains_key(&txn) {
            return Err(RepError::TransactionAborted);
        }
        let outcome = self.state.insert(key, version, value.clone())?;
        self.undo
            .get_mut(&txn)
            .expect("checked above")
            .push(undo_for_insert(key, &outcome));
        self.wal.append(&WalRecord::Insert {
            txn: txn.0,
            key: key.clone(),
            version,
            value,
        });
        Ok(outcome)
    }

    /// Transactional `DirRepCoalesce`: applies, logs redo, records undo.
    ///
    /// # Errors
    ///
    /// [`RepError::TransactionAborted`] for an unregistered transaction, or
    /// the underlying [`GapMap::coalesce`] error.
    pub fn coalesce(
        &mut self,
        txn: TxnId,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> Result<CoalesceOutcome, RepError> {
        if !self.undo.contains_key(&txn) {
            return Err(RepError::TransactionAborted);
        }
        let outcome = self.state.coalesce(low, high, version)?;
        self.undo
            .get_mut(&txn)
            .expect("checked above")
            .push(undo_for_coalesce(low, &outcome));
        self.wal.append(&WalRecord::Coalesce {
            txn: txn.0,
            low: low.clone(),
            high: high.clone(),
            version,
        });
        Ok(outcome)
    }

    /// Commits: appends the commit record and syncs. After this returns, the
    /// transaction survives any crash. Unknown transactions are a no-op
    /// (idempotent commit of an empty transaction).
    pub fn commit(&mut self, txn: TxnId) {
        if self.undo.remove(&txn).is_some() {
            self.wal.append(&WalRecord::Commit { txn: txn.0 });
            self.wal.sync();
        }
    }

    /// Aborts: rolls memory back via the undo log (reverse order) and logs
    /// an abort record. Idempotent. Returns whether any state change was
    /// rolled back (lets callers skip cache invalidation for read-only
    /// transactions).
    pub fn abort(&mut self, txn: TxnId) -> bool {
        if let Some(mut undo) = self.undo.remove(&txn) {
            let undid = !undo.is_empty();
            while let Some(rec) = undo.pop() {
                apply_undo_dyn(self.state.as_mut(), rec);
            }
            self.wal.append(&WalRecord::Abort { txn: txn.0 });
            return undid;
        }
        false
    }

    /// Writes a checkpoint so recovery need not replay the whole log.
    /// Checkpoints are taken quiesced: the in-memory state must hold
    /// committed data only, or the snapshot would capture another
    /// transaction's uncommitted writes.
    ///
    /// # Errors
    ///
    /// [`WalError::CheckpointBusy`] if transactions are in flight; the
    /// caller (e.g. the snapshot installer finishing a stream) can retry
    /// once the representative drains.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        if !self.undo.is_empty() {
            return Err(WalError::CheckpointBusy(self.undo.len()));
        }
        self.wal
            .append(&WalRecord::checkpoint_of(&self.state.to_gapmap()));
        self.wal.sync();
        Ok(())
    }

    /// Durably spills a stale vote observed against this representative
    /// (see [`WalRecord::StaleVote`]): appended outside any transaction and
    /// synced immediately, so a process restart finds the evidence and the
    /// repair driver resumes its targeted pulls.
    pub fn spill_stale_vote(&mut self, member: u64, key: Key, seen: Version, latest: Version) {
        self.wal.append(&WalRecord::StaleVote {
            member,
            key,
            seen,
            latest,
        });
        self.wal.sync();
    }

    /// The underlying disk (crash injection in tests).
    pub fn disk(&self) -> &Arc<SimDisk> {
        self.wal.disk()
    }
}

/// Applies one undo record against any [`DirState`] backend (the trait-
/// object twin of [`repdir_txn::apply_undo`]).
fn apply_undo_dyn(state: &mut dyn DirState, record: UndoRecord) {
    match record {
        UndoRecord::RemoveEntry { key } => {
            assert!(
                state.remove_entry_raw(&key),
                "undo RemoveEntry: no entry for {key:?}"
            );
        }
        UndoRecord::RestoreEntryValue {
            key,
            version,
            value,
        } => {
            assert!(
                state.update_entry_raw(&key, version, value),
                "undo RestoreEntryValue: no entry for {key:?}"
            );
        }
        UndoRecord::UndoCoalesce {
            low,
            old_gap_version,
            removed,
        } => {
            for r in removed {
                state.restore_entry(r.key, r.version, r.value, r.gap_after);
            }
            state
                .set_gap_after(&low, old_gap_version)
                .expect("undo UndoCoalesce: boundary vanished");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn committed_survives_crash_uncommitted_does_not() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        st.begin(TxnId(1));
        st.insert(TxnId(1), &k("a"), v(1), val("A")).unwrap();
        st.commit(TxnId(1));
        st.begin(TxnId(2));
        st.insert(TxnId(2), &k("b"), v(1), val("B")).unwrap();
        // "b" visible before the crash...
        assert!(st.lookup(&k("b")).is_present());

        disk.crash(0);
        let rec = DurableState::recover(disk).unwrap();
        assert!(rec.lookup(&k("a")).is_present());
        assert!(!rec.lookup(&k("b")).is_present());
    }

    #[test]
    fn abort_rolls_back_memory_and_recovery_agrees() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        st.begin(TxnId(1));
        st.insert(TxnId(1), &k("a"), v(1), val("A")).unwrap();
        st.insert(TxnId(1), &k("b"), v(1), val("B")).unwrap();
        st.coalesce(TxnId(1), &Key::Low, &Key::High, v(2)).unwrap();
        st.abort(TxnId(1));
        assert!(st.is_empty());
        assert_eq!(st.map().version_of(&k("a")), v(0));

        st.disk().sync();
        let rec = DurableState::recover(Arc::clone(st.disk())).unwrap();
        assert!(rec.is_empty());
    }

    #[test]
    fn interleaved_transactions_roll_independently() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        st.begin(TxnId(1));
        st.begin(TxnId(2));
        st.insert(TxnId(1), &k("one"), v(1), val("1")).unwrap();
        st.insert(TxnId(2), &k("two"), v(1), val("2")).unwrap();
        assert_eq!(st.active_txns(), 2);
        st.commit(TxnId(2));
        st.abort(TxnId(1));
        assert!(!st.lookup(&k("one")).is_present());
        assert!(st.lookup(&k("two")).is_present());

        disk.crash(0);
        let rec = DurableState::recover(disk).unwrap();
        assert!(!rec.lookup(&k("one")).is_present());
        assert!(rec.lookup(&k("two")).is_present());
    }

    #[test]
    fn recovery_after_checkpoint_truncates_history() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        for (i, key) in ["a", "b", "c"].iter().enumerate() {
            let t = TxnId(i as u64 + 1);
            st.begin(t);
            st.insert(t, &k(key), v(1), val(key)).unwrap();
            st.commit(t);
        }
        st.checkpoint().unwrap();
        let t = TxnId(10);
        st.begin(t);
        st.coalesce(t, &k("a"), &k("c"), v(2)).unwrap();
        st.commit(t);

        disk.crash(0);
        let rec = DurableState::recover(disk).unwrap();
        assert!(rec.lookup(&k("a")).is_present());
        assert!(
            !rec.lookup(&k("b")).is_present(),
            "coalesced after checkpoint"
        );
        assert!(rec.lookup(&k("c")).is_present());
        assert_eq!(rec.map().version_of(&k("b")), v(2));
    }

    #[test]
    fn torn_commit_record_means_aborted() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        st.begin(TxnId(1));
        st.insert(TxnId(1), &k("a"), v(1), val("A")).unwrap();
        // Commit appended but crash tears all but 2 bytes of the whole
        // unsynced region — the commit record is unreadable.
        st.commit(TxnId(1));
        // Note: commit() synced. Do a second transaction without sync to
        // exercise the torn path.
        st.begin(TxnId(2));
        st.insert(TxnId(2), &k("b"), v(1), val("B")).unwrap();
        disk.crash(2);
        let rec = DurableState::recover(disk).unwrap();
        assert!(rec.lookup(&k("a")).is_present());
        assert!(!rec.lookup(&k("b")).is_present());
    }

    #[test]
    fn operations_require_registered_transaction() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(disk);
        assert_eq!(
            st.insert(TxnId(99), &k("a"), v(1), val("A")),
            Err(RepError::TransactionAborted)
        );
        assert_eq!(
            st.coalesce(TxnId(99), &Key::Low, &Key::High, v(1)),
            Err(RepError::TransactionAborted)
        );
        // Commit/abort of unknown transactions are harmless no-ops.
        st.commit(TxnId(99));
        st.abort(TxnId(99));
    }

    #[test]
    fn checkpoint_with_active_txn_is_a_retryable_error() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(disk);
        st.begin(TxnId(1));
        st.begin(TxnId(2));
        assert_eq!(st.checkpoint(), Err(WalError::CheckpointBusy(2)));
        // Nothing was appended: recovery sees no checkpoint record.
        st.disk().sync();
        let (records, _) = crate::wal::decode_log(&st.disk().read_all());
        assert!(!records
            .iter()
            .any(|r| matches!(r, WalRecord::Checkpoint { .. })));
        // Once the representative drains, the same call succeeds.
        st.commit(TxnId(1));
        st.abort(TxnId(2));
        st.checkpoint().unwrap();
    }

    #[test]
    fn failed_operation_leaves_no_residue() {
        let disk = Arc::new(SimDisk::new());
        let mut st = DurableState::new(Arc::clone(&disk));
        st.begin(TxnId(1));
        // Coalesce with a missing boundary fails: no undo, no wal record.
        assert!(st.coalesce(TxnId(1), &k("nope"), &Key::High, v(1)).is_err());
        st.commit(TxnId(1));
        disk.crash(0);
        let rec = DurableState::recover(disk).unwrap();
        assert!(rec.is_empty());
    }
}
