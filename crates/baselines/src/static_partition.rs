//! Static key-space partitioning with per-partition version voting (§2).
//!
//! "The simplest approach is to use a static partitioning; however, the
//! additional concurrency that is achieved might be less than expected. If
//! a small number of ranges were used, then at most that number of
//! transactions could modify a directory concurrently … an uneven
//! distribution of accesses could limit concurrency."
//!
//! Each partition behaves like a small Gifford-replicated file: one version
//! number per partition per replica, writes rewrite the partition
//! wholesale in a write quorum. Deletion works (the partition version
//! covers absent keys), but concurrency is capped at the partition count
//! and hot ranges serialize.

use std::collections::BTreeMap;

use repdir_core::rng::SplitMix64;
use repdir_core::suite::SuiteConfig;
use repdir_core::{Key, UserKey, Value, Version};

use crate::common::{BaselineError, DirectoryOps};

#[derive(Clone, Debug, Default)]
struct PartitionCopy {
    version: Version,
    map: BTreeMap<UserKey, Value>,
}

/// A statically partitioned, quorum-replicated directory.
#[derive(Debug)]
pub struct StaticPartitionDirectory {
    /// `state[replica][partition]`.
    state: Vec<Vec<PartitionCopy>>,
    available: Vec<bool>,
    /// Sorted boundary keys; partition `i` holds keys in
    /// `[boundaries[i-1], boundaries[i])`.
    boundaries: Vec<UserKey>,
    config: SuiteConfig,
    rng: SplitMix64,
    /// Write conflicts observed (optimistic version check lost).
    pub conflicts: u64,
}

impl StaticPartitionDirectory {
    /// Creates a directory with the given partition boundaries (sorted,
    /// deduplicated automatically). `k` boundaries give `k + 1` partitions.
    pub fn new(config: SuiteConfig, mut boundaries: Vec<UserKey>, seed: u64) -> Self {
        boundaries.sort();
        boundaries.dedup();
        let partitions = boundaries.len() + 1;
        let replicas = config.member_count();
        StaticPartitionDirectory {
            state: vec![vec![PartitionCopy::default(); partitions]; replicas],
            available: vec![true; replicas],
            boundaries,
            config,
            rng: SplitMix64::new(seed),
            conflicts: 0,
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The partition index a key falls into.
    pub fn partition_of(&self, key: &UserKey) -> usize {
        self.boundaries.partition_point(|b| b <= key)
    }

    /// Injects or heals a failure at replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_available(&mut self, i: usize, available: bool) {
        self.available[i] = available;
    }

    fn collect(&mut self, needed: u32) -> Result<Vec<usize>, BaselineError> {
        let mut order: Vec<usize> = (0..self.state.len()).collect();
        self.rng.shuffle(&mut order);
        let mut chosen = Vec::new();
        let mut votes = 0;
        for i in order {
            if votes >= needed {
                break;
            }
            if self.config.votes_of(i) == 0 || !self.available[i] {
                continue;
            }
            votes += self.config.votes_of(i);
            chosen.push(i);
        }
        if votes < needed {
            Err(BaselineError::Unavailable {
                needed,
                gathered: votes,
            })
        } else {
            Ok(chosen)
        }
    }

    /// Reads a partition through a read quorum: newest copy wins. Public
    /// so concurrency experiments can interleave the read and write phases
    /// of a read-modify-write explicitly.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Unavailable`] if a read quorum cannot form.
    pub fn read_partition(
        &mut self,
        p: usize,
    ) -> Result<(Version, BTreeMap<UserKey, Value>), BaselineError> {
        let quorum = self.collect(self.config.read_quorum())?;
        let best = quorum
            .into_iter()
            .max_by_key(|&i| self.state[i][p].version)
            .expect("quorum non-empty");
        Ok((self.state[best][p].version, self.state[best][p].map.clone()))
    }

    /// Rewrites a partition through a write quorum with an optimistic
    /// version check.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Conflict`] if the partition moved past `base`;
    /// [`BaselineError::Unavailable`] if a write quorum cannot form.
    pub fn write_partition(
        &mut self,
        p: usize,
        base: Version,
        map: BTreeMap<UserKey, Value>,
    ) -> Result<(), BaselineError> {
        let quorum = self.collect(self.config.write_quorum())?;
        if quorum.iter().any(|&i| self.state[i][p].version > base) {
            self.conflicts += 1;
            return Err(BaselineError::Conflict);
        }
        let next = base.next();
        for i in quorum {
            self.state[i][p].version = next;
            self.state[i][p].map = map.clone();
        }
        Ok(())
    }

    fn mutate(
        &mut self,
        key: &UserKey,
        f: impl Fn(&mut BTreeMap<UserKey, Value>) -> Result<(), BaselineError>,
    ) -> Result<(), BaselineError> {
        let p = self.partition_of(key);
        for _ in 0..64 {
            let (version, mut map) = self.read_partition(p)?;
            f(&mut map)?;
            match self.write_partition(p, version, map) {
                Ok(()) => return Ok(()),
                Err(BaselineError::Conflict) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(BaselineError::Conflict)
    }

    fn user(key: &Key) -> Result<UserKey, BaselineError> {
        key.as_user()
            .cloned()
            .ok_or(BaselineError::NotFound { key: key.clone() })
    }
}

impl DirectoryOps for StaticPartitionDirectory {
    fn lookup(&mut self, key: &Key) -> Result<Option<Value>, BaselineError> {
        let user = Self::user(key)?;
        let p = self.partition_of(&user);
        let (_, map) = self.read_partition(p)?;
        Ok(map.get(&user).cloned())
    }

    fn insert(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        let value = value.clone();
        let probe = user.clone();
        self.mutate(&probe, move |map| {
            if map.contains_key(&user) {
                return Err(BaselineError::AlreadyExists {
                    key: Key::User(user.clone()),
                });
            }
            map.insert(user.clone(), value.clone());
            Ok(())
        })
    }

    fn update(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        let value = value.clone();
        let probe = user.clone();
        self.mutate(&probe, move |map| match map.get_mut(&user) {
            Some(slot) => {
                *slot = value.clone();
                Ok(())
            }
            None => Err(BaselineError::NotFound {
                key: Key::User(user.clone()),
            }),
        })
    }

    fn delete(&mut self, key: &Key) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        let probe = user.clone();
        self.mutate(&probe, move |map| {
            if map.remove(&user).is_none() {
                return Err(BaselineError::NotFound {
                    key: Key::User(user.clone()),
                });
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn uk(s: &str) -> UserKey {
        UserKey::from(s)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }
    fn dir() -> StaticPartitionDirectory {
        StaticPartitionDirectory::new(
            SuiteConfig::symmetric(3, 2, 2).unwrap(),
            vec![uk("h"), uk("p")],
            9,
        )
    }

    #[test]
    fn partition_routing() {
        let d = dir();
        assert_eq!(d.partition_count(), 3);
        assert_eq!(d.partition_of(&uk("a")), 0);
        assert_eq!(d.partition_of(&uk("h")), 1); // boundary key goes right
        assert_eq!(d.partition_of(&uk("m")), 1);
        assert_eq!(d.partition_of(&uk("z")), 2);
    }

    #[test]
    fn crud_across_partitions() {
        let mut d = dir();
        for key in ["a", "m", "z"] {
            d.insert(&k(key), &val(key)).unwrap();
        }
        for key in ["a", "m", "z"] {
            assert_eq!(d.lookup(&k(key)).unwrap(), Some(val(key)));
        }
        d.update(&k("m"), &val("M2")).unwrap();
        assert_eq!(d.lookup(&k("m")).unwrap(), Some(val("M2")));
        d.delete(&k("a")).unwrap();
        assert_eq!(d.lookup(&k("a")).unwrap(), None);
        // Deletion is unambiguous here: the partition version covers the
        // absent key — the same trick as gap versions, at coarse grain.
        for _ in 0..20 {
            assert_eq!(d.lookup(&k("a")).unwrap(), None);
        }
    }

    #[test]
    fn duplicate_and_missing_errors() {
        let mut d = dir();
        d.insert(&k("a"), &val("A")).unwrap();
        assert_eq!(
            d.insert(&k("a"), &val("A")),
            Err(BaselineError::AlreadyExists { key: k("a") })
        );
        assert_eq!(
            d.update(&k("nope"), &val("x")),
            Err(BaselineError::NotFound { key: k("nope") })
        );
        assert_eq!(
            d.delete(&k("nope")),
            Err(BaselineError::NotFound { key: k("nope") })
        );
    }

    #[test]
    fn stale_write_base_conflicts() {
        let mut d = dir();
        d.insert(&k("a"), &val("A")).unwrap();
        let p = d.partition_of(&uk("a"));
        let (v, map) = d.read_partition(p).unwrap();
        // A competing writer moves the partition first.
        d.update(&k("a"), &val("A2")).unwrap();
        assert_eq!(d.write_partition(p, v, map), Err(BaselineError::Conflict));
        assert_eq!(d.conflicts, 1);
    }

    #[test]
    fn survives_one_failure_in_322() {
        let mut d = dir();
        d.insert(&k("a"), &val("A")).unwrap();
        d.set_available(0, false);
        assert_eq!(d.lookup(&k("a")).unwrap(), Some(val("A")));
        d.update(&k("a"), &val("A2")).unwrap();
        d.set_available(1, false);
        assert!(matches!(
            d.lookup(&k("a")),
            Err(BaselineError::Unavailable { .. })
        ));
    }

    #[test]
    fn writes_to_same_partition_share_a_version_counter() {
        // The concurrency limitation in miniature: distinct keys in one
        // partition contend on one version; distinct partitions do not.
        let mut d = dir();
        d.insert(&k("a"), &val("1")).unwrap();
        d.insert(&k("b"), &val("2")).unwrap(); // same partition as "a"
        d.insert(&k("z"), &val("3")).unwrap(); // different partition
        let p0 = d.partition_of(&uk("a"));
        let pz = d.partition_of(&uk("z"));
        let (v0, _) = d.read_partition(p0).unwrap();
        let (vz, _) = d.read_partition(pz).unwrap();
        assert_eq!(v0, Version::new(2), "two writes hit partition 0");
        assert_eq!(vz, Version::new(1), "one write hit partition 2");
    }
}
