//! The broken scheme the paper's algorithm fixes: a version number on each
//! **entry** only, with nothing covering absent keys (§2, Figures 1–3).
//!
//! After a delete misses some replicas, a read quorum can contain one
//! replica answering "present with version v" and another answering "not
//! present" *with no version* — undecidable. The paper's described
//! mitigation, implemented here, is "consulting an additional
//! representative whenever one representative replies 'present with version
//! x' and another representative replies 'not present'", which "results in
//! reduced availability": deciding may require replicas beyond the read
//! quorum, and fails when they are down.

use std::collections::BTreeMap;

use repdir_core::rng::SplitMix64;
use repdir_core::suite::SuiteConfig;
use repdir_core::{Key, UserKey, Value, Version};

use crate::common::{BaselineError, DirectoryOps};

#[derive(Clone, Debug)]
struct Entry {
    version: Version,
    value: Value,
}

#[derive(Clone, Debug, Default)]
struct Replica {
    map: BTreeMap<UserKey, Entry>,
    available: bool,
}

/// A quorum-replicated directory with per-entry versions and **no** gap
/// versions.
///
/// Decision rule after widening to all reachable replicas: the key is
/// present iff it is found on strictly more than `N - W` replicas (a live
/// entry sits on at least `W`; a fully deleted one on at most `N - W`).
/// Histories that interleave inserts and partial deletes can still defeat
/// the rule — see the crate tests — which is precisely the paper's point.
#[derive(Debug)]
pub struct NaiveEntryDirectory {
    replicas: Vec<Replica>,
    config: SuiteConfig,
    rng: SplitMix64,
    /// Replies consulted beyond the read quorum (the availability cost of
    /// disambiguation).
    pub extra_consultations: u64,
    /// Lookups that could not be decided even after widening.
    pub ambiguous_lookups: u64,
}

impl NaiveEntryDirectory {
    /// Creates an empty directory.
    pub fn new(config: SuiteConfig, seed: u64) -> Self {
        let replicas = vec![
            Replica {
                map: BTreeMap::new(),
                available: true,
            };
            config.member_count()
        ];
        NaiveEntryDirectory {
            replicas,
            config,
            rng: SplitMix64::new(seed),
            extra_consultations: 0,
            ambiguous_lookups: 0,
        }
    }

    /// Injects or heals a failure at replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_available(&mut self, i: usize, available: bool) {
        self.replicas[i].available = available;
    }

    /// Test hook: inserts at an explicit replica set, bypassing quorum
    /// selection (reconstructs the paper's Figures 1–3 exactly).
    pub fn insert_at(
        &mut self,
        key: &UserKey,
        version: Version,
        value: &Value,
        replicas: &[usize],
    ) {
        for &i in replicas {
            self.replicas[i].map.insert(
                key.clone(),
                Entry {
                    version,
                    value: value.clone(),
                },
            );
        }
    }

    /// Test hook: deletes at an explicit replica set.
    pub fn delete_at(&mut self, key: &UserKey, replicas: &[usize]) {
        for &i in replicas {
            self.replicas[i].map.remove(key);
        }
    }

    /// The presence threshold: found on more than `N - W` replicas.
    fn present_threshold(&self) -> usize {
        (self.config.total_votes() - self.config.write_quorum()) as usize + 1
    }

    fn collect(&mut self, needed: u32) -> Result<Vec<usize>, BaselineError> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        self.rng.shuffle(&mut order);
        let mut chosen = Vec::new();
        let mut votes = 0;
        for i in order {
            if votes >= needed {
                break;
            }
            if self.config.votes_of(i) == 0 || !self.replicas[i].available {
                continue;
            }
            votes += self.config.votes_of(i);
            chosen.push(i);
        }
        if votes < needed {
            Err(BaselineError::Unavailable {
                needed,
                gathered: votes,
            })
        } else {
            Ok(chosen)
        }
    }

    /// The quorum lookup with widening. Returns the decided entry, or
    /// `Err(Ambiguous)` when replicas needed to decide are unreachable.
    fn decide(&mut self, key: &UserKey) -> Result<Option<Entry>, BaselineError> {
        let quorum = self.collect(self.config.read_quorum())?;
        let mut consulted: Vec<usize> = quorum;
        let replies: Vec<Option<Entry>> = consulted
            .iter()
            .map(|&i| self.replicas[i].map.get(key).cloned())
            .collect();
        let any_present = replies.iter().any(|r| r.is_some());
        let any_absent = replies.iter().any(|r| r.is_none());

        if !any_present {
            return Ok(None);
        }
        if !any_absent {
            // Unanimously present in the quorum: the highest version wins.
            return Ok(best_of(replies));
        }

        // Mixed answers: widen to every reachable replica (the paper's
        // mitigation). Count how many replicas hold the key at all.
        for i in 0..self.replicas.len() {
            if consulted.contains(&i) {
                continue;
            }
            if !self.replicas[i].available {
                // A replica whose answer could flip the decision is down.
                self.ambiguous_lookups += 1;
                return Err(BaselineError::Ambiguous {
                    key: Key::User(key.clone()),
                });
            }
            self.extra_consultations += 1;
            consulted.push(i);
        }
        let holders: Vec<Entry> = consulted
            .iter()
            .filter_map(|&i| self.replicas[i].map.get(key).cloned())
            .collect();
        if holders.len() >= self.present_threshold() {
            Ok(best_of(holders.into_iter().map(Some).collect()))
        } else {
            Ok(None)
        }
    }

    fn user(key: &Key) -> Result<UserKey, BaselineError> {
        key.as_user()
            .cloned()
            .ok_or(BaselineError::NotFound { key: key.clone() })
    }
}

fn best_of(replies: Vec<Option<Entry>>) -> Option<Entry> {
    replies.into_iter().flatten().max_by_key(|e| e.version)
}

impl DirectoryOps for NaiveEntryDirectory {
    fn lookup(&mut self, key: &Key) -> Result<Option<Value>, BaselineError> {
        let user = Self::user(key)?;
        Ok(self.decide(&user)?.map(|e| e.value))
    }

    fn insert(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        if self.decide(&user)?.is_some() {
            return Err(BaselineError::AlreadyExists { key: key.clone() });
        }
        // Version from the read quorum's ghosts, if any were visible —
        // exactly the fragile part: invisible ghosts keep their versions.
        let quorum = self.collect(self.config.read_quorum())?;
        let base = quorum
            .iter()
            .filter_map(|&i| self.replicas[i].map.get(&user))
            .map(|e| e.version)
            .max()
            .unwrap_or(Version::ZERO);
        let writers = self.collect(self.config.write_quorum())?;
        self.insert_at(&user, base.next(), value, &writers);
        Ok(())
    }

    fn update(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        let Some(cur) = self.decide(&user)? else {
            return Err(BaselineError::NotFound { key: key.clone() });
        };
        let writers = self.collect(self.config.write_quorum())?;
        self.insert_at(&user, cur.version.next(), value, &writers);
        Ok(())
    }

    fn delete(&mut self, key: &Key) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        if self.decide(&user)?.is_none() {
            return Err(BaselineError::NotFound { key: key.clone() });
        }
        let writers = self.collect(self.config.write_quorum())?;
        self.delete_at(&user, &writers);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uk(s: &str) -> UserKey {
        UserKey::from(s)
    }
    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn dir() -> NaiveEntryDirectory {
        NaiveEntryDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), 13)
    }

    /// The paper's Figures 1–3, replayed literally.
    #[test]
    fn figures_1_to_3_require_widening() {
        let mut d = dir();
        // Fig 1: a, c on every representative, version 1.
        for key in ["a", "c"] {
            d.insert_at(&uk(key), v(1), &val(key), &[0, 1, 2]);
        }
        // Fig 2: b inserted at A, B with version 1.
        d.insert_at(&uk("b"), v(1), &val("b"), &[0, 1]);
        // Fig 3: b deleted from B and C.
        d.delete_at(&uk("b"), &[1, 2]);

        // A read quorum {A, C} sees "present v1" and "not present" — only
        // consulting B (the widening) decides. b is now on 1 replica = N-W,
        // below the presence threshold of 2: correctly deleted.
        let before = d.extra_consultations;
        let mut saw_widening = false;
        for _ in 0..20 {
            assert_eq!(d.lookup(&k("b")).unwrap(), None);
            saw_widening |= d.extra_consultations > before;
        }
        assert!(saw_widening, "mixed quorums must consult extra replicas");
    }

    #[test]
    fn widening_fails_when_decider_is_down_reduced_availability() {
        let mut d = dir();
        d.insert_at(&uk("b"), v(1), &val("b"), &[0, 1]);
        d.delete_at(&uk("b"), &[1, 2]);
        // B is down. Quorum {A, C} answers present-v1 / absent; the one
        // replica that could decide is unreachable.
        d.set_available(1, false);
        let mut ambiguous = 0;
        for _ in 0..30 {
            match d.lookup(&k("b")) {
                Err(BaselineError::Ambiguous { .. }) => ambiguous += 1,
                Ok(None) => {} // quorum {A, C} drawn in the other order can
                // still include both; decision needs B either way, so this
                // arm means the shuffle picked A+C and widened... it cannot.
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(
            ambiguous > 0,
            "with the deciding replica down, lookups go ambiguous — \
             the reduced availability the paper predicts"
        );
        // The gap-versioned algorithm answers this instantly from {A, C}:
        // see repdir-core's figure tests.
    }

    #[test]
    fn basic_crud_without_failures_mostly_works() {
        let mut d = dir();
        d.insert(&k("x"), &val("X")).unwrap();
        assert_eq!(d.lookup(&k("x")).unwrap(), Some(val("X")));
        d.update(&k("x"), &val("X2")).unwrap();
        assert_eq!(d.lookup(&k("x")).unwrap(), Some(val("X2")));
        d.delete(&k("x")).unwrap();
        assert_eq!(d.lookup(&k("x")).unwrap(), None);
    }

    #[test]
    fn adversarial_history_defeats_even_full_consultation() {
        // insert b at {A,B} v1; delete via {B,C}; reinsert at {B,C} with a
        // version computed from a quorum that saw the ghost... the ghost on
        // A still carries v1 while current data is v2 — now delete again
        // via {B,C}: b remains ONLY on A with v1. Full consultation counts
        // 1 holder (below threshold): correctly absent. But a ghost-heavy
        // variant can reach the threshold:
        let mut d = dir();
        // b on A and B (v1).
        d.insert_at(&uk("b"), v(1), &val("old"), &[0, 1]);
        // delete via {B, C} — ghost with v1 stays on A.
        d.delete_at(&uk("b"), &[1, 2]);
        // re-insert via {B, C} (v2, value "new").
        d.insert_at(&uk("b"), v(2), &val("new"), &[1, 2]);
        // delete again via {A, B}: removes A's ghost and B's current copy —
        // but C still holds v2!
        d.delete_at(&uk("b"), &[0, 1]);
        // b sits on exactly 1 replica (C) — decided absent. Correct by
        // luck of the counting rule...
        assert_eq!(d.lookup(&k("b")).unwrap(), None);
        // ...now a THIRD insert at {A, B} with a version computed from a
        // read quorum that cannot see C's v2 ghost picks v1+... the quorum
        // {A, B} holds no entry at all, so version restarts at 1 — LOWER
        // than the ghost's v2 on C. A full consultation now ranks the stale
        // C copy ("new", v2) above the fresh one ("fresh", v1):
        d.insert_at(&uk("b"), v(1), &val("fresh"), &[0, 1]);
        // 3 holders >= threshold 2 → present, but with the WRONG value.
        let got = d.lookup(&k("b")).unwrap();
        assert_eq!(
            got,
            Some(val("new")),
            "version collision resurrects stale data — the naive scheme \
             returns the deleted value instead of the fresh one"
        );
    }

    #[test]
    fn all_replicas_down_is_unavailable() {
        let mut d = dir();
        for i in 0..3 {
            d.set_available(i, false);
        }
        assert!(matches!(
            d.lookup(&k("a")),
            Err(BaselineError::Unavailable { .. })
        ));
    }
}
