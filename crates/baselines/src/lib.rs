//! # repdir-baselines
//!
//! Every replication strategy §2 of *An Algorithm for Replicated
//! Directories* surveys or warns about, implemented against a common
//! [`DirectoryOps`] interface so the workload driver and benchmarks can
//! compare them with the paper's algorithm:
//!
//! * [`UnanimousDirectory`] — unanimous update: reads anywhere, writes
//!   everywhere; update availability collapses as replicas are added.
//! * [`PrimaryCopyDirectory`] — primary/secondary copies with asynchronous
//!   relay: stale secondary reads and lost updates on failover.
//! * [`FileSuite`] / [`GiffordFileDirectory`] — Gifford's weighted voting
//!   for files, and a directory stored as one replicated file: correct but
//!   with a single version serializing all modifications.
//! * [`StaticPartitionDirectory`] — per-range version voting with *static*
//!   ranges: deletion works, concurrency capped by the partition count.
//! * [`NaiveEntryDirectory`] — per-entry versions with no gap versions: the
//!   delete ambiguity of Figures 1–3, the widen-the-quorum mitigation, its
//!   reduced availability, and a history where stale data resurrects.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
mod gifford_file;
mod naive_entry;
mod primary_copy;
mod static_partition;
mod unanimous;

pub use common::{BaselineError, DirectoryOps};
pub use gifford_file::{FileSuite, GiffordFileDirectory};
pub use naive_entry::NaiveEntryDirectory;
pub use primary_copy::PrimaryCopyDirectory;
pub use static_partition::StaticPartitionDirectory;
pub use unanimous::UnanimousDirectory;
