//! The unanimous-update strategy (§2): writes touch every replica, reads
//! any one.
//!
//! "Unfortunately, the availability for updates of any object is poor when
//! large numbers of replicas are used" — the availability benchmark
//! quantifies exactly that against quorum configurations.

use std::collections::BTreeMap;

use repdir_core::rng::SplitMix64;
use repdir_core::{Key, UserKey, Value};

use crate::common::{BaselineError, DirectoryOps};

#[derive(Clone, Debug, Default)]
struct Replica {
    map: BTreeMap<UserKey, Value>,
    available: bool,
}

/// A directory replicated by unanimous update.
///
/// All replicas hold identical state, so a read may go to any live replica;
/// every mutation must reach **all** replicas and fails if any is down
/// (this implementation does not model SDD-1-style buffered redelivery;
/// the paper cites it only as a mitigation attempt).
#[derive(Debug)]
pub struct UnanimousDirectory {
    replicas: Vec<Replica>,
    rng: SplitMix64,
}

impl UnanimousDirectory {
    /// Creates `n` empty replicas.
    pub fn new(n: usize, seed: u64) -> Self {
        UnanimousDirectory {
            replicas: vec![
                Replica {
                    map: BTreeMap::new(),
                    available: true,
                };
                n
            ],
            rng: SplitMix64::new(seed),
        }
    }

    /// Injects or heals a failure at replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_available(&mut self, i: usize, available: bool) {
        self.replicas[i].available = available;
    }

    /// Number of replicas currently up.
    pub fn available_count(&self) -> u32 {
        self.replicas.iter().filter(|r| r.available).count() as u32
    }

    fn any_reader(&mut self) -> Result<usize, BaselineError> {
        let n = self.replicas.len();
        let start = self.rng.next_below(n as u64) as usize;
        (0..n)
            .map(|d| (start + d) % n)
            .find(|&i| self.replicas[i].available)
            .ok_or(BaselineError::Unavailable {
                needed: 1,
                gathered: 0,
            })
    }

    fn all_writers(&self) -> Result<(), BaselineError> {
        let up = self.available_count();
        let needed = self.replicas.len() as u32;
        if up < needed {
            Err(BaselineError::Unavailable {
                needed,
                gathered: up,
            })
        } else {
            Ok(())
        }
    }

    fn user(key: &Key) -> Result<UserKey, BaselineError> {
        key.as_user()
            .cloned()
            .ok_or(BaselineError::NotFound { key: key.clone() })
    }
}

impl DirectoryOps for UnanimousDirectory {
    fn lookup(&mut self, key: &Key) -> Result<Option<Value>, BaselineError> {
        let user = Self::user(key)?;
        let i = self.any_reader()?;
        Ok(self.replicas[i].map.get(&user).cloned())
    }

    fn insert(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        self.all_writers()?;
        if self.replicas[0].map.contains_key(&user) {
            return Err(BaselineError::AlreadyExists { key: key.clone() });
        }
        for r in &mut self.replicas {
            r.map.insert(user.clone(), value.clone());
        }
        Ok(())
    }

    fn update(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        self.all_writers()?;
        if !self.replicas[0].map.contains_key(&user) {
            return Err(BaselineError::NotFound { key: key.clone() });
        }
        for r in &mut self.replicas {
            r.map.insert(user.clone(), value.clone());
        }
        Ok(())
    }

    fn delete(&mut self, key: &Key) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        self.all_writers()?;
        if !self.replicas[0].map.contains_key(&user) {
            return Err(BaselineError::NotFound { key: key.clone() });
        }
        for r in &mut self.replicas {
            r.map.remove(&user);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn crud_with_all_up() {
        let mut dir = UnanimousDirectory::new(3, 1);
        dir.insert(&k("a"), &val("A")).unwrap();
        assert_eq!(dir.lookup(&k("a")).unwrap(), Some(val("A")));
        dir.update(&k("a"), &val("A2")).unwrap();
        dir.delete(&k("a")).unwrap();
        assert_eq!(dir.lookup(&k("a")).unwrap(), None);
        assert_eq!(
            dir.update(&k("a"), &val("x")),
            Err(BaselineError::NotFound { key: k("a") })
        );
    }

    #[test]
    fn one_failure_blocks_all_writes_but_not_reads() {
        let mut dir = UnanimousDirectory::new(3, 2);
        dir.insert(&k("a"), &val("A")).unwrap();
        dir.set_available(1, false);
        assert_eq!(
            dir.insert(&k("b"), &val("B")),
            Err(BaselineError::Unavailable {
                needed: 3,
                gathered: 2
            })
        );
        assert_eq!(
            dir.delete(&k("a")),
            Err(BaselineError::Unavailable {
                needed: 3,
                gathered: 2
            })
        );
        // Reads survive until the last replica dies.
        for _ in 0..10 {
            assert_eq!(dir.lookup(&k("a")).unwrap(), Some(val("A")));
        }
        dir.set_available(0, false);
        dir.set_available(2, false);
        assert!(matches!(
            dir.lookup(&k("a")),
            Err(BaselineError::Unavailable { .. })
        ));
    }

    #[test]
    fn replicas_stay_identical() {
        let mut dir = UnanimousDirectory::new(4, 3);
        for key in ["x", "y", "z"] {
            dir.insert(&k(key), &val(key)).unwrap();
        }
        dir.delete(&k("y")).unwrap();
        for i in 0..4 {
            assert_eq!(dir.replicas[i].map.len(), 2);
            assert!(dir.replicas[i].map.contains_key(&UserKey::from("x")));
        }
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut dir = UnanimousDirectory::new(2, 4);
        dir.insert(&k("a"), &val("A")).unwrap();
        assert_eq!(
            dir.insert(&k("a"), &val("A")),
            Err(BaselineError::AlreadyExists { key: k("a") })
        );
    }
}
