//! Shared vocabulary for baseline replication strategies.

use std::error::Error;
use std::fmt;

use repdir_core::Key;

/// A uniform directory interface implemented by every baseline strategy
/// (and, via an adapter in `repdir-workload`, by the paper's algorithm), so
/// one workload driver can compare them all.
pub trait DirectoryOps {
    /// Returns the value for `key`, or `None` if absent.
    ///
    /// # Errors
    ///
    /// Strategy-specific availability or ambiguity failures.
    fn lookup(&mut self, key: &Key) -> Result<Option<repdir_core::Value>, BaselineError>;

    /// Creates an entry.
    ///
    /// # Errors
    ///
    /// [`BaselineError::AlreadyExists`] plus strategy-specific failures.
    fn insert(&mut self, key: &Key, value: &repdir_core::Value) -> Result<(), BaselineError>;

    /// Replaces an entry's value.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`] plus strategy-specific failures.
    fn update(&mut self, key: &Key, value: &repdir_core::Value) -> Result<(), BaselineError>;

    /// Removes an entry.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NotFound`] plus strategy-specific failures.
    fn delete(&mut self, key: &Key) -> Result<(), BaselineError>;

    /// Creates a batch of entries. The default is the obvious per-key loop;
    /// strategies with a cheaper bulk path (one quorum for the whole batch)
    /// override it. Per-key loop semantics are the contract: on error, every
    /// entry before the offending one is applied.
    ///
    /// # Errors
    ///
    /// As [`DirectoryOps::insert`], at the first failing entry.
    fn insert_many(&mut self, entries: &[(Key, repdir_core::Value)]) -> Result<(), BaselineError> {
        for (key, value) in entries {
            self.insert(key, value)?;
        }
        Ok(())
    }

    /// Removes a batch of entries, with the same per-key-loop contract as
    /// [`DirectoryOps::insert_many`].
    ///
    /// # Errors
    ///
    /// As [`DirectoryOps::delete`], at the first failing key.
    fn delete_many(&mut self, keys: &[Key]) -> Result<(), BaselineError> {
        for key in keys {
            self.delete(key)?;
        }
        Ok(())
    }
}

/// Failure modes across baseline strategies.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// Not enough replicas reachable for the operation.
    Unavailable {
        /// Replicas (or votes) required.
        needed: u32,
        /// Replicas (or votes) reachable.
        gathered: u32,
    },
    /// The naive per-entry-version scheme could not decide whether an entry
    /// exists (the paper's §2 delete ambiguity, Figures 1–3).
    Ambiguous {
        /// The key whose membership is undecidable.
        key: Key,
    },
    /// Optimistic concurrency lost a race (whole-file voting): the object
    /// version moved between read and write.
    Conflict,
    /// Insert of an existing key.
    AlreadyExists {
        /// The offending key.
        key: Key,
    },
    /// Update/delete of a missing key.
    NotFound {
        /// The offending key.
        key: Key,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Unavailable { needed, gathered } => {
                write!(f, "unavailable: need {needed}, reached {gathered}")
            }
            BaselineError::Ambiguous { key } => {
                write!(f, "membership of {key:?} is ambiguous")
            }
            BaselineError::Conflict => f.write_str("write conflict; retry"),
            BaselineError::AlreadyExists { key } => write!(f, "{key:?} already exists"),
            BaselineError::NotFound { key } => write!(f, "{key:?} not found"),
        }
    }
}

impl Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<BaselineError> = vec![
            BaselineError::Unavailable {
                needed: 3,
                gathered: 1,
            },
            BaselineError::Ambiguous {
                key: Key::from("b"),
            },
            BaselineError::Conflict,
            BaselineError::AlreadyExists {
                key: Key::from("a"),
            },
            BaselineError::NotFound {
                key: Key::from("c"),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BaselineError>();
    }
}
