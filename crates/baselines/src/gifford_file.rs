//! Gifford's weighted voting for **files** (§2), and a directory stored as
//! one replicated file.
//!
//! This is the baseline the paper improves on: a file suite keeps one
//! version number per representative, so storing a whole directory in a
//! file suite serializes *all* modifications behind that single version —
//! "only a single transaction could modify the directory at any time" (§2).
//! [`GiffordFileDirectory`] makes the cost measurable: every directory
//! mutation is a read-modify-write of the whole file under optimistic
//! version checking, so concurrent writers conflict even on unrelated keys.

use repdir_core::rng::SplitMix64;
use repdir_core::suite::SuiteConfig;
use repdir_core::{Key, UserKey, Value, Version};
use std::collections::BTreeMap;

use crate::common::{BaselineError, DirectoryOps};

/// One file representative: a version number and the file contents.
#[derive(Clone, Debug, Default)]
struct FileRep {
    version: Version,
    data: Vec<u8>,
    available: bool,
}

/// A replicated file suite with weighted voting (Gifford 79).
///
/// Reads gather a read quorum and return the highest-versioned copy; writes
/// stamp a write quorum with `version + 1`. Writes take an expected base
/// version and fail with [`BaselineError::Conflict`] if the file moved —
/// the representative-side locking Gifford assumes, reduced to its
/// observable effect (serialized writers) without importing a lock manager
/// into the baseline.
#[derive(Debug)]
pub struct FileSuite {
    reps: Vec<FileRep>,
    config: SuiteConfig,
    rng: SplitMix64,
}

impl FileSuite {
    /// Creates an empty file suite.
    pub fn new(config: SuiteConfig, seed: u64) -> Self {
        let reps = (0..config.member_count())
            .map(|_| FileRep {
                version: Version::ZERO,
                data: Vec::new(),
                available: true,
            })
            .collect();
        FileSuite {
            reps,
            config,
            rng: SplitMix64::new(seed),
        }
    }

    /// Injects or heals a failure at representative `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_available(&mut self, i: usize, available: bool) {
        self.reps[i].available = available;
    }

    /// Reads via a read quorum: `(version, contents)` of the newest copy.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Unavailable`] if `R` votes cannot be gathered.
    pub fn read(&mut self) -> Result<(Version, Vec<u8>), BaselineError> {
        let quorum = self.collect(self.config.read_quorum())?;
        let best = quorum
            .into_iter()
            .max_by_key(|&i| self.reps[i].version)
            .expect("quorum non-empty");
        Ok((self.reps[best].version, self.reps[best].data.clone()))
    }

    /// Writes via a write quorum, stamping `base.next()`.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Conflict`] if any quorum member has moved past
    /// `base` (a concurrent writer won); [`BaselineError::Unavailable`] if
    /// `W` votes cannot be gathered.
    pub fn write(&mut self, base: Version, data: Vec<u8>) -> Result<Version, BaselineError> {
        let quorum = self.collect(self.config.write_quorum())?;
        // Optimistic check: any member newer than `base` means a concurrent
        // write intervened (write quorums always intersect).
        if quorum.iter().any(|&i| self.reps[i].version > base) {
            return Err(BaselineError::Conflict);
        }
        let next = base.next();
        for i in quorum {
            self.reps[i].version = next;
            self.reps[i].data = data.clone();
        }
        Ok(next)
    }

    fn collect(&mut self, needed: u32) -> Result<Vec<usize>, BaselineError> {
        let mut order: Vec<usize> = (0..self.reps.len()).collect();
        self.rng.shuffle(&mut order);
        let mut chosen = Vec::new();
        let mut votes = 0;
        for i in order {
            if votes >= needed {
                break;
            }
            if self.config.votes_of(i) == 0 || !self.reps[i].available {
                continue;
            }
            votes += self.config.votes_of(i);
            chosen.push(i);
        }
        if votes < needed {
            Err(BaselineError::Unavailable {
                needed,
                gathered: votes,
            })
        } else {
            Ok(chosen)
        }
    }
}

/// A directory stored as a single Gifford-replicated file.
///
/// Every mutation deserializes the whole directory, edits it, and writes it
/// back with one version bump — correct, but with whole-object write
/// conflicts and O(directory) write amplification.
#[derive(Debug)]
pub struct GiffordFileDirectory {
    suite: FileSuite,
    /// Conflicts observed (a concurrency metric for the benchmarks).
    pub conflicts: u64,
    max_retries: u32,
}

impl GiffordFileDirectory {
    /// Creates an empty directory over a fresh file suite.
    pub fn new(config: SuiteConfig, seed: u64) -> Self {
        GiffordFileDirectory {
            suite: FileSuite::new(config, seed),
            conflicts: 0,
            max_retries: 64,
        }
    }

    /// The underlying file suite (failure injection).
    pub fn suite_mut(&mut self) -> &mut FileSuite {
        &mut self.suite
    }

    fn mutate(
        &mut self,
        f: impl Fn(&mut BTreeMap<UserKey, Value>) -> Result<(), BaselineError>,
    ) -> Result<(), BaselineError> {
        for _ in 0..self.max_retries {
            let (version, bytes) = self.suite.read()?;
            let mut map = decode_map(&bytes);
            f(&mut map)?;
            match self.suite.write(version, encode_map(&map)) {
                Ok(_) => return Ok(()),
                Err(BaselineError::Conflict) => {
                    self.conflicts += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(BaselineError::Conflict)
    }

    fn user(key: &Key) -> Result<UserKey, BaselineError> {
        key.as_user()
            .cloned()
            .ok_or(BaselineError::NotFound { key: key.clone() })
    }
}

impl DirectoryOps for GiffordFileDirectory {
    fn lookup(&mut self, key: &Key) -> Result<Option<Value>, BaselineError> {
        let user = Self::user(key)?;
        let (_, bytes) = self.suite.read()?;
        Ok(decode_map(&bytes).get(&user).cloned())
    }

    fn insert(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        let value = value.clone();
        self.mutate(move |map| {
            if map.contains_key(&user) {
                return Err(BaselineError::AlreadyExists {
                    key: Key::User(user.clone()),
                });
            }
            map.insert(user.clone(), value.clone());
            Ok(())
        })
    }

    fn update(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        let value = value.clone();
        self.mutate(move |map| match map.get_mut(&user) {
            Some(slot) => {
                *slot = value.clone();
                Ok(())
            }
            None => Err(BaselineError::NotFound {
                key: Key::User(user.clone()),
            }),
        })
    }

    fn delete(&mut self, key: &Key) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        self.mutate(move |map| {
            if map.remove(&user).is_none() {
                return Err(BaselineError::NotFound {
                    key: Key::User(user.clone()),
                });
            }
            Ok(())
        })
    }
}

fn encode_map(map: &BTreeMap<UserKey, Value>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend((map.len() as u32).to_le_bytes());
    for (k, v) in map {
        out.extend((k.len() as u32).to_le_bytes());
        out.extend(k.as_bytes());
        out.extend((v.len() as u32).to_le_bytes());
        out.extend(v.as_bytes());
    }
    out
}

fn decode_map(bytes: &[u8]) -> BTreeMap<UserKey, Value> {
    let mut map = BTreeMap::new();
    if bytes.len() < 4 {
        return map;
    }
    let mut at = 4;
    let n = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    for _ in 0..n {
        let Some(klen) = read_len(bytes, at) else {
            break;
        };
        at += 4;
        let Some(kbytes) = bytes.get(at..at + klen) else {
            break;
        };
        at += klen;
        let Some(vlen) = read_len(bytes, at) else {
            break;
        };
        at += 4;
        let Some(vbytes) = bytes.get(at..at + vlen) else {
            break;
        };
        at += vlen;
        map.insert(UserKey::from(kbytes), Value::from(vbytes));
    }
    map
}

fn read_len(bytes: &[u8], at: usize) -> Option<usize> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }
    fn cfg_322() -> SuiteConfig {
        SuiteConfig::symmetric(3, 2, 2).unwrap()
    }

    #[test]
    fn file_suite_read_write_round_trip() {
        let mut fs = FileSuite::new(cfg_322(), 1);
        let (v0, data) = fs.read().unwrap();
        assert_eq!(v0, Version::ZERO);
        assert!(data.is_empty());
        let v1 = fs.write(v0, b"hello".to_vec()).unwrap();
        assert_eq!(v1, Version::new(1));
        // Any read quorum intersects the write quorum.
        for _ in 0..10 {
            let (v, data) = fs.read().unwrap();
            assert_eq!(v, v1);
            assert_eq!(data, b"hello");
        }
    }

    #[test]
    fn stale_write_conflicts() {
        let mut fs = FileSuite::new(cfg_322(), 2);
        let (v0, _) = fs.read().unwrap();
        fs.write(v0, b"first".to_vec()).unwrap();
        // Writing against the stale base must fail.
        assert_eq!(
            fs.write(v0, b"second".to_vec()),
            Err(BaselineError::Conflict)
        );
    }

    #[test]
    fn availability_thresholds() {
        let mut fs = FileSuite::new(cfg_322(), 3);
        fs.set_available(0, false);
        // One down: 2 votes still reachable for R=W=2.
        let (v, _) = fs.read().unwrap();
        fs.write(v, b"x".to_vec()).unwrap();
        fs.set_available(1, false);
        assert_eq!(
            fs.read(),
            Err(BaselineError::Unavailable {
                needed: 2,
                gathered: 1
            })
        );
    }

    #[test]
    fn directory_crud_over_file_suite() {
        let mut dir = GiffordFileDirectory::new(cfg_322(), 4);
        assert_eq!(dir.lookup(&k("a")).unwrap(), None);
        dir.insert(&k("a"), &val("A")).unwrap();
        dir.insert(&k("b"), &val("B")).unwrap();
        assert_eq!(dir.lookup(&k("a")).unwrap(), Some(val("A")));
        assert_eq!(
            dir.insert(&k("a"), &val("A2")),
            Err(BaselineError::AlreadyExists { key: k("a") })
        );
        dir.update(&k("a"), &val("A2")).unwrap();
        assert_eq!(dir.lookup(&k("a")).unwrap(), Some(val("A2")));
        dir.delete(&k("a")).unwrap();
        assert_eq!(dir.lookup(&k("a")).unwrap(), None);
        assert_eq!(
            dir.delete(&k("a")),
            Err(BaselineError::NotFound { key: k("a") })
        );
        assert_eq!(dir.lookup(&k("b")).unwrap(), Some(val("B")));
    }

    #[test]
    fn delete_then_lookup_is_unambiguous_here() {
        // The file baseline does not suffer the §2 ambiguity — it pays with
        // whole-object writes instead.
        let mut dir = GiffordFileDirectory::new(cfg_322(), 5);
        dir.insert(&k("b"), &val("B")).unwrap();
        dir.delete(&k("b")).unwrap();
        for _ in 0..10 {
            assert_eq!(dir.lookup(&k("b")).unwrap(), None);
        }
    }

    #[test]
    fn sentinel_keys_rejected() {
        let mut dir = GiffordFileDirectory::new(cfg_322(), 6);
        assert!(dir.lookup(&Key::Low).is_err());
        assert!(dir.insert(&Key::High, &val("x")).is_err());
    }

    #[test]
    fn map_codec_round_trips() {
        let mut map = BTreeMap::new();
        map.insert(UserKey::from("k1"), Value::from("v1"));
        map.insert(UserKey::from(""), Value::empty());
        map.insert(UserKey::from("k3"), Value::from("vvv3"));
        assert_eq!(decode_map(&encode_map(&map)), map);
        assert!(decode_map(&[]).is_empty());
        assert!(decode_map(&[1, 0]).is_empty());
    }
}
