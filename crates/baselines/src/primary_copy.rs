//! The primary/secondary-copy strategy (§2): all updates go to the primary,
//! which relays them to secondaries; inquiries may read stale secondaries.
//!
//! "Because responses to inquiries might not reflect recent updates, it is
//! difficult for a primary/secondary copy replication strategy to duplicate
//! the semantics of a non-replicated object" — the tests demonstrate that
//! staleness, and the lost-update hazard on failover.

use std::collections::{BTreeMap, VecDeque};

use repdir_core::rng::SplitMix64;
use repdir_core::{Key, UserKey, Value};

use crate::common::{BaselineError, DirectoryOps};

#[derive(Clone, Debug, PartialEq, Eq)]
enum Op {
    Put(UserKey, Value),
    Del(UserKey),
}

#[derive(Clone, Debug, Default)]
struct Copy {
    map: BTreeMap<UserKey, Value>,
    available: bool,
}

/// A directory with one primary and `n - 1` secondaries, with asynchronous
/// update propagation.
///
/// Updates apply at the primary and enqueue for each secondary;
/// [`propagate`](PrimaryCopyDirectory::propagate) drains a bounded number
/// of queued updates (modelling relay lag). Reads go to a random live copy
/// and may be stale. [`fail_primary`](PrimaryCopyDirectory::fail_primary)
/// promotes the next live secondary; updates still queued for it are lost —
/// the classic primary-copy hazard that systems like LOCUS mitigate with a
/// synchronization site (§2).
#[derive(Debug)]
pub struct PrimaryCopyDirectory {
    copies: Vec<Copy>,
    /// Per-secondary queue of not-yet-relayed operations.
    lag: Vec<VecDeque<Op>>,
    primary: usize,
    rng: SplitMix64,
}

impl PrimaryCopyDirectory {
    /// Creates a directory with copy 0 as primary.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        PrimaryCopyDirectory {
            copies: vec![
                Copy {
                    map: BTreeMap::new(),
                    available: true,
                };
                n
            ],
            lag: vec![VecDeque::new(); n],
            primary: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The current primary's index.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// Relays up to `budget` queued operations to each live secondary.
    pub fn propagate(&mut self, budget: usize) {
        for i in 0..self.copies.len() {
            if i == self.primary || !self.copies[i].available {
                continue;
            }
            for _ in 0..budget {
                match self.lag[i].pop_front() {
                    Some(Op::Put(k, v)) => {
                        self.copies[i].map.insert(k, v);
                    }
                    Some(Op::Del(k)) => {
                        self.copies[i].map.remove(&k);
                    }
                    None => break,
                }
            }
        }
    }

    /// Relays everything (a quiescent point).
    pub fn propagate_all(&mut self) {
        self.propagate(usize::MAX);
    }

    /// Kills the primary and promotes the next live copy. Operations queued
    /// for the new primary but never relayed are **lost** (returned for
    /// inspection).
    ///
    /// # Errors
    ///
    /// [`BaselineError::Unavailable`] if no live copy remains.
    pub fn fail_primary(&mut self) -> Result<Vec<usize>, BaselineError> {
        self.copies[self.primary].available = false;
        let n = self.copies.len();
        let new_primary = (0..n)
            .map(|d| (self.primary + 1 + d) % n)
            .find(|&i| self.copies[i].available)
            .ok_or(BaselineError::Unavailable {
                needed: 1,
                gathered: 0,
            })?;
        let lost = self.lag[new_primary].len();
        self.lag[new_primary].clear();
        self.primary = new_primary;
        // Secondaries now follow the new primary; their queues of old
        // primary ops are stale history but harmless to keep draining.
        Ok(vec![lost])
    }

    /// Number of operations queued toward secondary `i` (staleness metric).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lag_of(&self, i: usize) -> usize {
        self.lag[i].len()
    }

    fn apply_at_primary(&mut self, op: Op) -> Result<(), BaselineError> {
        if !self.copies[self.primary].available {
            return Err(BaselineError::Unavailable {
                needed: 1,
                gathered: 0,
            });
        }
        let primary = self.primary;
        match &op {
            Op::Put(k, v) => {
                self.copies[primary].map.insert(k.clone(), v.clone());
            }
            Op::Del(k) => {
                self.copies[primary].map.remove(k);
            }
        }
        for (i, q) in self.lag.iter_mut().enumerate() {
            if i != primary {
                q.push_back(op.clone());
            }
        }
        Ok(())
    }

    fn user(key: &Key) -> Result<UserKey, BaselineError> {
        key.as_user()
            .cloned()
            .ok_or(BaselineError::NotFound { key: key.clone() })
    }
}

impl DirectoryOps for PrimaryCopyDirectory {
    /// Reads from a random live copy — possibly a stale secondary.
    fn lookup(&mut self, key: &Key) -> Result<Option<Value>, BaselineError> {
        let user = Self::user(key)?;
        let n = self.copies.len();
        let start = self.rng.next_below(n as u64) as usize;
        let i = (0..n)
            .map(|d| (start + d) % n)
            .find(|&i| self.copies[i].available)
            .ok_or(BaselineError::Unavailable {
                needed: 1,
                gathered: 0,
            })?;
        Ok(self.copies[i].map.get(&user).cloned())
    }

    fn insert(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        if self.copies[self.primary].map.contains_key(&user) {
            return Err(BaselineError::AlreadyExists { key: key.clone() });
        }
        self.apply_at_primary(Op::Put(user, value.clone()))
    }

    fn update(&mut self, key: &Key, value: &Value) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        if !self.copies[self.primary].map.contains_key(&user) {
            return Err(BaselineError::NotFound { key: key.clone() });
        }
        self.apply_at_primary(Op::Put(user, value.clone()))
    }

    fn delete(&mut self, key: &Key) -> Result<(), BaselineError> {
        let user = Self::user(key)?;
        if !self.copies[self.primary].map.contains_key(&user) {
            return Err(BaselineError::NotFound { key: key.clone() });
        }
        self.apply_at_primary(Op::Del(user))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn crud_with_full_propagation() {
        let mut dir = PrimaryCopyDirectory::new(3, 1);
        dir.insert(&k("a"), &val("A")).unwrap();
        dir.propagate_all();
        for _ in 0..10 {
            assert_eq!(dir.lookup(&k("a")).unwrap(), Some(val("A")));
        }
        dir.update(&k("a"), &val("A2")).unwrap();
        dir.delete(&k("a")).unwrap();
        dir.propagate_all();
        assert_eq!(dir.lookup(&k("a")).unwrap(), None);
    }

    #[test]
    fn secondary_reads_can_be_stale() {
        let mut dir = PrimaryCopyDirectory::new(3, 2);
        dir.insert(&k("a"), &val("A")).unwrap();
        // No propagation yet: some reads hit secondaries and miss "a".
        let mut stale = 0;
        let mut fresh = 0;
        for _ in 0..100 {
            match dir.lookup(&k("a")).unwrap() {
                Some(_) => fresh += 1,
                None => stale += 1,
            }
        }
        assert!(stale > 0, "secondaries should serve stale reads");
        assert!(fresh > 0, "the primary should serve fresh reads");
        assert_eq!(dir.lag_of(1), 1);
        assert_eq!(dir.lag_of(2), 1);
        dir.propagate_all();
        assert_eq!(dir.lag_of(1), 0);
        for _ in 0..20 {
            assert_eq!(dir.lookup(&k("a")).unwrap(), Some(val("A")));
        }
    }

    #[test]
    fn bounded_propagation_drains_incrementally() {
        let mut dir = PrimaryCopyDirectory::new(2, 3);
        for i in 0..5u32 {
            dir.insert(&k(&format!("k{i}")), &val("v")).unwrap();
        }
        assert_eq!(dir.lag_of(1), 5);
        dir.propagate(2);
        assert_eq!(dir.lag_of(1), 3);
        dir.propagate(2);
        dir.propagate(2);
        assert_eq!(dir.lag_of(1), 0);
    }

    #[test]
    fn failover_loses_unpropagated_updates() {
        let mut dir = PrimaryCopyDirectory::new(2, 4);
        dir.insert(&k("kept"), &val("K")).unwrap();
        dir.propagate_all();
        dir.insert(&k("lost"), &val("L")).unwrap();
        // Primary dies before relaying "lost".
        dir.fail_primary().unwrap();
        assert_eq!(dir.primary(), 1);
        assert_eq!(dir.lookup(&k("kept")).unwrap(), Some(val("K")));
        assert_eq!(
            dir.lookup(&k("lost")).unwrap(),
            None,
            "unpropagated update vanished — the primary-copy hazard"
        );
        // The new primary accepts writes.
        dir.insert(&k("new"), &val("N")).unwrap();
        assert_eq!(dir.lookup(&k("new")).unwrap(), Some(val("N")));
    }

    #[test]
    fn total_failure_reported() {
        let mut dir = PrimaryCopyDirectory::new(1, 5);
        assert!(dir.fail_primary().is_err());
        assert!(matches!(
            dir.lookup(&k("a")),
            Err(BaselineError::Unavailable { .. })
        ));
    }
}
