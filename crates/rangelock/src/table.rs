//! The range-lock table: blocking acquisition, two-phase release, deadlock
//! detection.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use repdir_core::sync::{Condvar, Mutex};
use repdir_obs::{Counter, Histogram};

use crate::range::{compatible, KeyRange, LockMode};

/// Identifies a lock-holding transaction.
///
/// `repdir-txn` assigns these; the lock table only needs identity. Ids are
/// also used as deadlock-victim tie-breakers (the *youngest* — largest id —
/// transaction in a cycle is chosen, a wound-wait-style policy that cannot
/// starve old transactions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Why a lock could not be granted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockError {
    /// The deadline elapsed while waiting for conflicting holders.
    Timeout,
    /// Granting the request would close a waits-for cycle, and the requester
    /// was chosen as the victim.
    Deadlock,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout => f.write_str("lock wait timed out"),
            LockError::Deadlock => f.write_str("deadlock victim"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Clone, Debug)]
struct Granted {
    owner: TxnId,
    mode: LockMode,
    range: KeyRange,
}

#[derive(Clone, Debug)]
struct Waiting {
    mode: LockMode,
    range: KeyRange,
}

#[derive(Default)]
struct State {
    granted: Vec<Granted>,
    waiting: HashMap<TxnId, Waiting>,
    stats: LockStats,
}

/// Cumulative counters for observability and the lock benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Locks granted (including immediately compatible ones).
    pub granted: u64,
    /// Acquisitions that had to wait at least once.
    pub waited: u64,
    /// Acquisitions refused with [`LockError::Deadlock`].
    pub deadlocks: u64,
    /// Acquisitions refused with [`LockError::Timeout`].
    pub timeouts: u64,
}

/// Lock-table counters mirrored into the process-wide obs registry
/// (`lock.*`). [`LockStats`] stays the per-table exact record; these
/// aggregate across every table in the process.
struct LockObs {
    granted: Counter,
    waited: Counter,
    deadlocks: Counter,
    timeouts: Counter,
    wait_us: Histogram,
}

impl LockObs {
    fn new() -> Self {
        let g = repdir_obs::global();
        LockObs {
            granted: g.counter("lock.granted"),
            waited: g.counter("lock.waited"),
            deadlocks: g.counter("lock.deadlocks"),
            timeouts: g.counter("lock.timeouts"),
            wait_us: g.histogram("lock.wait_us"),
        }
    }
}

/// How often a waiter attached to a [`DeadlockDomain`] wakes to re-check the
/// shared graph. A cross-table victim decision cannot notify another table's
/// condvar, so blocked waiters poll at this cadence while a domain is set.
const DOMAIN_POLL: Duration = Duration::from_millis(5);

/// A waits-for graph shared by several [`RangeLockTable`]s.
///
/// Each table's own [`detect_deadlock`] only sees cycles through its own
/// locks. When one transaction can block at *several* tables at once — a
/// directory suite fanning a write wave out to every representative — two
/// transactions can deadlock with each edge at a different table, invisible
/// to every per-table graph. A domain aggregates the wait edges of every
/// joined table ([`RangeLockTable::join_domain`]); a waiter that closes a
/// cross-table cycle *wounds* the youngest participant, which observes the
/// wound at its next poll and fails fast with [`LockError::Deadlock`]
/// instead of burning its full lock timeout.
///
/// Edges are keyed by `(transaction, table)` because a fan-out transaction
/// legitimately waits at several tables simultaneously. A wound outlives its
/// first observation (all of the victim's in-flight waiters must abort, not
/// just one) and is cleared when the victim's locks are released.
#[derive(Default)]
pub struct DeadlockDomain {
    state: Mutex<DomainState>,
}

#[derive(Default)]
struct DomainState {
    /// (waiting txn, table id) -> holders blocking it at that table.
    edges: HashMap<(TxnId, u64), Vec<TxnId>>,
    /// Chosen victims; each aborts at its next wound check.
    wounded: HashSet<TxnId>,
}

impl DeadlockDomain {
    /// Creates an empty domain; share it via `Arc` and
    /// [`RangeLockTable::join_domain`].
    pub fn new() -> Self {
        Self::default()
    }

    fn set_waits(&self, table: u64, owner: TxnId, holders: Vec<TxnId>) {
        self.state.lock().edges.insert((owner, table), holders);
    }

    fn clear_waits(&self, table: u64, owner: TxnId) {
        self.state.lock().edges.remove(&(owner, table));
    }

    /// Checks whether `owner` must abort: either it was already wounded, or
    /// its current waits close a cycle in which it is the youngest
    /// participant. A cycle whose youngest participant is someone else
    /// wounds that transaction and lets `owner` keep waiting (the victim's
    /// abort releases the blocking locks).
    fn must_abort(&self, owner: TxnId) -> bool {
        let mut st = self.state.lock();
        if st.wounded.contains(&owner) {
            return true;
        }
        // Union adjacency across all tables.
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        for ((waiter, _), holders) in &st.edges {
            adj.entry(*waiter)
                .or_default()
                .extend(holders.iter().copied());
        }
        let edges = |t: TxnId| adj.get(&t).cloned().unwrap_or_default();
        let mut stack = vec![(owner, edges(owner))];
        let mut path = vec![owner];
        while let Some((_, succs)) = stack.last_mut() {
            match succs.pop() {
                Some(next) if next == owner => {
                    // Cycle found; `path` holds every participant.
                    let victim = path.iter().copied().max().unwrap_or(owner);
                    if victim == owner {
                        return true;
                    }
                    st.wounded.insert(victim);
                    repdir_obs::global().counter("lock.wounds").inc();
                    return false;
                }
                Some(next) => {
                    if !path.contains(&next) {
                        path.push(next);
                        stack.push((next, edges(next)));
                    }
                }
                None => {
                    stack.pop();
                    path.pop();
                }
            }
        }
        false
    }

    /// Drops every edge and wound belonging to `owner` — called when its
    /// locks are released (commit or abort ends the transaction's waits).
    fn forget(&self, owner: TxnId) {
        let mut st = self.state.lock();
        st.edges.retain(|(waiter, _), _| *waiter != owner);
        st.wounded.remove(&owner);
    }

    /// Drops every edge registered by `table` — called on table reset
    /// (representative crash: its waiters are woken and re-evaluate).
    fn drop_table(&self, table: u64) {
        self.state.lock().edges.retain(|(_, t), _| *t != table);
    }
}

impl fmt::Debug for DeadlockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("DeadlockDomain")
            .field("edges", &st.edges.len())
            .field("wounded", &st.wounded.len())
            .finish()
    }
}

/// A table of range locks over one directory representative, implementing
/// the paper's Figure 7 compatibility with blocking waits, deadlock
/// detection, and all-at-once release for strict two-phase locking.
///
/// "As specified, the lock compatibility relation is sufficiently strong to
/// guarantee that the actions of transactions operating on a directory
/// representative are serializable, providing that two phase locking is
/// used" (§3.1). The table enforces compatibility; `repdir-txn` enforces the
/// two phases by releasing only at commit/abort via
/// [`release_all`](RangeLockTable::release_all).
///
/// # Examples
///
/// ```
/// use repdir_core::Key;
/// use repdir_rangelock::{KeyRange, LockMode, RangeLockTable, TxnId};
/// use std::time::Duration;
///
/// let table = RangeLockTable::new();
/// let t1 = TxnId(1);
/// table.acquire(t1, LockMode::Modify, KeyRange::point(Key::from("k")),
///               Duration::from_millis(10))?;
/// // A disjoint modify by another transaction is compatible.
/// table.acquire(TxnId(2), LockMode::Modify, KeyRange::point(Key::from("z")),
///               Duration::from_millis(10))?;
/// table.release_all(t1);
/// # Ok::<(), repdir_rangelock::LockError>(())
/// ```
pub struct RangeLockTable {
    /// Distinguishes this table's edges inside a [`DeadlockDomain`].
    id: u64,
    state: Mutex<State>,
    released: Condvar,
    domain: Mutex<Option<Arc<DeadlockDomain>>>,
    obs: LockObs,
}

static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(0);

impl Default for RangeLockTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeLockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        RangeLockTable {
            id: NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(State::default()),
            released: Condvar::new(),
            domain: Mutex::new(None),
            obs: LockObs::new(),
        }
    }

    /// Registers this table in a shared [`DeadlockDomain`], enabling
    /// detection of waits-for cycles that span several tables (one edge per
    /// representative). Replaces any previously joined domain.
    pub fn join_domain(&self, domain: &Arc<DeadlockDomain>) {
        *self.domain.lock() = Some(Arc::clone(domain));
    }

    /// Attempts to acquire without blocking. On conflict, returns the
    /// holders that block the request.
    ///
    /// # Errors
    ///
    /// Returns the conflicting transaction ids (deduplicated) if the lock
    /// cannot be granted immediately.
    pub fn try_acquire(
        &self,
        owner: TxnId,
        mode: LockMode,
        range: KeyRange,
    ) -> Result<(), Vec<TxnId>> {
        let mut st = self.state.lock();
        let conflicts = conflicts_of(&st.granted, owner, mode, &range);
        if conflicts.is_empty() {
            st.granted.push(Granted { owner, mode, range });
            st.stats.granted += 1;
            self.obs.granted.inc();
            Ok(())
        } else {
            Err(conflicts)
        }
    }

    /// Acquires a lock, blocking up to `timeout` for conflicting holders to
    /// release.
    ///
    /// A transaction's own locks never conflict with its new requests
    /// (re-entrancy), so lock "upgrades" (`Lookup` then `Modify` over the
    /// same range) always succeed locally.
    ///
    /// # Errors
    ///
    /// * [`LockError::Deadlock`] if the request would close a waits-for
    ///   cycle — within this table, or across every table of a joined
    ///   [`DeadlockDomain`] — in which this transaction is the youngest
    ///   participant, or if a cycle check at another table already chose
    ///   this transaction as the victim.
    /// * [`LockError::Timeout`] if the deadline passes first (also breaks
    ///   cross-representative deadlocks when no domain is joined).
    pub fn acquire(
        &self,
        owner: TxnId,
        mode: LockMode,
        range: KeyRange,
        timeout: Duration,
    ) -> Result<(), LockError> {
        // Lock order everywhere is table state, then domain state.
        let domain = self.domain.lock().clone();
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        let mut waited = false;
        loop {
            let conflicts = conflicts_of(&st.granted, owner, mode, &range);
            if conflicts.is_empty() {
                st.waiting.remove(&owner);
                if let Some(d) = &domain {
                    d.clear_waits(self.id, owner);
                }
                st.granted.push(Granted { owner, mode, range });
                st.stats.granted += 1;
                self.obs.granted.inc();
                if waited {
                    st.stats.waited += 1;
                    self.obs.waited.inc();
                    if repdir_obs::global().timing_armed() {
                        // `deadline` was `entry + timeout`, so this is the
                        // total time spent blocked on conflicting holders.
                        self.obs.wait_us.record((deadline - timeout).elapsed());
                    }
                }
                return Ok(());
            }
            st.waiting.insert(
                owner,
                Waiting {
                    mode,
                    range: range.clone(),
                },
            );
            if let Some(victim) = detect_deadlock(&st, owner) {
                if victim == owner {
                    st.waiting.remove(&owner);
                    if let Some(d) = &domain {
                        d.clear_waits(self.id, owner);
                    }
                    st.stats.deadlocks += 1;
                    self.obs.deadlocks.inc();
                    return Err(LockError::Deadlock);
                }
                // Another participant is younger; it will be refused when it
                // re-checks. Keep waiting (its abort releases our blocker).
            }
            if let Some(d) = &domain {
                d.set_waits(self.id, owner, conflicts);
                if d.must_abort(owner) {
                    st.waiting.remove(&owner);
                    d.clear_waits(self.id, owner);
                    st.stats.deadlocks += 1;
                    self.obs.deadlocks.inc();
                    return Err(LockError::Deadlock);
                }
            }
            waited = true;
            // A cross-table wound cannot notify this table's condvar, so
            // domain members wake periodically to re-check the shared graph.
            let wake = match &domain {
                Some(_) => std::cmp::min(deadline, Instant::now() + DOMAIN_POLL),
                None => deadline,
            };
            if self.released.wait_until(&mut st, wake).timed_out() && Instant::now() >= deadline {
                st.waiting.remove(&owner);
                if let Some(d) = &domain {
                    d.clear_waits(self.id, owner);
                }
                st.stats.timeouts += 1;
                self.obs.timeouts.inc();
                return Err(LockError::Timeout);
            }
        }
    }

    /// Releases every lock held by `owner` and wakes all waiters — the
    /// shrinking phase of strict two-phase locking. Idempotent.
    pub fn release_all(&self, owner: TxnId) {
        let domain = self.domain.lock().clone();
        let mut st = self.state.lock();
        st.granted.retain(|g| g.owner != owner);
        st.waiting.remove(&owner);
        if let Some(d) = &domain {
            d.forget(owner);
        }
        self.released.notify_all();
    }

    /// Discards every granted lock and waiter registration, waking all
    /// blocked acquirers (they re-evaluate and typically proceed).
    ///
    /// Models a representative crash: locks are volatile state and do not
    /// survive restarts. Callers are responsible for ensuring the protected
    /// state was recovered first.
    pub fn reset(&self) {
        let domain = self.domain.lock().clone();
        let mut st = self.state.lock();
        st.granted.clear();
        st.waiting.clear();
        if let Some(d) = &domain {
            d.drop_table(self.id);
        }
        self.released.notify_all();
    }

    /// Number of locks currently granted.
    pub fn granted_count(&self) -> usize {
        self.state.lock().granted.len()
    }

    /// Ids of transactions currently holding at least one lock.
    pub fn holders(&self) -> Vec<TxnId> {
        let st = self.state.lock();
        let mut ids: Vec<TxnId> = st.granted.iter().map(|g| g.owner).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Cumulative counters since creation.
    pub fn stats(&self) -> LockStats {
        self.state.lock().stats
    }

    /// Verifies no two granted locks from different owners are incompatible.
    /// Test/debug aid; the table upholds this by construction.
    pub fn check_invariants(&self) -> Result<(), String> {
        let st = self.state.lock();
        for (i, a) in st.granted.iter().enumerate() {
            for b in &st.granted[i + 1..] {
                if a.owner != b.owner && !compatible(a.mode, &a.range, b.mode, &b.range) {
                    return Err(format!("incompatible grants coexist: {a:?} and {b:?}"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for RangeLockTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("RangeLockTable")
            .field("granted", &st.granted.len())
            .field("waiting", &st.waiting.len())
            .field("stats", &st.stats)
            .finish()
    }
}

/// Owners whose granted locks are incompatible with the request
/// (deduplicated; the requester's own locks never conflict).
fn conflicts_of(granted: &[Granted], owner: TxnId, mode: LockMode, range: &KeyRange) -> Vec<TxnId> {
    let mut out: Vec<TxnId> = granted
        .iter()
        .filter(|g| g.owner != owner && !compatible(g.mode, &g.range, mode, range))
        .map(|g| g.owner)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Searches the waits-for graph for a cycle through `start`. Returns the
/// chosen victim (the youngest transaction in the first cycle found), or
/// `None` if `start` is not part of a cycle.
fn detect_deadlock(st: &State, start: TxnId) -> Option<TxnId> {
    // Edges: waiter -> holders of conflicting granted locks.
    let edges = |t: TxnId| -> Vec<TxnId> {
        match st.waiting.get(&t) {
            Some(w) => conflicts_of(&st.granted, t, w.mode, &w.range),
            None => Vec::new(),
        }
    };
    // Depth-first search recording the path; cycles through `start` only
    // (each blocked thread checks its own cycle, so all cycles are found).
    let mut stack = vec![(start, edges(start))];
    let mut path = vec![start];
    while let Some((_, succs)) = stack.last_mut() {
        match succs.pop() {
            Some(next) => {
                if next == start {
                    // Found a cycle: path contains every participant.
                    return path.iter().copied().max();
                }
                if !path.contains(&next) {
                    path.push(next);
                    stack.push((next, edges(next)));
                }
            }
            None => {
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use repdir_core::Key;
    use std::sync::Arc;
    use std::thread;

    fn r(a: &str, b: &str) -> KeyRange {
        KeyRange::new(Key::from(a), Key::from(b))
    }
    const SHORT: Duration = Duration::from_millis(25);
    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn compatible_locks_coexist() {
        let t = RangeLockTable::new();
        t.acquire(TxnId(1), LockMode::Lookup, r("a", "m"), SHORT)
            .unwrap();
        t.acquire(TxnId(2), LockMode::Lookup, r("g", "z"), SHORT)
            .unwrap();
        t.acquire(TxnId(3), LockMode::Modify, r("zz", "zzz"), SHORT)
            .unwrap();
        assert_eq!(t.granted_count(), 3);
        t.check_invariants().unwrap();
        assert_eq!(t.holders(), vec![TxnId(1), TxnId(2), TxnId(3)]);
    }

    #[test]
    fn conflicting_modify_times_out() {
        let t = RangeLockTable::new();
        t.acquire(TxnId(1), LockMode::Modify, r("a", "m"), SHORT)
            .unwrap();
        let e = t
            .acquire(TxnId(2), LockMode::Modify, r("g", "z"), SHORT)
            .unwrap_err();
        assert_eq!(e, LockError::Timeout);
        let e = t
            .acquire(TxnId(2), LockMode::Lookup, r("g", "z"), SHORT)
            .unwrap_err();
        assert_eq!(e, LockError::Timeout);
        assert_eq!(t.stats().timeouts, 2);
    }

    /// Two transactions deadlock with one edge at each of two tables — the
    /// shape a suite write wave produces across representatives, invisible
    /// to either per-table graph. The shared domain wounds the younger
    /// transaction well before the lock timeout, and after its abort the
    /// survivor's blocked acquire completes.
    #[test]
    fn domain_breaks_cross_table_deadlock() {
        let t1 = Arc::new(RangeLockTable::new());
        let t2 = Arc::new(RangeLockTable::new());
        let domain = Arc::new(DeadlockDomain::new());
        t1.join_domain(&domain);
        t2.join_domain(&domain);

        // txn1 holds the range at table 1, txn2 holds it at table 2.
        t1.acquire(TxnId(1), LockMode::Modify, r("a", "m"), LONG)
            .unwrap();
        t2.acquire(TxnId(2), LockMode::Modify, r("a", "m"), LONG)
            .unwrap();

        // txn2 blocks at table 1 (first cross-table edge)...
        let younger = thread::spawn({
            let t1 = Arc::clone(&t1);
            move || t1.acquire(TxnId(2), LockMode::Modify, r("a", "m"), LONG)
        });
        while t1.state.lock().waiting.is_empty() {
            thread::sleep(Duration::from_millis(1));
        }
        // ...then txn1 blocks at table 2, closing the cycle.
        let older = thread::spawn({
            let t2 = Arc::clone(&t2);
            move || t2.acquire(TxnId(1), LockMode::Modify, r("a", "m"), LONG)
        });

        // The younger transaction is wounded promptly (well under LONG).
        let start = Instant::now();
        assert_eq!(younger.join().unwrap(), Err(LockError::Deadlock));
        assert!(start.elapsed() < Duration::from_secs(1));

        // Its abort releases table 2; the survivor then completes.
        t1.release_all(TxnId(2));
        t2.release_all(TxnId(2));
        assert_eq!(older.join().unwrap(), Ok(()));
        t1.check_invariants().unwrap();
        t2.check_invariants().unwrap();
    }

    /// A wound persists until release: every in-flight waiter of the victim
    /// aborts, and a fresh transaction id is unaffected.
    #[test]
    fn wound_covers_all_waiters_and_clears_on_release() {
        let t1 = Arc::new(RangeLockTable::new());
        let t2 = Arc::new(RangeLockTable::new());
        let domain = Arc::new(DeadlockDomain::new());
        t1.join_domain(&domain);
        t2.join_domain(&domain);

        t1.acquire(TxnId(1), LockMode::Modify, r("a", "m"), LONG)
            .unwrap();
        t2.acquire(TxnId(2), LockMode::Modify, r("a", "m"), LONG)
            .unwrap();
        // txn2 waits at table 1; txn1 closes the cycle at table 2 from a
        // second thread. txn2 is wounded; while still wounded, its second
        // acquire (same transaction, new thread) must also fail fast.
        let w1 = thread::spawn({
            let t1 = Arc::clone(&t1);
            move || t1.acquire(TxnId(2), LockMode::Modify, r("a", "m"), LONG)
        });
        while t1.state.lock().waiting.is_empty() {
            thread::sleep(Duration::from_millis(1));
        }
        let older = thread::spawn({
            let t2 = Arc::clone(&t2);
            move || t2.acquire(TxnId(1), LockMode::Modify, r("a", "m"), LONG)
        });
        assert_eq!(w1.join().unwrap(), Err(LockError::Deadlock));
        // Still wounded until its locks are released: a further conflicting
        // wait by txn2 aborts at its first domain check.
        let e = t1.acquire(TxnId(2), LockMode::Modify, r("a", "m"), LONG);
        assert_eq!(e, Err(LockError::Deadlock));

        t1.release_all(TxnId(2));
        t2.release_all(TxnId(2));
        assert_eq!(older.join().unwrap(), Ok(()));
        t1.release_all(TxnId(1));
        t2.release_all(TxnId(1));

        // The id is clean again once released: no stale wound.
        t1.acquire(TxnId(2), LockMode::Modify, r("x", "z"), SHORT)
            .unwrap();
        t1.release_all(TxnId(2));
    }

    #[test]
    fn try_acquire_reports_conflicting_holders() {
        let t = RangeLockTable::new();
        t.try_acquire(TxnId(1), LockMode::Modify, r("a", "c"))
            .unwrap();
        t.try_acquire(TxnId(2), LockMode::Modify, r("d", "f"))
            .unwrap();
        let holders = t
            .try_acquire(TxnId(3), LockMode::Lookup, r("b", "e"))
            .unwrap_err();
        assert_eq!(holders, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn reentrant_and_upgrade_by_same_owner() {
        let t = RangeLockTable::new();
        let me = TxnId(9);
        t.acquire(me, LockMode::Lookup, r("a", "z"), SHORT).unwrap();
        // Upgrade over the same range.
        t.acquire(me, LockMode::Modify, r("m", "m"), SHORT).unwrap();
        t.acquire(me, LockMode::Modify, r("a", "z"), SHORT).unwrap();
        assert_eq!(t.granted_count(), 3);
        t.release_all(me);
        assert_eq!(t.granted_count(), 0);
    }

    #[test]
    fn release_wakes_waiter() {
        let t = Arc::new(RangeLockTable::new());
        t.acquire(TxnId(1), LockMode::Modify, r("a", "z"), SHORT)
            .unwrap();
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || t2.acquire(TxnId(2), LockMode::Modify, r("m", "m"), LONG));
        thread::sleep(Duration::from_millis(20));
        t.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(t.stats().waited, 1);
        assert_eq!(t.holders(), vec![TxnId(2)]);
    }

    #[test]
    fn deadlock_detected_and_youngest_aborted() {
        // T1 holds [a..b], T2 holds [y..z]; then each requests the other's
        // range. Whichever closes the cycle must see Deadlock, and the
        // victim is the younger (larger-id) transaction, T2.
        let t = Arc::new(RangeLockTable::new());
        t.acquire(TxnId(1), LockMode::Modify, r("a", "b"), LONG)
            .unwrap();
        t.acquire(TxnId(2), LockMode::Modify, r("y", "z"), LONG)
            .unwrap();

        let t1 = Arc::clone(&t);
        let older =
            thread::spawn(move || t1.acquire(TxnId(1), LockMode::Modify, r("y", "z"), LONG));
        thread::sleep(Duration::from_millis(30));
        let res2 = t.acquire(TxnId(2), LockMode::Modify, r("a", "b"), LONG);
        assert_eq!(res2, Err(LockError::Deadlock));
        assert_eq!(t.stats().deadlocks, 1);
        // Victim aborts: its transaction manager calls release_all, letting
        // the older transaction proceed.
        t.release_all(TxnId(2));
        older.join().unwrap().unwrap();
    }

    #[test]
    fn deadlock_cycle_of_three() {
        // T1 -> T2 -> T3 -> T1 around three ranges.
        let t = Arc::new(RangeLockTable::new());
        t.acquire(TxnId(1), LockMode::Modify, r("a", "a"), LONG)
            .unwrap();
        t.acquire(TxnId(2), LockMode::Modify, r("b", "b"), LONG)
            .unwrap();
        t.acquire(TxnId(3), LockMode::Modify, r("c", "c"), LONG)
            .unwrap();
        let spawn_wait = |id: u64, range: KeyRange| {
            let tt = Arc::clone(&t);
            thread::spawn(move || tt.acquire(TxnId(id), LockMode::Modify, range, LONG))
        };
        let h1 = spawn_wait(1, r("b", "b"));
        thread::sleep(Duration::from_millis(30));
        let h2 = spawn_wait(2, r("c", "c"));
        thread::sleep(Duration::from_millis(30));
        // T3 closes the cycle and is the youngest: it must be the victim.
        let res3 = t.acquire(TxnId(3), LockMode::Modify, r("a", "a"), LONG);
        assert_eq!(res3, Err(LockError::Deadlock));
        t.release_all(TxnId(3));
        // T2 gets [c..c]; when T2 later releases, T1 gets [b..b]. Unblock
        // them by finishing T2.
        h2.join().unwrap().unwrap();
        t.release_all(TxnId(2));
        h1.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_disjoint_writers_proceed_in_parallel() {
        let t = Arc::new(RangeLockTable::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let tt = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                let low = Key::from(format!("{i}0").as_str());
                let high = Key::from(format!("{i}9").as_str());
                let range = KeyRange::new(low, high);
                for _ in 0..50 {
                    tt.acquire(TxnId(i), LockMode::Modify, range.clone(), LONG)
                        .unwrap();
                    tt.check_invariants().unwrap();
                    tt.release_all(TxnId(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.granted_count(), 0);
        assert_eq!(t.stats().deadlocks, 0);
    }

    #[test]
    fn stats_count_grants() {
        let t = RangeLockTable::new();
        t.acquire(TxnId(1), LockMode::Lookup, r("a", "b"), SHORT)
            .unwrap();
        t.acquire(TxnId(2), LockMode::Lookup, r("a", "b"), SHORT)
            .unwrap();
        assert_eq!(t.stats().granted, 2);
        assert_eq!(t.stats().waited, 0);
    }

    #[test]
    fn release_all_is_idempotent_and_scoped() {
        let t = RangeLockTable::new();
        t.acquire(TxnId(1), LockMode::Modify, r("a", "b"), SHORT)
            .unwrap();
        t.acquire(TxnId(2), LockMode::Modify, r("x", "y"), SHORT)
            .unwrap();
        t.release_all(TxnId(1));
        t.release_all(TxnId(1));
        assert_eq!(t.holders(), vec![TxnId(2)]);
    }

    mod properties {
        use super::*;
        use repdir_core::proptest_mini::prelude::*;
        use repdir_core::UserKey;

        #[derive(Clone, Debug)]
        enum LockOp {
            Acquire {
                owner: u8,
                modify: bool,
                lo: u8,
                hi: u8,
            },
            ReleaseAll {
                owner: u8,
            },
        }

        fn op() -> impl Strategy<Value = LockOp> {
            prop_oneof![
                3 => (0u8..4, any::<bool>(), any::<u8>(), any::<u8>()).prop_map(
                    |(owner, modify, a, b)| LockOp::Acquire {
                        owner,
                        modify,
                        lo: a.min(b) % 32,
                        hi: a.max(b) % 32,
                    }
                ),
                1 => (0u8..4).prop_map(|owner| LockOp::ReleaseAll { owner }),
            ]
        }

        fn range_of(lo: u8, hi: u8) -> KeyRange {
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            KeyRange::new(
                Key::User(UserKey::from_u64(lo as u64)),
                Key::User(UserKey::from_u64(hi as u64)),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The table's grant/deny decisions match an independent model
            /// applying Figure 7 directly, and incompatible grants never
            /// coexist.
            #[test]
            fn table_matches_figure7_model(ops in proptest::collection::vec(op(), 1..60)) {
                let table = RangeLockTable::new();
                let mut model: Vec<(TxnId, LockMode, KeyRange)> = Vec::new();
                for operation in ops {
                    match operation {
                        LockOp::Acquire { owner, modify, lo, hi } => {
                            let owner = TxnId(owner as u64);
                            let mode = if modify { LockMode::Modify } else { LockMode::Lookup };
                            let range = range_of(lo, hi);
                            let model_ok = model.iter().all(|(o, m, r)| {
                                *o == owner || compatible(*m, r, mode, &range)
                            });
                            match table.try_acquire(owner, mode, range.clone()) {
                                Ok(()) => {
                                    prop_assert!(model_ok, "table granted what Fig. 7 denies");
                                    model.push((owner, mode, range));
                                }
                                Err(holders) => {
                                    prop_assert!(!model_ok, "table denied what Fig. 7 allows");
                                    prop_assert!(!holders.is_empty());
                                    prop_assert!(!holders.contains(&owner));
                                }
                            }
                        }
                        LockOp::ReleaseAll { owner } => {
                            let owner = TxnId(owner as u64);
                            table.release_all(owner);
                            model.retain(|(o, _, _)| *o != owner);
                        }
                    }
                    table.check_invariants().expect("no incompatible grants");
                    prop_assert_eq!(table.granted_count(), model.len());
                }
            }
        }
    }

    #[test]
    fn debug_output_is_informative() {
        let t = RangeLockTable::new();
        t.acquire(TxnId(1), LockMode::Lookup, r("a", "b"), SHORT)
            .unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("granted"));
        assert!(s.contains("stats"));
    }
}
