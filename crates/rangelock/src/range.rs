//! Key ranges and the lock-class compatibility relation of the paper's
//! Figure 7.

use repdir_core::Key;
use std::fmt;

/// A closed range of keys `[low, high]` (both inclusive), the unit of
/// locking.
///
/// The paper's lock classes "are generalized to lock an entire range of
/// keys" (§3.1): `RepLookup(σ, τ)` covers the keys a query explicitly or
/// implicitly accessed, `RepModify(σ, τ)` the keys a mutation touched.
///
/// # Examples
///
/// ```
/// use repdir_core::Key;
/// use repdir_rangelock::KeyRange;
///
/// let r = KeyRange::new(Key::from("b"), Key::from("f"));
/// assert!(r.contains(&Key::from("d")));
/// assert!(r.intersects(&KeyRange::point(Key::from("f"))));
/// assert!(!r.intersects(&KeyRange::point(Key::from("g"))));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct KeyRange {
    low: Key,
    high: Key,
}

impl KeyRange {
    /// Creates the range `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: Key, high: Key) -> Self {
        assert!(low <= high, "inverted key range: {low:?} > {high:?}");
        KeyRange { low, high }
    }

    /// The single-key range `[k, k]` (used by `DirRepLookup(x)` /
    /// `DirRepInsert(x)`, which lock `(x, x)` per Fig. 6).
    pub fn point(k: Key) -> Self {
        KeyRange {
            low: k.clone(),
            high: k,
        }
    }

    /// The whole key space `[LOW, HIGH]`.
    pub fn everything() -> Self {
        KeyRange {
            low: Key::Low,
            high: Key::High,
        }
    }

    /// Lower end (inclusive).
    pub fn low(&self) -> &Key {
        &self.low
    }

    /// Upper end (inclusive).
    pub fn high(&self) -> &Key {
        &self.high
    }

    /// Whether `k` lies within the range.
    pub fn contains(&self, k: &Key) -> bool {
        self.low <= *k && *k <= self.high
    }

    /// Whether the two closed ranges share at least one key.
    pub fn intersects(&self, other: &KeyRange) -> bool {
        self.low <= other.high && other.low <= self.high
    }
}

impl fmt::Debug for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?}]", self.low, self.high)
    }
}

/// The two lock classes of §3.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// `RepLookup(σ, τ)`: set by `DirRepLookup`, `DirRepPredecessor`, and
    /// `DirRepSuccessor`.
    Lookup,
    /// `RepModify(σ, τ)`: set by `DirRepInsert` and `DirRepCoalesce`.
    Modify,
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Lookup => f.write_str("RepLookup"),
            LockMode::Modify => f.write_str("RepModify"),
        }
    }
}

/// The compatibility relation of Figure 7: two locks held by *different*
/// transactions are compatible unless one of them is a `RepModify` whose
/// range intersects the other's range.
///
/// Equivalently: `Lookup/Lookup` pairs are always compatible, and any pair
/// involving `Modify` is compatible exactly when the ranges are disjoint.
pub fn compatible(
    held_mode: LockMode,
    held_range: &KeyRange,
    req_mode: LockMode,
    req_range: &KeyRange,
) -> bool {
    if held_mode == LockMode::Lookup && req_mode == LockMode::Lookup {
        return true;
    }
    !held_range.intersects(req_range)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: &str, b: &str) -> KeyRange {
        KeyRange::new(Key::from(a), Key::from(b))
    }

    #[test]
    fn intersection_basics() {
        assert!(r("a", "c").intersects(&r("b", "d")));
        assert!(r("a", "c").intersects(&r("c", "d"))); // shared endpoint
        assert!(!r("a", "b").intersects(&r("c", "d")));
        assert!(r("a", "z").intersects(&r("m", "m"))); // containment
        assert!(KeyRange::everything().intersects(&r("q", "q")));
    }

    #[test]
    fn point_and_contains() {
        let p = KeyRange::point(Key::from("m"));
        assert!(p.contains(&Key::from("m")));
        assert!(!p.contains(&Key::from("n")));
        assert_eq!(p.low(), p.high());
        assert!(KeyRange::everything().contains(&Key::Low));
        assert!(KeyRange::everything().contains(&Key::High));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        KeyRange::new(Key::from("z"), Key::from("a"));
    }

    /// Enumerates the paper's Figure 7 row by row. `[σ..τ]` intersects
    /// `[σ''..τ'']` and does not intersect `[σ'..τ']`.
    #[test]
    fn figure7_compatibility_matrix() {
        use LockMode::{Lookup, Modify};
        let held = r("d", "g"); // [σ..τ]
        let disjoint = r("h", "k"); // [σ'..τ']
        let overlapping = r("f", "j"); // [σ''..τ'']
        assert!(held.intersects(&overlapping));
        assert!(!held.intersects(&disjoint));

        // Row: RepModify(σ', τ') requested — disjoint, so OK against both
        // held classes.
        assert!(compatible(Modify, &held, Modify, &disjoint));
        assert!(compatible(Lookup, &held, Modify, &disjoint));

        // Row: RepModify(σ'', τ'') requested — intersecting, so refused
        // against both held classes.
        assert!(!compatible(Modify, &held, Modify, &overlapping));
        assert!(!compatible(Lookup, &held, Modify, &overlapping));

        // Row: RepLookup(σ'', τ'') requested — intersecting: refused against
        // held RepModify, OK against held RepLookup.
        assert!(!compatible(Modify, &held, Lookup, &overlapping));
        assert!(compatible(Lookup, &held, Lookup, &overlapping));

        // Row: RepLookup(σ', τ') requested — disjoint: OK against both.
        assert!(compatible(Modify, &held, Lookup, &disjoint));
        assert!(compatible(Lookup, &held, Lookup, &disjoint));
    }

    #[test]
    fn compatibility_is_symmetric() {
        use LockMode::{Lookup, Modify};
        let cases = [
            (Lookup, r("a", "c"), Lookup, r("b", "d")),
            (Lookup, r("a", "c"), Modify, r("b", "d")),
            (Modify, r("a", "c"), Modify, r("b", "d")),
            (Lookup, r("a", "b"), Modify, r("c", "d")),
            (Modify, r("a", "b"), Modify, r("c", "d")),
        ];
        for (m1, r1, m2, r2) in cases {
            assert_eq!(
                compatible(m1, &r1, m2, &r2),
                compatible(m2, &r2, m1, &r1),
                "asymmetry for {m1:?}{r1:?} vs {m2:?}{r2:?}"
            );
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(LockMode::Lookup.to_string(), "RepLookup");
        assert_eq!(LockMode::Modify.to_string(), "RepModify");
        assert_eq!(format!("{:?}", r("a", "b")), "[k\"a\"..k\"b\"]");
    }
}
