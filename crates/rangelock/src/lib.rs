//! # repdir-rangelock
//!
//! Type-specific range locking for directory representatives, exactly as
//! specified in §3.1 of *An Algorithm for Replicated Directories*:
//!
//! * two lock classes, [`LockMode::Lookup`] (`RepLookup(σ, τ)`) and
//!   [`LockMode::Modify`] (`RepModify(σ, τ)`), each covering a whole
//!   [`KeyRange`];
//! * the compatibility relation of the paper's Figure 7
//!   ([`compatible`]): lookups never conflict with lookups; anything
//!   involving a modify conflicts exactly when the ranges intersect;
//! * a blocking [`RangeLockTable`] with waits-for-graph deadlock detection
//!   (youngest-in-cycle victim) and all-at-once release, giving strict
//!   two-phase locking when drivers release only at commit/abort.
//!
//! Combined with two-phase locking this "is sufficiently strong to
//! guarantee that the actions of transactions operating on a directory
//! representative are serializable" (§3.1, citing Traiger et al.); since
//! every participating node is serializable, the global schedule is too —
//! the property the suite's correctness argument (§3.3) relies on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod range;
mod table;

pub use range::{compatible, KeyRange, LockMode};
pub use table::{DeadlockDomain, LockError, LockStats, RangeLockTable, TxnId};
