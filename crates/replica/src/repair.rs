//! Anti-entropy adapters: plugging a [`TransactionalRep`] into the
//! `repdir-repair` [`RepairPeer`] / [`RepairTarget`] traits, in-process and
//! across the simulated network.
//!
//! A typical deployment gives each representative a
//! [`Repairer`](repdir_repair::Repairer) whose target is its own
//! [`RepTarget`] and whose peers are [`RemoteRepairPeer`]s for the other
//! members (or [`LocalRepairPeer`]s in single-process tests).

use std::sync::Arc;
use std::time::Duration;

use repdir_core::RepError;
use repdir_net::{NodeId, RpcClient};
use repdir_repair::{
    ApplyStats, BucketView, Digest, RepairError, RepairPeer, RepairPlan, RepairTarget,
};

use crate::codec::{decode_response, encode_request, Request, Response};
use crate::server::TransactionalRep;

pub(crate) fn map_rep_error(e: RepError) -> RepairError {
    match e {
        RepError::Unavailable => RepairError::Unavailable,
        RepError::LockTimeout | RepError::Deadlock => RepairError::Contended,
        other => RepairError::Protocol(other.to_string()),
    }
}

/// A repair peer reached over the simulated network via the wire codec
/// ([`Request::Summary`] / [`Request::Pull`]).
#[derive(Debug)]
pub struct RemoteRepairPeer {
    rpc: Arc<RpcClient>,
    server: NodeId,
    timeout: Duration,
}

impl RemoteRepairPeer {
    /// Default per-call deadline.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);

    /// A peer served at `server`, called through `rpc`.
    pub fn new(rpc: Arc<RpcClient>, server: NodeId) -> Self {
        RemoteRepairPeer {
            rpc,
            server,
            timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// Overrides the per-call deadline.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    fn call(&self, req: Request) -> Result<Response, RepairError> {
        let reply = self
            .rpc
            .call(self.server, encode_request(&req), self.timeout)
            // An unreachable peer looks exactly like an unavailable one.
            .map_err(|_| RepairError::Unavailable)?;
        let resp = decode_response(&reply).map_err(|e| RepairError::Protocol(e.to_string()))?;
        match resp {
            Response::Err(e) => Err(map_rep_error(e)),
            ok => Ok(ok),
        }
    }
}

impl RepairPeer for RemoteRepairPeer {
    fn summary(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError> {
        match self.call(Request::Summary { level, path })? {
            Response::Summary(digests) => Ok(digests),
            other => Err(RepairError::Protocol(format!(
                "unexpected reply to Summary: {other:?}"
            ))),
        }
    }

    fn pull(&self, bucket: u8) -> Result<BucketView, RepairError> {
        match self.call(Request::Pull { bucket })? {
            Response::Pull(view) => Ok(view),
            other => Err(RepairError::Protocol(format!(
                "unexpected reply to Pull: {other:?}"
            ))),
        }
    }
}

/// An in-process repair peer (no network) — handy in tests and
/// single-process simulations.
#[derive(Debug)]
pub struct LocalRepairPeer {
    rep: Arc<TransactionalRep>,
}

impl LocalRepairPeer {
    /// Wraps a representative as a peer.
    pub fn new(rep: Arc<TransactionalRep>) -> Self {
        LocalRepairPeer { rep }
    }
}

impl RepairPeer for LocalRepairPeer {
    fn summary(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError> {
        self.rep
            .summary_children(level, path)
            .map_err(map_rep_error)
    }

    fn pull(&self, bucket: u8) -> Result<BucketView, RepairError> {
        self.rep.repair_bucket(bucket).map_err(map_rep_error)
    }
}

/// The local side of repair: a representative as a [`RepairTarget`].
#[derive(Debug)]
pub struct RepTarget {
    rep: Arc<TransactionalRep>,
}

impl RepTarget {
    /// Wraps a representative as the repair target.
    pub fn new(rep: Arc<TransactionalRep>) -> Self {
        RepTarget { rep }
    }
}

impl RepairTarget for RepTarget {
    fn children(&self, level: u8, path: u8) -> Result<Vec<Digest>, RepairError> {
        self.rep
            .summary_children(level, path)
            .map_err(map_rep_error)
    }

    fn bucket(&self, bucket: u8) -> Result<BucketView, RepairError> {
        self.rep.repair_bucket(bucket).map_err(map_rep_error)
    }

    fn apply(&self, plan: &RepairPlan) -> Result<ApplyStats, RepairError> {
        self.rep.apply_repair(plan).map_err(map_rep_error)
    }

    fn checkpoint(&self) -> Result<(), RepairError> {
        self.rep.checkpoint().map_err(map_rep_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::serve_rep;
    use repdir_core::{Key, RepId, Value, Version};
    use repdir_net::Network;
    use repdir_repair::Repairer;
    use repdir_txn::TxnId;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }

    fn seed(rep: &TransactionalRep, txn: u64, keys: &[(&str, u64)]) {
        let t = TxnId(txn);
        rep.begin(t).unwrap();
        for (key, ver) in keys {
            rep.insert(t, &k(key), v(*ver), &Value::from(*key)).unwrap();
        }
        rep.commit(t).unwrap();
    }

    #[test]
    fn networked_repair_converges_a_partitioned_member() {
        let net = Arc::new(Network::new(7));
        let fresh = TransactionalRep::new(RepId(0));
        let stale = TransactionalRep::new(RepId(1));
        seed(&fresh, 1, &[("a", 1), ("b", 2)]);
        seed(&stale, 1, &[("a", 1), ("b", 2)]);
        // Writes the partitioned member missed.
        seed(&fresh, 2, &[("b", 5), ("q", 6)]);
        let t = TxnId(3);
        fresh.begin(t).unwrap();
        fresh.coalesce(t, &Key::Low, &k("b"), v(9)).unwrap(); // deletes "a"
        fresh.commit(t).unwrap();

        let _server = serve_rep(Arc::clone(&net), NodeId(10), Arc::clone(&fresh));
        let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
        let peer = RemoteRepairPeer::new(rpc, NodeId(10));
        let repairer = Repairer::new(
            Arc::new(RepTarget::new(Arc::clone(&stale))),
            vec![Box::new(peer)],
        );
        let q = repairer.run_until_quiescent(8);
        assert!(q.quiescent);
        assert!(q.total.applied.total() > 0);
        assert_eq!(fresh.snapshot(), stale.snapshot());
        assert_eq!(
            fresh.summary_children(0, 0).unwrap(),
            stale.summary_children(0, 0).unwrap()
        );
    }

    #[test]
    fn unreachable_peer_reports_unavailable() {
        let net = Arc::new(Network::new(7));
        let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
        let mut peer = RemoteRepairPeer::new(rpc, NodeId(99));
        peer.set_timeout(Duration::from_millis(25));
        assert_eq!(peer.summary(0, 0), Err(RepairError::Unavailable));
        assert_eq!(peer.pull(3), Err(RepairError::Unavailable));
    }

    #[test]
    fn local_peer_and_target_round_trip_without_network() {
        let a = TransactionalRep::new(RepId(0));
        let b = TransactionalRep::new(RepId(1));
        seed(&a, 1, &[("x", 1), ("y", 2), ("z", 3)]);
        let repairer = Repairer::new(
            Arc::new(RepTarget::new(Arc::clone(&b))),
            vec![Box::new(LocalRepairPeer::new(Arc::clone(&a)))],
        );
        let q = repairer.run_until_quiescent(4);
        assert!(q.quiescent);
        assert_eq!(a.snapshot(), b.snapshot());
        // An unavailable local peer surfaces as Unavailable and the round
        // is retried later rather than failing the repairer.
        a.set_available(false);
        let sweep = repairer.run_sweep();
        assert_eq!(sweep.errors, 1);
        a.set_available(true);
        assert_eq!(repairer.run_sweep().errors, 0);
    }
}
