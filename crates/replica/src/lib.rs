//! # repdir-replica
//!
//! The full directory-representative server and the client plumbing that
//! connects it to the core suite algorithm.
//!
//! A [`TransactionalRep`] combines the three substrates the paper assumes a
//! representative to have (§3.1):
//!
//! * gap-versioned state, durable through a write-ahead log
//!   (`repdir-storage`),
//! * the Figure-6/Figure-7 range locking discipline (`repdir-rangelock`),
//! * transactional undo and lifecycle (`repdir-txn`).
//!
//! [`SessionClient`] exposes one transaction's view of a representative as a
//! [`RepClient`](repdir_core::RepClient), so the generic
//! [`DirSuite`](repdir_core::suite::DirSuite) runs over it unchanged.
//! [`serve_rep`] / [`RemoteSessionClient`] do the same across the simulated
//! network (`repdir-net`), using the binary wire [`codec`].
//!
//! [`ReplicatedDirectory`] packages everything into a service with
//! begin/commit/abort transactions, deadlock-victim retry, failure
//! injection, and crash recovery.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;

mod client;
mod directory;
mod remote;
mod repair;
mod server;
mod snapshot;

pub use client::SessionClient;
pub use directory::{DirTxn, ReplicatedDirectory};
pub use remote::{serve_rep, RemoteSessionClient};
pub use repair::{LocalRepairPeer, RemoteRepairPeer, RepTarget};
pub use server::TransactionalRep;
pub use snapshot::{LocalSnapshotPeer, RemoteSnapshotPeer};
