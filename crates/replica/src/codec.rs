//! Wire encoding for representative RPCs.
//!
//! A compact hand-rolled binary format (length-prefixed fields,
//! little-endian integers) mirroring the write-ahead log's conventions.
//! Every request and response round-trips exactly; decoding rejects
//! malformed input rather than panicking, since bytes arrive from the
//! network.

use repdir_core::bytes::{Buf, BufMut};
use repdir_core::{
    CoalesceOutcome, InsertOutcome, Key, LookupReply, NeighborReply, RemovedEntry, RepError,
    UserKey, Value, Version,
};
use repdir_repair::{BucketEntry, BucketView, Digest};
use repdir_snapshot::{SnapshotChunk, SnapshotManifest};
use repdir_txn::TxnId;

/// A request to a representative server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe (quorum collection).
    Ping,
    /// Register a transaction at this representative.
    Begin(TxnId),
    /// `DirRepLookup`.
    Lookup(TxnId, Key),
    /// `DirRepPredecessor`.
    Predecessor(TxnId, Key),
    /// `DirRepSuccessor`.
    Successor(TxnId, Key),
    /// Batched `DirRepPredecessor` chain (§4): key and element limit.
    PredecessorChain(TxnId, Key, u32),
    /// Batched `DirRepSuccessor` chain.
    SuccessorChain(TxnId, Key, u32),
    /// `DirRepInsert`.
    Insert(TxnId, Key, Version, Value),
    /// `DirRepCoalesce`.
    Coalesce(TxnId, Key, Key, Version),
    /// Commit the transaction and release its locks.
    Commit(TxnId),
    /// Abort the transaction, roll back, release its locks.
    Abort(TxnId),
    /// A batched scatter envelope: several requests in one message, answered
    /// by a [`Response::Batch`] with replies in request order. Envelopes do
    /// not nest.
    Batch(Vec<Request>),
    /// Anti-entropy: digests of one summary-tree level. Read-only; no
    /// transaction.
    Summary {
        /// Tree level: 0 for the 16 group digests, 1 for a group's leaves.
        level: u8,
        /// Group index when `level` is 1; ignored at level 0.
        path: u8,
    },
    /// Anti-entropy: the full view of one summary bucket. Read-only.
    Pull {
        /// Leaf bucket index (the keys' leading byte).
        bucket: u8,
    },
    /// Snapshot catch-up: the manifest of the peer's current state.
    /// Read-only; no transaction.
    SnapshotBegin,
    /// Snapshot catch-up: one bounded frame of entries strictly after the
    /// cursor (from the lowest key when `None`). Read-only.
    SnapshotChunk {
        /// Resume cursor: the last key already installed, or `None` to
        /// start from the beginning of the key space.
        after: Option<UserKey>,
        /// Maximum number of entries in the frame.
        max: u32,
    },
}

/// A response from a representative server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Ping/Begin/Commit/Abort succeeded.
    Ok,
    /// Lookup result.
    Lookup(LookupReply),
    /// Predecessor/Successor result.
    Neighbor(NeighborReply),
    /// Batched chain result.
    Chain(Vec<NeighborReply>),
    /// Insert result.
    Insert(InsertOutcome),
    /// Coalesce result.
    Coalesce(CoalesceOutcome),
    /// The operation failed.
    Err(RepError),
    /// Replies to a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
    /// Summary-level digests (reply to [`Request::Summary`]).
    Summary(Vec<Digest>),
    /// A bucket view (reply to [`Request::Pull`]).
    Pull(BucketView),
    /// A snapshot manifest (reply to [`Request::SnapshotBegin`]).
    SnapshotManifest(SnapshotManifest),
    /// A snapshot frame (reply to [`Request::SnapshotChunk`]).
    SnapshotChunk(SnapshotChunk),
}

/// Decoding failure: the peer sent bytes this codec cannot parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type DecodeResult<T> = Result<T, DecodeError>;

fn err<T>(msg: &str) -> DecodeResult<T> {
    Err(DecodeError(msg.into()))
}

// ---- field helpers ----

fn put_key(b: &mut Vec<u8>, key: &Key) {
    match key {
        Key::Low => b.put_u8(0),
        Key::User(u) => {
            b.put_u8(1);
            b.put_u32_le(u.len() as u32);
            b.put_slice(u.as_bytes());
        }
        Key::High => b.put_u8(2),
    }
}

fn get_key(b: &mut &[u8]) -> DecodeResult<Key> {
    if b.remaining() < 1 {
        return err("missing key tag");
    }
    match b.get_u8() {
        0 => Ok(Key::Low),
        2 => Ok(Key::High),
        1 => {
            if b.remaining() < 4 {
                return err("missing key len");
            }
            let n = b.get_u32_le() as usize;
            if b.remaining() < n {
                return err("short key");
            }
            let bytes = b[..n].to_vec();
            b.advance(n);
            Ok(Key::User(UserKey::from(bytes)))
        }
        _ => err("bad key tag"),
    }
}

fn put_user_key(b: &mut Vec<u8>, key: &UserKey) {
    b.put_u32_le(key.len() as u32);
    b.put_slice(key.as_bytes());
}

fn get_user_key(b: &mut &[u8]) -> DecodeResult<UserKey> {
    if b.remaining() < 4 {
        return err("missing user-key len");
    }
    let n = b.get_u32_le() as usize;
    if b.remaining() < n {
        return err("short user key");
    }
    let bytes = b[..n].to_vec();
    b.advance(n);
    Ok(UserKey::from(bytes))
}

fn put_value(b: &mut Vec<u8>, value: &Value) {
    b.put_u32_le(value.len() as u32);
    b.put_slice(value.as_bytes());
}

fn get_value(b: &mut &[u8]) -> DecodeResult<Value> {
    if b.remaining() < 4 {
        return err("missing value len");
    }
    let n = b.get_u32_le() as usize;
    if b.remaining() < n {
        return err("short value");
    }
    let bytes = b[..n].to_vec();
    b.advance(n);
    Ok(Value::from(bytes))
}

fn get_u64(b: &mut &[u8]) -> DecodeResult<u64> {
    if b.remaining() < 8 {
        return err("missing u64");
    }
    Ok(b.get_u64_le())
}

fn get_u32(b: &mut &[u8]) -> DecodeResult<u32> {
    if b.remaining() < 4 {
        return err("missing u32");
    }
    Ok(b.get_u32_le())
}

fn get_u8(b: &mut &[u8]) -> DecodeResult<u8> {
    if b.remaining() < 1 {
        return err("missing u8");
    }
    Ok(b.get_u8())
}

// ---- requests ----

const RQ_PING: u8 = 0;
const RQ_BEGIN: u8 = 1;
const RQ_LOOKUP: u8 = 2;
const RQ_PRED: u8 = 3;
const RQ_SUCC: u8 = 4;
const RQ_INSERT: u8 = 5;
const RQ_COALESCE: u8 = 6;
const RQ_COMMIT: u8 = 7;
const RQ_ABORT: u8 = 8;
const RQ_PRED_CHAIN: u8 = 9;
const RQ_SUCC_CHAIN: u8 = 10;
const RQ_BATCH: u8 = 11;
const RQ_SUMMARY: u8 = 12;
const RQ_PULL: u8 = 13;
const RQ_SNAP_BEGIN: u8 = 14;
const RQ_SNAP_CHUNK: u8 = 15;

/// Encodes a request.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut b = Vec::new();
    match req {
        Request::Ping => b.put_u8(RQ_PING),
        Request::Begin(t) => {
            b.put_u8(RQ_BEGIN);
            b.put_u64_le(t.0);
        }
        Request::Lookup(t, k) => {
            b.put_u8(RQ_LOOKUP);
            b.put_u64_le(t.0);
            put_key(&mut b, k);
        }
        Request::Predecessor(t, k) => {
            b.put_u8(RQ_PRED);
            b.put_u64_le(t.0);
            put_key(&mut b, k);
        }
        Request::Successor(t, k) => {
            b.put_u8(RQ_SUCC);
            b.put_u64_le(t.0);
            put_key(&mut b, k);
        }
        Request::PredecessorChain(t, k, limit) => {
            b.put_u8(RQ_PRED_CHAIN);
            b.put_u64_le(t.0);
            put_key(&mut b, k);
            b.put_u32_le(*limit);
        }
        Request::SuccessorChain(t, k, limit) => {
            b.put_u8(RQ_SUCC_CHAIN);
            b.put_u64_le(t.0);
            put_key(&mut b, k);
            b.put_u32_le(*limit);
        }
        Request::Insert(t, k, v, val) => {
            b.put_u8(RQ_INSERT);
            b.put_u64_le(t.0);
            put_key(&mut b, k);
            b.put_u64_le(v.get());
            put_value(&mut b, val);
        }
        Request::Coalesce(t, l, h, v) => {
            b.put_u8(RQ_COALESCE);
            b.put_u64_le(t.0);
            put_key(&mut b, l);
            put_key(&mut b, h);
            b.put_u64_le(v.get());
        }
        Request::Commit(t) => {
            b.put_u8(RQ_COMMIT);
            b.put_u64_le(t.0);
        }
        Request::Abort(t) => {
            b.put_u8(RQ_ABORT);
            b.put_u64_le(t.0);
        }
        Request::Batch(reqs) => {
            b.put_u8(RQ_BATCH);
            let parts: Vec<Vec<u8>> = reqs.iter().map(encode_request).collect();
            b.put_slice(&repdir_net::pack_parts(&parts));
        }
        Request::Summary { level, path } => {
            b.put_u8(RQ_SUMMARY);
            b.put_u8(*level);
            b.put_u8(*path);
        }
        Request::Pull { bucket } => {
            b.put_u8(RQ_PULL);
            b.put_u8(*bucket);
        }
        Request::SnapshotBegin => b.put_u8(RQ_SNAP_BEGIN),
        Request::SnapshotChunk { after, max } => {
            b.put_u8(RQ_SNAP_CHUNK);
            match after {
                Some(key) => {
                    b.put_u8(1);
                    put_user_key(&mut b, key);
                }
                None => b.put_u8(0),
            }
            b.put_u32_le(*max);
        }
    }
    b
}

/// Decodes a request.
///
/// # Errors
///
/// [`DecodeError`] on malformed input.
pub fn decode_request(mut b: &[u8]) -> DecodeResult<Request> {
    let b = &mut b;
    match get_u8(b)? {
        RQ_PING => Ok(Request::Ping),
        RQ_BEGIN => Ok(Request::Begin(TxnId(get_u64(b)?))),
        RQ_LOOKUP => Ok(Request::Lookup(TxnId(get_u64(b)?), get_key(b)?)),
        RQ_PRED => Ok(Request::Predecessor(TxnId(get_u64(b)?), get_key(b)?)),
        RQ_SUCC => Ok(Request::Successor(TxnId(get_u64(b)?), get_key(b)?)),
        RQ_PRED_CHAIN => Ok(Request::PredecessorChain(
            TxnId(get_u64(b)?),
            get_key(b)?,
            get_u32(b)?,
        )),
        RQ_SUCC_CHAIN => Ok(Request::SuccessorChain(
            TxnId(get_u64(b)?),
            get_key(b)?,
            get_u32(b)?,
        )),
        RQ_INSERT => Ok(Request::Insert(
            TxnId(get_u64(b)?),
            get_key(b)?,
            Version::new(get_u64(b)?),
            get_value(b)?,
        )),
        RQ_COALESCE => Ok(Request::Coalesce(
            TxnId(get_u64(b)?),
            get_key(b)?,
            get_key(b)?,
            Version::new(get_u64(b)?),
        )),
        RQ_COMMIT => Ok(Request::Commit(TxnId(get_u64(b)?))),
        RQ_ABORT => Ok(Request::Abort(TxnId(get_u64(b)?))),
        RQ_BATCH => {
            let parts = match repdir_net::unpack_parts(b) {
                Some(parts) => parts,
                None => return err("bad batch framing"),
            };
            let reqs = parts
                .iter()
                .map(|part| decode_request(part))
                .collect::<DecodeResult<Vec<Request>>>()?;
            if reqs.iter().any(|r| matches!(r, Request::Batch(_))) {
                return err("nested batch request");
            }
            Ok(Request::Batch(reqs))
        }
        RQ_SUMMARY => Ok(Request::Summary {
            level: get_u8(b)?,
            path: get_u8(b)?,
        }),
        RQ_PULL => Ok(Request::Pull { bucket: get_u8(b)? }),
        RQ_SNAP_BEGIN => Ok(Request::SnapshotBegin),
        RQ_SNAP_CHUNK => {
            let after = match get_u8(b)? {
                0 => None,
                1 => Some(get_user_key(b)?),
                _ => return err("bad snapshot cursor flag"),
            };
            Ok(Request::SnapshotChunk {
                after,
                max: get_u32(b)?,
            })
        }
        _ => err("unknown request tag"),
    }
}

// ---- responses ----

const RS_OK: u8 = 0;
const RS_LOOKUP_PRESENT: u8 = 1;
const RS_LOOKUP_ABSENT: u8 = 2;
const RS_NEIGHBOR: u8 = 3;
const RS_INSERT_CREATED: u8 = 4;
const RS_INSERT_UPDATED: u8 = 5;
const RS_COALESCE: u8 = 6;
const RS_ERR: u8 = 7;
const RS_CHAIN: u8 = 8;
const RS_BATCH: u8 = 9;
const RS_SUMMARY: u8 = 10;
const RS_PULL: u8 = 11;
const RS_SNAP_MANIFEST: u8 = 12;
const RS_SNAP_CHUNK: u8 = 13;

const ERR_NO_BOUNDARY: u8 = 0;
const ERR_SENTINEL: u8 = 1;
const ERR_RANGE: u8 = 2;
const ERR_UNAVAILABLE: u8 = 3;
const ERR_LOCK_TIMEOUT: u8 = 4;
const ERR_DEADLOCK: u8 = 5;
const ERR_TXN_ABORTED: u8 = 6;
const ERR_STORAGE: u8 = 7;

fn put_rep_error(b: &mut Vec<u8>, e: &RepError) {
    match e {
        RepError::NoSuchBoundary { key } => {
            b.put_u8(ERR_NO_BOUNDARY);
            put_key(b, key);
        }
        RepError::SentinelViolation { key, op } => {
            b.put_u8(ERR_SENTINEL);
            put_key(b, key);
            put_value(b, &Value::from(op.as_bytes()));
        }
        RepError::InvalidRange { low, high } => {
            b.put_u8(ERR_RANGE);
            put_key(b, low);
            put_key(b, high);
        }
        RepError::Unavailable => b.put_u8(ERR_UNAVAILABLE),
        RepError::LockTimeout => b.put_u8(ERR_LOCK_TIMEOUT),
        RepError::Deadlock => b.put_u8(ERR_DEADLOCK),
        RepError::TransactionAborted => b.put_u8(ERR_TXN_ABORTED),
        RepError::Storage(msg) => {
            b.put_u8(ERR_STORAGE);
            put_value(b, &Value::from(msg.as_bytes()));
        }
        _ => b.put_u8(ERR_UNAVAILABLE),
    }
}

/// Static operation names, restored when decoding `SentinelViolation` (the
/// in-memory type carries `&'static str`).
fn intern_op(op: &[u8]) -> &'static str {
    match op {
        b"insert" => "insert",
        b"predecessor" => "predecessor",
        b"successor" => "successor",
        b"set_gap_after" => "set_gap_after",
        _ => "operation",
    }
}

fn get_rep_error(b: &mut &[u8]) -> DecodeResult<RepError> {
    match get_u8(b)? {
        ERR_NO_BOUNDARY => Ok(RepError::NoSuchBoundary { key: get_key(b)? }),
        ERR_SENTINEL => {
            let key = get_key(b)?;
            let op = get_value(b)?;
            Ok(RepError::SentinelViolation {
                key,
                op: intern_op(op.as_bytes()),
            })
        }
        ERR_RANGE => Ok(RepError::InvalidRange {
            low: get_key(b)?,
            high: get_key(b)?,
        }),
        ERR_UNAVAILABLE => Ok(RepError::Unavailable),
        ERR_LOCK_TIMEOUT => Ok(RepError::LockTimeout),
        ERR_DEADLOCK => Ok(RepError::Deadlock),
        ERR_TXN_ABORTED => Ok(RepError::TransactionAborted),
        ERR_STORAGE => {
            let msg = get_value(b)?;
            Ok(RepError::Storage(
                String::from_utf8_lossy(msg.as_bytes()).into_owned(),
            ))
        }
        _ => err("unknown error tag"),
    }
}

/// Encodes a response.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut b = Vec::new();
    match resp {
        Response::Ok => b.put_u8(RS_OK),
        Response::Lookup(LookupReply::Present { version, value }) => {
            b.put_u8(RS_LOOKUP_PRESENT);
            b.put_u64_le(version.get());
            put_value(&mut b, value);
        }
        Response::Lookup(LookupReply::Absent { gap_version }) => {
            b.put_u8(RS_LOOKUP_ABSENT);
            b.put_u64_le(gap_version.get());
        }
        Response::Neighbor(n) => {
            b.put_u8(RS_NEIGHBOR);
            put_key(&mut b, &n.key);
            b.put_u64_le(n.entry_version.get());
            b.put_u64_le(n.gap_version.get());
        }
        Response::Chain(chain) => {
            b.put_u8(RS_CHAIN);
            b.put_u32_le(chain.len() as u32);
            for n in chain {
                put_key(&mut b, &n.key);
                b.put_u64_le(n.entry_version.get());
                b.put_u64_le(n.gap_version.get());
            }
        }
        Response::Insert(InsertOutcome::Created { split_gap_version }) => {
            b.put_u8(RS_INSERT_CREATED);
            b.put_u64_le(split_gap_version.get());
        }
        Response::Insert(InsertOutcome::Updated {
            old_version,
            old_value,
        }) => {
            b.put_u8(RS_INSERT_UPDATED);
            b.put_u64_le(old_version.get());
            put_value(&mut b, old_value);
        }
        Response::Coalesce(out) => {
            b.put_u8(RS_COALESCE);
            b.put_u64_le(out.old_gap_version.get());
            b.put_u32_le(out.removed.len() as u32);
            for r in &out.removed {
                put_user_key(&mut b, &r.key);
                b.put_u64_le(r.version.get());
                put_value(&mut b, &r.value);
                b.put_u64_le(r.gap_after.get());
            }
        }
        Response::Err(e) => {
            b.put_u8(RS_ERR);
            put_rep_error(&mut b, e);
        }
        Response::Batch(resps) => {
            b.put_u8(RS_BATCH);
            let parts: Vec<Vec<u8>> = resps.iter().map(encode_response).collect();
            b.put_slice(&repdir_net::pack_parts(&parts));
        }
        Response::Summary(digests) => {
            b.put_u8(RS_SUMMARY);
            b.put_u32_le(digests.len() as u32);
            for d in digests {
                b.put_u64_le(d.hash);
                b.put_u64_le(d.count);
            }
        }
        Response::Pull(view) => {
            b.put_u8(RS_PULL);
            b.put_u64_le(view.lead_gap.get());
            b.put_u32_le(view.entries.len() as u32);
            for e in &view.entries {
                put_user_key(&mut b, &e.key);
                b.put_u64_le(e.version.get());
                put_value(&mut b, &e.value);
                b.put_u64_le(e.gap_after.get());
            }
        }
        Response::SnapshotManifest(m) => {
            b.put_u8(RS_SNAP_MANIFEST);
            b.put_u64_le(m.root.hash);
            b.put_u64_le(m.root.count);
            b.put_u64_le(m.low_gap.get());
        }
        Response::SnapshotChunk(chunk) => {
            b.put_u8(RS_SNAP_CHUNK);
            b.put_u8(u8::from(chunk.done));
            b.put_u32_le(chunk.entries.len() as u32);
            for e in &chunk.entries {
                put_user_key(&mut b, &e.key);
                b.put_u64_le(e.version.get());
                put_value(&mut b, &e.value);
                b.put_u64_le(e.gap_after.get());
            }
        }
    }
    b
}

/// Decodes a response.
///
/// # Errors
///
/// [`DecodeError`] on malformed input.
pub fn decode_response(mut b: &[u8]) -> DecodeResult<Response> {
    let b = &mut b;
    match get_u8(b)? {
        RS_OK => Ok(Response::Ok),
        RS_LOOKUP_PRESENT => Ok(Response::Lookup(LookupReply::Present {
            version: Version::new(get_u64(b)?),
            value: get_value(b)?,
        })),
        RS_LOOKUP_ABSENT => Ok(Response::Lookup(LookupReply::Absent {
            gap_version: Version::new(get_u64(b)?),
        })),
        RS_NEIGHBOR => Ok(Response::Neighbor(NeighborReply {
            key: get_key(b)?,
            entry_version: Version::new(get_u64(b)?),
            gap_version: Version::new(get_u64(b)?),
        })),
        RS_CHAIN => {
            let n = get_u32(b)? as usize;
            let mut chain = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                chain.push(NeighborReply {
                    key: get_key(b)?,
                    entry_version: Version::new(get_u64(b)?),
                    gap_version: Version::new(get_u64(b)?),
                });
            }
            Ok(Response::Chain(chain))
        }
        RS_INSERT_CREATED => Ok(Response::Insert(InsertOutcome::Created {
            split_gap_version: Version::new(get_u64(b)?),
        })),
        RS_INSERT_UPDATED => Ok(Response::Insert(InsertOutcome::Updated {
            old_version: Version::new(get_u64(b)?),
            old_value: get_value(b)?,
        })),
        RS_COALESCE => {
            let old_gap_version = Version::new(get_u64(b)?);
            let n = get_u32(b)? as usize;
            let mut removed = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                removed.push(RemovedEntry {
                    key: get_user_key(b)?,
                    version: Version::new(get_u64(b)?),
                    value: get_value(b)?,
                    gap_after: Version::new(get_u64(b)?),
                });
            }
            Ok(Response::Coalesce(CoalesceOutcome {
                removed,
                old_gap_version,
            }))
        }
        RS_ERR => Ok(Response::Err(get_rep_error(b)?)),
        RS_BATCH => {
            let parts = match repdir_net::unpack_parts(b) {
                Some(parts) => parts,
                None => return err("bad batch framing"),
            };
            let resps = parts
                .iter()
                .map(|part| decode_response(part))
                .collect::<DecodeResult<Vec<Response>>>()?;
            if resps.iter().any(|r| matches!(r, Response::Batch(_))) {
                return err("nested batch response");
            }
            Ok(Response::Batch(resps))
        }
        RS_SUMMARY => {
            let n = get_u32(b)? as usize;
            let mut digests = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                digests.push(Digest {
                    hash: get_u64(b)?,
                    count: get_u64(b)?,
                });
            }
            Ok(Response::Summary(digests))
        }
        RS_PULL => {
            let lead_gap = Version::new(get_u64(b)?);
            let n = get_u32(b)? as usize;
            let mut entries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                entries.push(BucketEntry {
                    key: get_user_key(b)?,
                    version: Version::new(get_u64(b)?),
                    value: get_value(b)?,
                    gap_after: Version::new(get_u64(b)?),
                });
            }
            Ok(Response::Pull(BucketView { lead_gap, entries }))
        }
        RS_SNAP_MANIFEST => Ok(Response::SnapshotManifest(SnapshotManifest {
            root: Digest {
                hash: get_u64(b)?,
                count: get_u64(b)?,
            },
            low_gap: Version::new(get_u64(b)?),
        })),
        RS_SNAP_CHUNK => {
            let done = match get_u8(b)? {
                0 => false,
                1 => true,
                _ => return err("bad snapshot done flag"),
            };
            let n = get_u32(b)? as usize;
            let mut entries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                entries.push(BucketEntry {
                    key: get_user_key(b)?,
                    version: Version::new(get_u64(b)?),
                    value: get_value(b)?,
                    gap_after: Version::new(get_u64(b)?),
                });
            }
            Ok(Response::SnapshotChunk(SnapshotChunk { entries, done }))
        }
        _ => err("unknown response tag"),
    }
}

/// Decodes the reply to a [`Request::Batch`] of `expect` sub-requests.
///
/// Accepts exactly a [`Response::Batch`] whose arity matches the request,
/// or a top-level [`Response::Err`] (the server refusing the envelope as a
/// whole). Anything else — wrong arity, a nested batch (rejected by
/// [`decode_response`]), a non-batch reply — is a [`DecodeError`], never a
/// panic or a silent truncation: a short reply zipped against the request
/// list would quietly drop the tail sub-requests' outcomes.
///
/// # Errors
///
/// [`DecodeError`] on malformed input or a reply shape that cannot answer
/// a batch of `expect` sub-requests.
pub fn decode_batch_response(bytes: &[u8], expect: usize) -> DecodeResult<Response> {
    let resp = decode_response(bytes)?;
    match &resp {
        Response::Batch(parts) if parts.len() == expect => Ok(resp),
        Response::Batch(parts) => Err(DecodeError(format!(
            "batch arity mismatch: {} replies to {} requests",
            parts.len(),
            expect
        ))),
        Response::Err(_) => Ok(resp),
        _ => err("non-batch reply to a batch request"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Begin(TxnId(7)),
            Request::Lookup(TxnId(1), k("a")),
            Request::Lookup(TxnId(1), Key::Low),
            Request::Predecessor(TxnId(2), Key::High),
            Request::Successor(TxnId(3), k("")),
            Request::PredecessorChain(TxnId(3), k("m"), 3),
            Request::SuccessorChain(TxnId(3), Key::Low, 5),
            Request::Insert(TxnId(4), k("key"), v(9), Value::from("val")),
            Request::Coalesce(TxnId(5), Key::Low, Key::High, v(3)),
            Request::Coalesce(TxnId(5), k("a"), k("z"), v(3)),
            Request::Commit(TxnId(6)),
            Request::Abort(TxnId(6)),
            Request::Batch(vec![]),
            Request::Batch(vec![
                Request::Lookup(TxnId(8), k("q")),
                Request::SuccessorChain(TxnId(8), k("q"), 4),
            ]),
            Request::Batch(vec![
                Request::Insert(TxnId(9), k("bulk"), v(2), Value::from("B")),
                Request::Lookup(TxnId(9), k("bulk")),
            ]),
            Request::Summary { level: 0, path: 0 },
            Request::Summary { level: 1, path: 15 },
            Request::Pull { bucket: 0 },
            Request::Pull { bucket: 255 },
            Request::SnapshotBegin,
            Request::SnapshotChunk {
                after: None,
                max: 512,
            },
            Request::SnapshotChunk {
                after: Some(UserKey::from("cursor")),
                max: 1,
            },
            Request::SnapshotChunk {
                after: Some(UserKey::from("")),
                max: u32::MAX,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Ok,
            Response::Lookup(LookupReply::Present {
                version: v(4),
                value: Value::from("x"),
            }),
            Response::Lookup(LookupReply::Absent { gap_version: v(2) }),
            Response::Neighbor(NeighborReply {
                key: k("n"),
                entry_version: v(1),
                gap_version: v(2),
            }),
            Response::Neighbor(NeighborReply {
                key: Key::Low,
                entry_version: v(0),
                gap_version: v(5),
            }),
            Response::Chain(vec![
                NeighborReply {
                    key: k("n"),
                    entry_version: v(1),
                    gap_version: v(2),
                },
                NeighborReply {
                    key: Key::Low,
                    entry_version: v(0),
                    gap_version: v(0),
                },
            ]),
            Response::Chain(vec![]),
            Response::Insert(InsertOutcome::Created {
                split_gap_version: v(2),
            }),
            Response::Insert(InsertOutcome::Updated {
                old_version: v(1),
                old_value: Value::from("old"),
            }),
            Response::Coalesce(CoalesceOutcome {
                removed: vec![
                    RemovedEntry {
                        key: UserKey::from("g1"),
                        version: v(1),
                        value: Value::from("v1"),
                        gap_after: v(0),
                    },
                    RemovedEntry {
                        key: UserKey::from("g2"),
                        version: v(2),
                        value: Value::empty(),
                        gap_after: v(3),
                    },
                ],
                old_gap_version: v(1),
            }),
            Response::Err(RepError::NoSuchBoundary { key: k("b") }),
            Response::Err(RepError::SentinelViolation {
                key: Key::Low,
                op: "insert",
            }),
            Response::Err(RepError::InvalidRange {
                low: k("z"),
                high: k("a"),
            }),
            Response::Err(RepError::Unavailable),
            Response::Err(RepError::LockTimeout),
            Response::Err(RepError::Deadlock),
            Response::Err(RepError::TransactionAborted),
            Response::Err(RepError::Storage("disk on fire".into())),
            Response::Batch(vec![]),
            Response::Batch(vec![
                Response::Lookup(LookupReply::Absent { gap_version: v(1) }),
                Response::Insert(InsertOutcome::Created {
                    split_gap_version: v(4),
                }),
                Response::Chain(vec![NeighborReply {
                    key: Key::High,
                    entry_version: v(0),
                    gap_version: v(6),
                }]),
                Response::Err(RepError::Unavailable),
            ]),
            Response::Summary(vec![]),
            Response::Summary(vec![
                Digest { hash: 0, count: 0 },
                Digest {
                    hash: u64::MAX,
                    count: 12,
                },
            ]),
            Response::Pull(BucketView {
                lead_gap: v(7),
                entries: vec![],
            }),
            Response::Pull(BucketView {
                lead_gap: v(0),
                entries: vec![
                    BucketEntry {
                        key: UserKey::from("p1"),
                        version: v(3),
                        value: Value::from("V"),
                        gap_after: v(9),
                    },
                    BucketEntry {
                        key: UserKey::from(""),
                        version: v(1),
                        value: Value::empty(),
                        gap_after: v(0),
                    },
                ],
            }),
            Response::SnapshotManifest(SnapshotManifest {
                root: Digest {
                    hash: 0xdead_beef,
                    count: 42,
                },
                low_gap: v(6),
            }),
            Response::SnapshotChunk(SnapshotChunk {
                entries: vec![],
                done: true,
            }),
            Response::SnapshotChunk(SnapshotChunk {
                entries: vec![
                    BucketEntry {
                        key: UserKey::from("s1"),
                        version: v(2),
                        value: Value::from("S"),
                        gap_after: v(0),
                    },
                    BucketEntry {
                        key: UserKey::from("s2"),
                        version: v(5),
                        value: Value::empty(),
                        gap_after: v(8),
                    },
                ],
                done: false,
            }),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            for cut in 1..bytes.len() {
                // Any strict prefix must decode to an error (no panic). Some
                // prefixes of variable-length messages may decode to a
                // different valid message; that is acceptable for a
                // length-delimited transport, which never truncates.
                let _ = decode_request(&bytes[..cut]);
            }
        }
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            for cut in 1..bytes.len() {
                let _ = decode_response(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn garbage_tags_rejected() {
        assert!(decode_request(&[200]).is_err());
        assert!(decode_response(&[200]).is_err());
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
    }

    #[test]
    fn nested_batch_rejected() {
        let req = Request::Batch(vec![Request::Batch(vec![Request::Ping])]);
        let err = decode_request(&encode_request(&req)).unwrap_err();
        assert!(err.0.contains("nested"), "{err}");
        let resp = Response::Batch(vec![Response::Batch(vec![Response::Ok])]);
        let err = decode_response(&encode_response(&resp)).unwrap_err();
        assert!(err.0.contains("nested"), "{err}");
    }

    #[test]
    fn batch_with_trailing_junk_rejected() {
        let mut bytes = encode_request(&Request::Batch(vec![Request::Ping]));
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn batch_reply_arity_mismatch_is_a_decode_error() {
        // A reply carrying one part for a two-request envelope must not zip
        // silently — the dropped tail would read as "request had no outcome".
        let short = encode_response(&Response::Batch(vec![Response::Ok]));
        let err = decode_batch_response(&short, 2).unwrap_err();
        assert!(err.0.contains("arity"), "{err}");
        // Extra parts are just as malformed.
        let long = encode_response(&Response::Batch(vec![Response::Ok, Response::Ok]));
        let err = decode_batch_response(&long, 1).unwrap_err();
        assert!(err.0.contains("arity"), "{err}");
        // The matching arity decodes, as does a whole-envelope refusal.
        assert_eq!(
            decode_batch_response(&long, 2).unwrap(),
            Response::Batch(vec![Response::Ok, Response::Ok])
        );
        let refusal = encode_response(&Response::Err(RepError::Unavailable));
        assert_eq!(
            decode_batch_response(&refusal, 3).unwrap(),
            Response::Err(RepError::Unavailable)
        );
    }

    #[test]
    fn batch_reply_wrong_shape_is_a_decode_error() {
        // A nested batch is rejected by the inner decode...
        let nested = encode_response(&Response::Batch(vec![Response::Batch(vec![])]));
        let err = decode_batch_response(&nested, 1).unwrap_err();
        assert!(err.0.contains("nested"), "{err}");
        // ...and a non-batch reply cannot answer a batch request at all.
        let plain = encode_response(&Response::Ok);
        let err = decode_batch_response(&plain, 1).unwrap_err();
        assert!(err.0.contains("non-batch"), "{err}");
    }

    #[test]
    fn unknown_sentinel_op_interns_to_generic_name() {
        let e = Response::Err(RepError::SentinelViolation {
            key: Key::High,
            op: "successor",
        });
        let back = decode_response(&encode_response(&e)).unwrap();
        assert_eq!(back, e);
        // A name not in the intern table maps to "operation".
        assert_eq!(intern_op(b"whatever"), "operation");
    }
}
