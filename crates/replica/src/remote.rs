//! Serving a representative over the simulated network, and the matching
//! remote client.

use std::sync::Arc;
use std::time::Duration;

use repdir_core::{
    BatchReply, BatchRequest, CoalesceOutcome, InsertOutcome, Key, LookupReply, NeighborReply,
    RepClient, RepError, RepId, RepResult, Value, Version,
};
use repdir_net::{serve, Network, NodeId, RpcClient, ServerHandle};
use repdir_txn::TxnId;

use crate::codec::{
    decode_batch_response, decode_request, decode_response, encode_request, encode_response,
    Request, Response,
};
use crate::server::TransactionalRep;

/// Runs a [`TransactionalRep`] as an RPC server at `node`. Returns the
/// handle that stops the serving thread.
pub fn serve_rep(net: Arc<Network>, node: NodeId, rep: Arc<TransactionalRep>) -> ServerHandle {
    let obs = repdir_obs::global();
    let requests = obs.counter("rep.requests");
    let batch_served = obs.counter("rpc.batch.served");
    let batch_parts = obs.counter("rpc.batch.served_parts");
    serve(net, node, move |payload| {
        requests.inc();
        let _span = obs.span("rep.handle");
        let response = match decode_request(payload) {
            Err(e) => Response::Err(RepError::Storage(format!("bad request: {e}"))),
            Ok(req) => {
                if let Request::Batch(parts) = &req {
                    batch_served.inc();
                    batch_parts.add(parts.len() as u64);
                }
                dispatch(&rep, req)
            }
        };
        encode_response(&response)
    })
}

fn dispatch(rep: &TransactionalRep, req: Request) -> Response {
    fn wrap<T>(r: RepResult<T>, f: impl FnOnce(T) -> Response) -> Response {
        match r {
            Ok(v) => f(v),
            Err(e) => Response::Err(e),
        }
    }
    match req {
        Request::Ping => wrap(rep.ping(), |()| Response::Ok),
        Request::Begin(t) => wrap(rep.begin(t), |()| Response::Ok),
        Request::Lookup(t, k) => wrap(rep.lookup(t, &k), Response::Lookup),
        Request::Predecessor(t, k) => wrap(rep.predecessor(t, &k), Response::Neighbor),
        Request::Successor(t, k) => wrap(rep.successor(t, &k), Response::Neighbor),
        Request::PredecessorChain(t, k, limit) => wrap(
            rep.predecessor_chain(t, &k, limit as usize),
            Response::Chain,
        ),
        Request::SuccessorChain(t, k, limit) => {
            wrap(rep.successor_chain(t, &k, limit as usize), Response::Chain)
        }
        Request::Insert(t, k, v, val) => wrap(rep.insert(t, &k, v, &val), Response::Insert),
        Request::Coalesce(t, l, h, v) => wrap(rep.coalesce(t, &l, &h, v), Response::Coalesce),
        Request::Commit(t) => wrap(rep.commit(t), |()| Response::Ok),
        Request::Abort(t) => {
            rep.abort(t);
            Response::Ok
        }
        // Sub-requests are dispatched in order; a failing sub-request
        // becomes a `Response::Err` part, and the client fails the whole
        // envelope on the first one it finds.
        Request::Batch(reqs) => {
            Response::Batch(reqs.into_iter().map(|r| dispatch(rep, r)).collect())
        }
        // Anti-entropy endpoints: read-only, no coordinator transaction.
        Request::Summary { level, path } => {
            wrap(rep.summary_children(level, path), Response::Summary)
        }
        Request::Pull { bucket } => wrap(rep.repair_bucket(bucket), Response::Pull),
        // Snapshot catch-up endpoints: read-only, cursor-addressed.
        Request::SnapshotBegin => wrap(rep.snapshot_manifest(), Response::SnapshotManifest),
        Request::SnapshotChunk { after, max } => wrap(
            rep.snapshot_chunk(after.as_ref(), max),
            Response::SnapshotChunk,
        ),
    }
}

/// A transaction's handle to a representative served across the network.
///
/// RPC failures (timeout, unreachable) surface as
/// [`RepError::Unavailable`] — exactly how the suite treats a
/// representative it cannot gather into a quorum. One `RemoteSessionClient`
/// serves one transaction; the underlying [`RpcClient`] node is shared per
/// suite client.
#[derive(Debug)]
pub struct RemoteSessionClient {
    rpc: Arc<RpcClient>,
    server: NodeId,
    rep_id: RepId,
    txn: TxnId,
    timeout: Duration,
}

impl RemoteSessionClient {
    /// Default per-call deadline.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);

    /// Creates a client for representative `rep_id` served at `server`,
    /// acting for transaction `txn`.
    pub fn new(rpc: Arc<RpcClient>, server: NodeId, rep_id: RepId, txn: TxnId) -> Self {
        RemoteSessionClient {
            rpc,
            server,
            rep_id,
            txn,
            timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// Overrides the per-call deadline.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Registers the transaction at the remote representative.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] on RPC failure.
    pub fn begin(&self) -> RepResult<()> {
        match self.call(Request::Begin(self.txn))? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Commits the transaction at the remote representative.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] on RPC failure.
    pub fn commit(&self) -> RepResult<()> {
        match self.call(Request::Commit(self.txn))? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Aborts the transaction at the remote representative (best effort —
    /// an unreachable representative will roll back when its lock timeouts
    /// fire or it restarts).
    pub fn abort(&self) {
        let _ = self.call(Request::Abort(self.txn));
    }

    fn call(&self, req: Request) -> RepResult<Response> {
        let reply = self
            .rpc
            .call(self.server, encode_request(&req), self.timeout)
            .map_err(|_| RepError::Unavailable)?;
        let resp =
            decode_response(&reply).map_err(|e| RepError::Storage(format!("bad response: {e}")))?;
        match resp {
            Response::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

fn unexpected(resp: Response) -> RepError {
    RepError::Storage(format!("protocol violation: unexpected response {resp:?}"))
}

impl RepClient for RemoteSessionClient {
    fn id(&self) -> RepId {
        self.rep_id
    }

    fn ping(&self) -> RepResult<()> {
        match self.call(Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
        match self.call(Request::Lookup(self.txn, key.clone()))? {
            Response::Lookup(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    fn predecessor(&self, key: &Key) -> RepResult<NeighborReply> {
        match self.call(Request::Predecessor(self.txn, key.clone()))? {
            Response::Neighbor(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    fn successor(&self, key: &Key) -> RepResult<NeighborReply> {
        match self.call(Request::Successor(self.txn, key.clone()))? {
            Response::Neighbor(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    fn predecessor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        match self.call(Request::PredecessorChain(
            self.txn,
            key.clone(),
            limit as u32,
        ))? {
            Response::Chain(chain) => Ok(chain),
            other => Err(unexpected(other)),
        }
    }

    fn successor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        match self.call(Request::SuccessorChain(self.txn, key.clone(), limit as u32))? {
            Response::Chain(chain) => Ok(chain),
            other => Err(unexpected(other)),
        }
    }

    fn insert(&self, key: &Key, version: Version, value: &Value) -> RepResult<InsertOutcome> {
        match self.call(Request::Insert(
            self.txn,
            key.clone(),
            version,
            value.clone(),
        ))? {
            Response::Insert(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    fn coalesce(&self, low: &Key, high: &Key, version: Version) -> RepResult<CoalesceOutcome> {
        match self.call(Request::Coalesce(
            self.txn,
            low.clone(),
            high.clone(),
            version,
        ))? {
            Response::Coalesce(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    /// Packs the whole batch into one `Request::Batch` envelope — one
    /// message and one round trip regardless of how many probes it carries,
    /// which is the point of batched scatter envelopes.
    fn batch(&self, reqs: &[BatchRequest]) -> RepResult<Vec<BatchReply>> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let wire: Vec<Request> = reqs
            .iter()
            .map(|r| match r {
                BatchRequest::Lookup(k) => Request::Lookup(self.txn, k.clone()),
                BatchRequest::PredecessorChain(k, limit) => {
                    Request::PredecessorChain(self.txn, k.clone(), *limit as u32)
                }
                BatchRequest::SuccessorChain(k, limit) => {
                    Request::SuccessorChain(self.txn, k.clone(), *limit as u32)
                }
                BatchRequest::Insert(k, v, val) => {
                    Request::Insert(self.txn, k.clone(), *v, val.clone())
                }
            })
            .collect();
        let obs = repdir_obs::global();
        obs.counter("rpc.batch.calls").inc();
        obs.counter("rpc.batch.parts").add(reqs.len() as u64);
        // Decode through the arity-checking helper: a reply that cannot
        // answer exactly this envelope is a protocol violation, never a
        // silent truncation of the tail sub-requests.
        let reply = self
            .rpc
            .call(
                self.server,
                encode_request(&Request::Batch(wire)),
                self.timeout,
            )
            .map_err(|_| RepError::Unavailable)?;
        let parts = match decode_batch_response(&reply, reqs.len())
            .map_err(|e| RepError::Storage(format!("bad response: {e}")))?
        {
            Response::Batch(parts) => parts,
            Response::Err(e) => return Err(e),
            other => return Err(unexpected(other)),
        };
        reqs.iter()
            .zip(parts)
            .map(|(req, part)| match (req, part) {
                (BatchRequest::Lookup(_), Response::Lookup(r)) => Ok(BatchReply::Lookup(r)),
                (BatchRequest::Insert(..), Response::Insert(r)) => Ok(BatchReply::Insert(r)),
                (
                    BatchRequest::PredecessorChain(..) | BatchRequest::SuccessorChain(..),
                    Response::Chain(c),
                ) => Ok(BatchReply::Chain(c)),
                (_, Response::Err(e)) => Err(e),
                (_, other) => Err(unexpected(other)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn setup() -> (
        Arc<Network>,
        Arc<TransactionalRep>,
        ServerHandle,
        Arc<RpcClient>,
    ) {
        let net = Arc::new(Network::new(11));
        let rep = TransactionalRep::new(RepId(0));
        let handle = serve_rep(Arc::clone(&net), NodeId(10), Arc::clone(&rep));
        let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
        (net, rep, handle, rpc)
    }

    #[test]
    fn remote_round_trip() {
        let (_net, rep, _handle, rpc) = setup();
        let client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        client.begin().unwrap();
        client.ping().unwrap();
        client
            .insert(&k("a"), Version::new(1), &Value::from("A"))
            .unwrap();
        assert!(client.lookup(&k("a")).unwrap().is_present());
        assert_eq!(client.successor(&Key::Low).unwrap().key, k("a"));
        assert_eq!(client.predecessor(&Key::High).unwrap().key, k("a"));
        client.commit().unwrap();
        assert_eq!(rep.len(), 1);
    }

    #[test]
    fn remote_errors_propagate_with_structure() {
        let (_net, _rep, _handle, rpc) = setup();
        let client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        client.begin().unwrap();
        // Sentinel violation crosses the wire intact.
        let err = client
            .insert(&Key::Low, Version::new(1), &Value::empty())
            .unwrap_err();
        assert!(matches!(err, RepError::SentinelViolation { .. }));
        // Coalesce boundary error carries the key.
        let err = client
            .coalesce(&k("nope"), &Key::High, Version::new(1))
            .unwrap_err();
        assert_eq!(err, RepError::NoSuchBoundary { key: k("nope") });
        client.abort();
    }

    #[test]
    fn partition_makes_rep_unavailable() {
        let (net, _rep, _handle, rpc) = setup();
        let mut client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        client.set_timeout(Duration::from_millis(50));
        client.begin().unwrap();
        net.partition(&[&[NodeId(0)], &[NodeId(10)]]);
        assert_eq!(client.ping(), Err(RepError::Unavailable));
        assert_eq!(client.lookup(&k("a")), Err(RepError::Unavailable));
        net.heal();
        client.ping().unwrap();
    }

    #[test]
    fn server_side_abort_rolls_back() {
        let (_net, rep, _handle, rpc) = setup();
        let client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        client.begin().unwrap();
        client
            .insert(&k("temp"), Version::new(1), &Value::from("T"))
            .unwrap();
        client.abort();
        assert_eq!(rep.len(), 0);
    }

    #[test]
    fn batch_envelope_is_one_message_with_ordered_replies() {
        let (net, _rep, _handle, rpc) = setup();
        let client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        client.begin().unwrap();
        client
            .insert(&k("a"), Version::new(1), &Value::from("A"))
            .unwrap();
        client
            .insert(&k("c"), Version::new(1), &Value::from("C"))
            .unwrap();
        let before = net.stats().sent;
        let replies = client
            .batch(&[
                BatchRequest::Lookup(k("a")),
                BatchRequest::SuccessorChain(k("a"), 2),
                BatchRequest::PredecessorChain(Key::High, 1),
            ])
            .unwrap();
        // One request plus one response on the fabric for three probes.
        assert_eq!(net.stats().sent - before, 2);
        assert_eq!(replies.len(), 3);
        assert_eq!(
            replies[0],
            BatchReply::Lookup(client.lookup(&k("a")).unwrap())
        );
        assert_eq!(
            replies[1],
            BatchReply::Chain(client.successor_chain(&k("a"), 2).unwrap())
        );
        assert_eq!(
            replies[2],
            BatchReply::Chain(client.predecessor_chain(&Key::High, 1).unwrap())
        );
        // A failing sub-request fails the envelope with its own error.
        let err = client
            .batch(&[BatchRequest::SuccessorChain(Key::High, 1)])
            .unwrap_err();
        assert!(matches!(err, RepError::SentinelViolation { .. }), "{err:?}");
        client.abort();
    }

    #[test]
    fn batch_envelope_carries_inserts() {
        let (net, rep, _handle, rpc) = setup();
        let client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        client.begin().unwrap();
        let before = net.stats().sent;
        let replies = client
            .batch(&[
                BatchRequest::Insert(k("a"), Version::new(1), Value::from("A")),
                BatchRequest::Insert(k("b"), Version::new(2), Value::from("B")),
                BatchRequest::Lookup(k("a")),
            ])
            .unwrap();
        // Two writes and a probe still ride one request/response pair.
        assert_eq!(net.stats().sent - before, 2);
        assert_eq!(replies.len(), 3);
        assert!(matches!(
            replies[0],
            BatchReply::Insert(InsertOutcome::Created { .. })
        ));
        assert!(matches!(
            replies[1],
            BatchReply::Insert(InsertOutcome::Created { .. })
        ));
        match &replies[2] {
            BatchReply::Lookup(r) => {
                assert!(r.is_present());
                assert_eq!(r.version(), Version::new(1));
            }
            other => panic!("expected lookup reply, got {other:?}"),
        }
        client.commit().unwrap();
        assert_eq!(rep.len(), 2);
    }

    #[test]
    fn short_batch_reply_is_a_protocol_error_not_a_truncation() {
        // A rigged server answers every batch with a single-part reply; the
        // client must refuse to zip it against a longer request list.
        let net = Arc::new(Network::new(13));
        let _handle = serve(Arc::clone(&net), NodeId(10), move |payload| {
            let resp = match decode_request(payload) {
                Ok(Request::Batch(_)) => Response::Batch(vec![Response::Ok]),
                _ => Response::Ok,
            };
            encode_response(&resp)
        });
        let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
        let client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        let err = client
            .batch(&[BatchRequest::Lookup(k("a")), BatchRequest::Lookup(k("b"))])
            .unwrap_err();
        match err {
            RepError::Storage(msg) => assert!(msg.contains("arity"), "{msg}"),
            other => panic!("expected storage error, got {other:?}"),
        }
    }

    #[test]
    fn remote_client_is_send_and_sync() {
        // The suite's fan-out executor lends &RemoteSessionClient to scoped
        // threads, so concurrent in-flight calls through one client (and
        // one shared RpcClient) must be sound.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RemoteSessionClient>();
    }

    #[test]
    fn concurrent_in_flight_calls_share_one_client() {
        let (_net, _rep, _handle, rpc) = setup();
        let client = RemoteSessionClient::new(rpc, NodeId(10), RepId(0), TxnId(1));
        client.begin().unwrap();
        for i in 0..8u32 {
            client
                .insert(
                    &Key::from(format!("k{i}").as_str()),
                    Version::new(1),
                    &Value::from("v"),
                )
                .unwrap();
        }
        // Eight threads issue overlapping lookups and pings through the
        // same client; the RPC router must hand every reply to its caller.
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let client = &client;
                scope.spawn(move || {
                    for _ in 0..20 {
                        client.ping().unwrap();
                        let key = Key::from(format!("k{t}").as_str());
                        assert!(client.lookup(&key).unwrap().is_present());
                    }
                });
            }
        });
        client.abort();
    }

    #[test]
    fn suite_runs_over_remote_clients() {
        use repdir_core::suite::{DirSuite, FixedPolicy, SuiteConfig};
        let net = Arc::new(Network::new(12));
        let mut handles = Vec::new();
        let mut reps = Vec::new();
        for i in 0..3u32 {
            let rep = TransactionalRep::new(RepId(i));
            handles.push(serve_rep(
                Arc::clone(&net),
                NodeId(100 + i),
                Arc::clone(&rep),
            ));
            reps.push(rep);
        }
        let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
        let txn = TxnId(1);
        let clients: Vec<RemoteSessionClient> = (0..3u32)
            .map(|i| RemoteSessionClient::new(Arc::clone(&rpc), NodeId(100 + i), RepId(i), txn))
            .collect();
        for c in &clients {
            c.begin().unwrap();
        }
        let mut suite = DirSuite::new(
            clients,
            SuiteConfig::symmetric(3, 2, 2).unwrap(),
            Box::new(FixedPolicy::new()),
        )
        .unwrap();
        suite.insert(&k("net"), &Value::from("works")).unwrap();
        assert!(suite.lookup(&k("net")).unwrap().present);
        suite.delete(&k("net")).unwrap();
        assert!(!suite.lookup(&k("net")).unwrap().present);
        for i in 0..3 {
            suite.member(i).commit().unwrap();
        }
        // Reps 0 and 1 were the fixed quorum: both saw the traffic.
        assert!(reps[0].snapshot().is_empty());
    }
}
