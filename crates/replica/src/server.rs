//! The full transactional directory representative: durable gap-versioned
//! state + Figure-6 range locking + per-transaction undo.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use repdir_core::sync::Mutex;
use repdir_core::{
    CoalesceOutcome, GapMap, InsertOutcome, Key, LookupReply, NeighborReply, RepError, RepId,
    RepResult, Value, Version,
};
use repdir_rangelock::{DeadlockDomain, KeyRange, LockError, LockMode, LockStats, RangeLockTable};
use repdir_storage::{Backend, DurableState, SimDisk};
use repdir_txn::TxnId;

/// A directory representative with the paper's full §3.1 semantics:
///
/// * every operation acquires the range lock prescribed by Fig. 6 —
///   `RepLookup(x, x)` for lookups, `RepLookup(y, x)` / `RepLookup(x, y)`
///   for neighbor queries (where `y` is the key returned), `RepModify(x, x)`
///   for inserts, `RepModify(l, h)` for coalesces;
/// * locks are held until [`commit`](TransactionalRep::commit) /
///   [`abort`](TransactionalRep::abort) (strict two-phase locking);
/// * mutations are durable through the write-ahead log; aborts roll back via
///   undo records; [`crash_and_recover`](TransactionalRep::crash_and_recover)
///   exercises the recovery path.
///
/// # Examples
///
/// ```
/// use repdir_core::{Key, Value, Version};
/// use repdir_replica::TransactionalRep;
/// use repdir_txn::TxnId;
///
/// let rep = TransactionalRep::new(repdir_core::RepId(0));
/// let t = TxnId(1);
/// rep.begin(t)?;
/// rep.insert(t, &Key::from("a"), Version::new(1), &Value::from("A"))?;
/// rep.commit(t)?;
/// # Ok::<(), repdir_core::RepError>(())
/// ```
#[derive(Debug)]
pub struct TransactionalRep {
    id: RepId,
    state: Mutex<DurableState>,
    locks: RangeLockTable,
    lock_timeout: Duration,
    available: AtomicBool,
}

impl TransactionalRep {
    /// Default time a lock request waits before giving up. Long enough for
    /// short transactions to drain, short enough to break undetected
    /// cross-representative deadlocks.
    pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_millis(500);

    /// Creates an empty representative on a fresh simulated disk.
    pub fn new(id: RepId) -> Arc<Self> {
        Self::with_disk(id, Arc::new(SimDisk::new()))
    }

    /// Creates an empty representative logging to the given disk.
    pub fn with_disk(id: RepId, disk: Arc<SimDisk>) -> Arc<Self> {
        Self::with_disk_and_backend(id, disk, Backend::GapMap)
    }

    /// Creates an empty representative with an explicit state
    /// representation — e.g. the paper's §5 B-tree
    /// ([`Backend::GapBTree`]).
    pub fn with_disk_and_backend(id: RepId, disk: Arc<SimDisk>, backend: Backend) -> Arc<Self> {
        Arc::new(TransactionalRep {
            id,
            state: Mutex::new(DurableState::with_backend(disk, backend)),
            locks: RangeLockTable::new(),
            lock_timeout: Self::DEFAULT_LOCK_TIMEOUT,
            available: AtomicBool::new(true),
        })
    }

    /// Recovers a representative from a disk's durable log.
    ///
    /// # Errors
    ///
    /// [`RepError::Storage`] if the log is unreadable.
    pub fn recover(id: RepId, disk: Arc<SimDisk>) -> Result<Arc<Self>, RepError> {
        let state = DurableState::recover(disk).map_err(|e| RepError::Storage(e.to_string()))?;
        Ok(Arc::new(TransactionalRep {
            id,
            state: Mutex::new(state),
            locks: RangeLockTable::new(),
            lock_timeout: Self::DEFAULT_LOCK_TIMEOUT,
            available: AtomicBool::new(true),
        }))
    }

    /// This representative's identity.
    pub fn id(&self) -> RepId {
        self.id
    }

    /// Injects or heals a failure: while unavailable every operation
    /// (including pings) fails with [`RepError::Unavailable`].
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::SeqCst);
    }

    /// Whether the representative currently serves requests.
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    /// Lock-manager counters (for the concurrency experiments).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Registers this representative's lock table in a shared
    /// [`DeadlockDomain`]. A suite's parallel write waves can block at
    /// several representatives at once, so two transactions can deadlock
    /// with each waits-for edge at a *different* representative — invisible
    /// to every per-table cycle check. Joining all of a directory's
    /// representatives into one domain lets such cycles be detected and a
    /// victim wounded in milliseconds instead of waiting out the lock
    /// timeout.
    pub fn join_deadlock_domain(&self, domain: &Arc<DeadlockDomain>) {
        self.locks.join_domain(domain);
    }

    /// A detached copy of current state (test/statistics aid).
    pub fn snapshot(&self) -> GapMap {
        self.state.lock().map()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulates a process crash (all volatile state — locks, undo,
    /// unsynced log tail — vanishes) followed by recovery from the durable
    /// log.
    ///
    /// Call only while quiesced in tests; in-flight transactions on other
    /// threads would observe their locks evaporating.
    ///
    /// # Errors
    ///
    /// [`RepError::Storage`] if the durable log cannot be replayed.
    pub fn crash_and_recover(&self) -> Result<(), RepError> {
        let mut state = self.state.lock();
        let disk = Arc::clone(state.disk());
        disk.crash(0);
        *state = DurableState::recover(disk).map_err(|e| RepError::Storage(e.to_string()))?;
        self.locks.reset();
        Ok(())
    }

    /// Registers a transaction at this representative.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn begin(&self, txn: TxnId) -> RepResult<()> {
        self.check_up()?;
        self.state.lock().begin(txn);
        Ok(())
    }

    /// `DirRepLookup(x)` under a `RepLookup(x, x)` lock.
    ///
    /// # Errors
    ///
    /// Availability, lock ([`RepError::LockTimeout`] /
    /// [`RepError::Deadlock`]), and state errors.
    pub fn lookup(&self, txn: TxnId, key: &Key) -> RepResult<LookupReply> {
        self.check_up()?;
        self.acquire(txn, LockMode::Lookup, KeyRange::point(key.clone()))?;
        Ok(self.state.lock().lookup(key))
    }

    /// `DirRepPredecessor(x)` under `RepLookup(y, x)`, `y` being the key
    /// returned. The lock target depends on the answer, so the
    /// representative peeks, locks, and re-validates (the held lock then
    /// pins the range, bounding the loop).
    ///
    /// # Errors
    ///
    /// As [`lookup`](TransactionalRep::lookup), plus
    /// [`RepError::SentinelViolation`] for `LOW`.
    pub fn predecessor(&self, txn: TxnId, key: &Key) -> RepResult<NeighborReply> {
        self.check_up()?;
        loop {
            let peek = self.state.lock().predecessor(key)?;
            self.acquire(
                txn,
                LockMode::Lookup,
                KeyRange::new(peek.key.clone(), key.clone()),
            )?;
            let reply = self.state.lock().predecessor(key)?;
            if reply.key == peek.key {
                return Ok(reply);
            }
            // The neighbor moved between peek and lock; the lock now held
            // freezes the old range, so one more round settles it.
        }
    }

    /// `DirRepSuccessor(x)` under `RepLookup(x, y)`.
    ///
    /// # Errors
    ///
    /// As [`predecessor`](TransactionalRep::predecessor), with `HIGH`
    /// rejected.
    pub fn successor(&self, txn: TxnId, key: &Key) -> RepResult<NeighborReply> {
        self.check_up()?;
        loop {
            let peek = self.state.lock().successor(key)?;
            self.acquire(
                txn,
                LockMode::Lookup,
                KeyRange::new(key.clone(), peek.key.clone()),
            )?;
            let reply = self.state.lock().successor(key)?;
            if reply.key == peek.key {
                return Ok(reply);
            }
        }
    }

    /// Up to `limit` successive `DirRepPredecessor` results in one request
    /// (the §4 batching optimization), each acquiring its `RepLookup` range
    /// lock exactly as the single-step operation would.
    ///
    /// # Errors
    ///
    /// As [`predecessor`](TransactionalRep::predecessor).
    pub fn predecessor_chain(
        &self,
        txn: TxnId,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<NeighborReply>> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.predecessor(txn, &probe)?;
            let done = nb.key == Key::Low;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// Up to `limit` successive `DirRepSuccessor` results in one request.
    ///
    /// # Errors
    ///
    /// As [`successor`](TransactionalRep::successor).
    pub fn successor_chain(
        &self,
        txn: TxnId,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<NeighborReply>> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.successor(txn, &probe)?;
            let done = nb.key == Key::High;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// `DirRepInsert(x, v, z)` under `RepModify(x, x)`.
    ///
    /// # Errors
    ///
    /// Availability, lock, and state errors
    /// ([`RepError::SentinelViolation`] for sentinels,
    /// [`RepError::TransactionAborted`] for unregistered transactions).
    pub fn insert(
        &self,
        txn: TxnId,
        key: &Key,
        version: Version,
        value: &Value,
    ) -> RepResult<InsertOutcome> {
        self.check_up()?;
        self.acquire(txn, LockMode::Modify, KeyRange::point(key.clone()))?;
        self.state.lock().insert(txn, key, version, value.clone())
    }

    /// `DirRepCoalesce(l, h, v)` under `RepModify(l, h)`.
    ///
    /// # Errors
    ///
    /// Availability, lock, and state errors ([`RepError::InvalidRange`],
    /// [`RepError::NoSuchBoundary`]).
    pub fn coalesce(
        &self,
        txn: TxnId,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> RepResult<CoalesceOutcome> {
        self.check_up()?;
        if low >= high {
            return Err(RepError::InvalidRange {
                low: low.clone(),
                high: high.clone(),
            });
        }
        self.acquire(
            txn,
            LockMode::Modify,
            KeyRange::new(low.clone(), high.clone()),
        )?;
        self.state.lock().coalesce(txn, low, high, version)
    }

    /// Commits the transaction's effects at this representative (durable
    /// after the WAL sync) and releases its locks.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn commit(&self, txn: TxnId) -> RepResult<()> {
        self.check_up()?;
        self.state.lock().commit(txn);
        self.locks.release_all(txn);
        Ok(())
    }

    /// Rolls the transaction back at this representative and releases its
    /// locks. Safe to call regardless of the transaction's state there.
    pub fn abort(&self, txn: TxnId) {
        // Abort proceeds even on an "unavailable" representative: it is the
        // cleanup path for failures.
        self.state.lock().abort(txn);
        self.locks.release_all(txn);
    }

    /// Pings the representative (quorum collection).
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn ping(&self) -> RepResult<()> {
        self.check_up()
    }

    fn check_up(&self) -> RepResult<()> {
        if self.is_available() {
            Ok(())
        } else {
            Err(RepError::Unavailable)
        }
    }

    fn acquire(&self, txn: TxnId, mode: LockMode, range: KeyRange) -> RepResult<()> {
        self.locks
            .acquire(txn, mode, range, self.lock_timeout)
            .map_err(|e| match e {
                LockError::Timeout => RepError::LockTimeout,
                LockError::Deadlock => RepError::Deadlock,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn basic_transactional_round_trip() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.insert(t, &k("a"), v(1), &val("A")).unwrap();
        assert!(rep.lookup(t, &k("a")).unwrap().is_present());
        rep.commit(t).unwrap();
        assert_eq!(rep.len(), 1);
        assert!(!rep.is_empty());
        assert_eq!(rep.id(), RepId(0));
    }

    #[test]
    fn abort_rolls_back_and_releases_locks() {
        let rep = TransactionalRep::new(RepId(0));
        let t1 = TxnId(1);
        rep.begin(t1).unwrap();
        rep.insert(t1, &k("a"), v(1), &val("A")).unwrap();
        rep.abort(t1);
        assert_eq!(rep.len(), 0);

        // The lock released by abort is immediately available.
        let t2 = TxnId(2);
        rep.begin(t2).unwrap();
        rep.insert(t2, &k("a"), v(1), &val("A2")).unwrap();
        rep.commit(t2).unwrap();
        assert_eq!(rep.snapshot().lookup(&k("a")).value(), Some(&val("A2")));
    }

    #[test]
    fn conflicting_writers_serialize_via_locks() {
        let rep = TransactionalRep::new(RepId(0));
        let t1 = TxnId(1);
        rep.begin(t1).unwrap();
        rep.insert(t1, &k("x"), v(1), &val("first")).unwrap();

        // A second transaction's conflicting insert must wait; with t1
        // holding the lock past the timeout, it fails.
        let t2 = TxnId(2);
        rep.begin(t2).unwrap();
        let err = rep.insert(t2, &k("x"), v(2), &val("second")).unwrap_err();
        assert_eq!(err, RepError::LockTimeout);
        rep.commit(t1).unwrap();

        // After release it succeeds.
        rep.insert(t2, &k("x"), v(2), &val("second")).unwrap();
        rep.commit(t2).unwrap();
        assert_eq!(rep.snapshot().lookup(&k("x")).version(), v(2));
    }

    #[test]
    fn readers_do_not_block_readers() {
        let rep = TransactionalRep::new(RepId(0));
        let t0 = TxnId(1);
        rep.begin(t0).unwrap();
        rep.insert(t0, &k("a"), v(1), &val("A")).unwrap();
        rep.commit(t0).unwrap();

        let mut handles = Vec::new();
        for i in 2..8u64 {
            let rep = Arc::clone(&rep);
            handles.push(thread::spawn(move || {
                let t = TxnId(i);
                rep.begin(t).unwrap();
                for _ in 0..50 {
                    assert!(rep.lookup(t, &k("a")).unwrap().is_present());
                }
                rep.commit(t).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn neighbor_ops_lock_the_scanned_range() {
        let rep = TransactionalRep::new(RepId(0));
        let setup = TxnId(1);
        rep.begin(setup).unwrap();
        rep.insert(setup, &k("b"), v(1), &val("B")).unwrap();
        rep.insert(setup, &k("f"), v(1), &val("F")).unwrap();
        rep.commit(setup).unwrap();

        let reader = TxnId(2);
        rep.begin(reader).unwrap();
        let nb = rep.predecessor(reader, &k("f")).unwrap();
        assert_eq!(nb.key, k("b"));
        // The reader now holds RepLookup(b, f): an insert of "d" (inside
        // the scanned range) must block; an insert of "z" must not.
        let writer = TxnId(3);
        rep.begin(writer).unwrap();
        assert_eq!(
            rep.insert(writer, &k("d"), v(1), &val("D")).unwrap_err(),
            RepError::LockTimeout
        );
        rep.insert(writer, &k("z"), v(1), &val("Z")).unwrap();
        rep.commit(reader).unwrap();
        rep.commit(writer).unwrap();
    }

    #[test]
    fn unavailable_rep_rejects_operations_but_allows_abort() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.insert(t, &k("a"), v(1), &val("A")).unwrap();
        rep.set_available(false);
        assert!(!rep.is_available());
        assert_eq!(rep.ping(), Err(RepError::Unavailable));
        assert_eq!(rep.lookup(t, &k("a")), Err(RepError::Unavailable));
        assert_eq!(rep.begin(TxnId(2)), Err(RepError::Unavailable));
        assert_eq!(rep.commit(t), Err(RepError::Unavailable));
        // Abort still works — it is how coordinators clean up after
        // failures.
        rep.abort(t);
        rep.set_available(true);
        assert_eq!(rep.len(), 0);
    }

    #[test]
    fn crash_loses_uncommitted_keeps_committed() {
        let rep = TransactionalRep::new(RepId(0));
        let t1 = TxnId(1);
        rep.begin(t1).unwrap();
        rep.insert(t1, &k("durable"), v(1), &val("D")).unwrap();
        rep.commit(t1).unwrap();

        let t2 = TxnId(2);
        rep.begin(t2).unwrap();
        rep.insert(t2, &k("volatile"), v(1), &val("V")).unwrap();

        rep.crash_and_recover().unwrap();
        let snap = rep.snapshot();
        assert!(snap.lookup(&k("durable")).is_present());
        assert!(!snap.lookup(&k("volatile")).is_present());

        // The representative serves fresh transactions after recovery.
        let t3 = TxnId(3);
        rep.begin(t3).unwrap();
        rep.insert(t3, &k("after"), v(1), &val("A")).unwrap();
        rep.commit(t3).unwrap();
        assert_eq!(rep.len(), 2);
    }

    #[test]
    fn recover_constructor_reads_existing_disk() {
        let disk = Arc::new(SimDisk::new());
        {
            let rep = TransactionalRep::with_disk(RepId(0), Arc::clone(&disk));
            let t = TxnId(1);
            rep.begin(t).unwrap();
            rep.insert(t, &k("persisted"), v(1), &val("P")).unwrap();
            rep.commit(t).unwrap();
        }
        let rep2 = TransactionalRep::recover(RepId(0), disk).unwrap();
        assert!(rep2.snapshot().lookup(&k("persisted")).is_present());
    }

    #[test]
    fn lock_stats_exposed() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.lookup(t, &k("a")).unwrap();
        rep.commit(t).unwrap();
        assert!(rep.lock_stats().granted >= 1);
    }
}
