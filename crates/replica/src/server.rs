//! The full transactional directory representative: durable gap-versioned
//! state + Figure-6 range locking + per-transaction undo.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use repdir_core::suite::StaleVote;
use repdir_core::sync::Mutex;
use repdir_core::{
    CoalesceOutcome, GapMap, InsertOutcome, Key, LookupReply, NeighborReply, RepError, RepId,
    RepResult, UserKey, Value, Version,
};
use repdir_rangelock::{DeadlockDomain, KeyRange, LockError, LockMode, LockStats, RangeLockTable};
use repdir_repair::{
    bucket_high, bucket_low, entry_digest, fold_children, low_gap_digest, ApplyStats, BucketEntry,
    BucketView, Digest, GapAnchor, RepairPlan, SummaryCache,
};
use repdir_snapshot::{SnapshotChunk, SnapshotManifest};
use repdir_storage::{decode_log, stale_votes_after, Backend, DurableState, SimDisk};
use repdir_txn::TxnId;

/// Transaction ids for internal repair transactions, carved out of the top
/// of the id space so they never collide with coordinator-assigned ids.
fn next_repair_txn() -> TxnId {
    static NEXT: AtomicU64 = AtomicU64::new(1 << 62);
    TxnId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// A directory representative with the paper's full §3.1 semantics:
///
/// * every operation acquires the range lock prescribed by Fig. 6 —
///   `RepLookup(x, x)` for lookups, `RepLookup(y, x)` / `RepLookup(x, y)`
///   for neighbor queries (where `y` is the key returned), `RepModify(x, x)`
///   for inserts, `RepModify(l, h)` for coalesces;
/// * locks are held until [`commit`](TransactionalRep::commit) /
///   [`abort`](TransactionalRep::abort) (strict two-phase locking);
/// * mutations are durable through the write-ahead log; aborts roll back via
///   undo records; [`crash_and_recover`](TransactionalRep::crash_and_recover)
///   exercises the recovery path.
///
/// # Examples
///
/// ```
/// use repdir_core::{Key, Value, Version};
/// use repdir_replica::TransactionalRep;
/// use repdir_txn::TxnId;
///
/// let rep = TransactionalRep::new(repdir_core::RepId(0));
/// let t = TxnId(1);
/// rep.begin(t)?;
/// rep.insert(t, &Key::from("a"), Version::new(1), &Value::from("A"))?;
/// rep.commit(t)?;
/// # Ok::<(), repdir_core::RepError>(())
/// ```
pub struct TransactionalRep {
    id: RepId,
    state: Mutex<DurableState>,
    locks: RangeLockTable,
    lock_timeout: Duration,
    available: AtomicBool,
    summary: SummaryCache,
    /// Fired whenever this representative comes back — healed from an
    /// injected failure or recovered from a crash. The repair layer hooks
    /// this to snap its driver's pacing to the floor (see
    /// `ReplicatedDirectory::spawn_repair_drivers`).
    recovery_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for TransactionalRep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionalRep")
            .field("id", &self.id)
            .field("available", &self.is_available())
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl TransactionalRep {
    /// Default time a lock request waits before giving up. Long enough for
    /// short transactions to drain, short enough to break undetected
    /// cross-representative deadlocks.
    pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_millis(500);

    /// Creates an empty representative on a fresh simulated disk.
    pub fn new(id: RepId) -> Arc<Self> {
        Self::with_disk(id, Arc::new(SimDisk::new()))
    }

    /// Creates an empty representative logging to the given disk.
    pub fn with_disk(id: RepId, disk: Arc<SimDisk>) -> Arc<Self> {
        Self::with_disk_and_backend(id, disk, Backend::GapMap)
    }

    /// Creates an empty representative with an explicit state
    /// representation — e.g. the paper's §5 B-tree
    /// ([`Backend::GapBTree`]).
    pub fn with_disk_and_backend(id: RepId, disk: Arc<SimDisk>, backend: Backend) -> Arc<Self> {
        Arc::new(TransactionalRep {
            id,
            state: Mutex::new(DurableState::with_backend(disk, backend)),
            locks: RangeLockTable::new(),
            lock_timeout: Self::DEFAULT_LOCK_TIMEOUT,
            available: AtomicBool::new(true),
            summary: SummaryCache::new(),
            recovery_hook: Mutex::new(None),
        })
    }

    /// Recovers a representative from a disk's durable log.
    ///
    /// # Errors
    ///
    /// [`RepError::Storage`] if the log is unreadable.
    pub fn recover(id: RepId, disk: Arc<SimDisk>) -> Result<Arc<Self>, RepError> {
        let state = DurableState::recover(disk).map_err(|e| RepError::Storage(e.to_string()))?;
        Ok(Arc::new(TransactionalRep {
            id,
            state: Mutex::new(state),
            locks: RangeLockTable::new(),
            lock_timeout: Self::DEFAULT_LOCK_TIMEOUT,
            available: AtomicBool::new(true),
            summary: SummaryCache::new(),
            recovery_hook: Mutex::new(None),
        }))
    }

    /// This representative's identity.
    pub fn id(&self) -> RepId {
        self.id
    }

    /// Injects or heals a failure: while unavailable every operation
    /// (including pings) fails with [`RepError::Unavailable`]. Healing (a
    /// false→true transition) fires the recovery hook.
    pub fn set_available(&self, available: bool) {
        let was = self.available.swap(available, Ordering::SeqCst);
        if available && !was {
            self.fire_recovery_hook();
        }
    }

    /// Installs (or clears) the hook fired when this representative comes
    /// back up — after [`set_available`](TransactionalRep::set_available)
    /// heals an injected failure or
    /// [`crash_and_recover`](TransactionalRep::crash_and_recover) replays
    /// the log. The hook runs on the caller's thread and must not block.
    pub fn set_recovery_hook(&self, hook: Option<Box<dyn Fn() + Send + Sync>>) {
        *self.recovery_hook.lock() = hook;
    }

    fn fire_recovery_hook(&self) {
        if let Some(hook) = self.recovery_hook.lock().as_ref() {
            hook();
        }
    }

    /// Whether the representative currently serves requests.
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    /// Lock-manager counters (for the concurrency experiments).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Registers this representative's lock table in a shared
    /// [`DeadlockDomain`]. A suite's parallel write waves can block at
    /// several representatives at once, so two transactions can deadlock
    /// with each waits-for edge at a *different* representative — invisible
    /// to every per-table cycle check. Joining all of a directory's
    /// representatives into one domain lets such cycles be detected and a
    /// victim wounded in milliseconds instead of waiting out the lock
    /// timeout.
    pub fn join_deadlock_domain(&self, domain: &Arc<DeadlockDomain>) {
        self.locks.join_domain(domain);
    }

    /// A detached copy of current state (test/statistics aid).
    pub fn snapshot(&self) -> GapMap {
        self.state.lock().map()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulates a process crash (all volatile state — locks, undo,
    /// unsynced log tail — vanishes) followed by recovery from the durable
    /// log.
    ///
    /// Call only while quiesced in tests; in-flight transactions on other
    /// threads would observe their locks evaporating.
    ///
    /// # Errors
    ///
    /// [`RepError::Storage`] if the durable log cannot be replayed.
    pub fn crash_and_recover(&self) -> Result<(), RepError> {
        {
            let mut state = self.state.lock();
            let disk = Arc::clone(state.disk());
            disk.crash(0);
            *state = DurableState::recover(disk).map_err(|e| RepError::Storage(e.to_string()))?;
            self.locks.reset();
        }
        // Outside the state guard: summary digests lock summary-then-state,
        // so marking must never happen state-then-summary.
        self.summary.mark_all();
        self.fire_recovery_hook();
        Ok(())
    }

    /// Registers a transaction at this representative.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn begin(&self, txn: TxnId) -> RepResult<()> {
        self.check_up()?;
        self.state.lock().begin(txn);
        Ok(())
    }

    /// `DirRepLookup(x)` under a `RepLookup(x, x)` lock.
    ///
    /// # Errors
    ///
    /// Availability, lock ([`RepError::LockTimeout`] /
    /// [`RepError::Deadlock`]), and state errors.
    pub fn lookup(&self, txn: TxnId, key: &Key) -> RepResult<LookupReply> {
        self.check_up()?;
        self.acquire(txn, LockMode::Lookup, KeyRange::point(key.clone()))?;
        Ok(self.state.lock().lookup(key))
    }

    /// `DirRepPredecessor(x)` under `RepLookup(y, x)`, `y` being the key
    /// returned. The lock target depends on the answer, so the
    /// representative peeks, locks, and re-validates (the held lock then
    /// pins the range, bounding the loop).
    ///
    /// # Errors
    ///
    /// As [`lookup`](TransactionalRep::lookup), plus
    /// [`RepError::SentinelViolation`] for `LOW`.
    pub fn predecessor(&self, txn: TxnId, key: &Key) -> RepResult<NeighborReply> {
        self.check_up()?;
        loop {
            let peek = self.state.lock().predecessor(key)?;
            self.acquire(
                txn,
                LockMode::Lookup,
                KeyRange::new(peek.key.clone(), key.clone()),
            )?;
            let reply = self.state.lock().predecessor(key)?;
            if reply.key == peek.key {
                return Ok(reply);
            }
            // The neighbor moved between peek and lock; the lock now held
            // freezes the old range, so one more round settles it.
        }
    }

    /// `DirRepSuccessor(x)` under `RepLookup(x, y)`.
    ///
    /// # Errors
    ///
    /// As [`predecessor`](TransactionalRep::predecessor), with `HIGH`
    /// rejected.
    pub fn successor(&self, txn: TxnId, key: &Key) -> RepResult<NeighborReply> {
        self.check_up()?;
        loop {
            let peek = self.state.lock().successor(key)?;
            self.acquire(
                txn,
                LockMode::Lookup,
                KeyRange::new(key.clone(), peek.key.clone()),
            )?;
            let reply = self.state.lock().successor(key)?;
            if reply.key == peek.key {
                return Ok(reply);
            }
        }
    }

    /// Up to `limit` successive `DirRepPredecessor` results in one request
    /// (the §4 batching optimization), each acquiring its `RepLookup` range
    /// lock exactly as the single-step operation would.
    ///
    /// # Errors
    ///
    /// As [`predecessor`](TransactionalRep::predecessor).
    pub fn predecessor_chain(
        &self,
        txn: TxnId,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<NeighborReply>> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.predecessor(txn, &probe)?;
            let done = nb.key == Key::Low;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// Up to `limit` successive `DirRepSuccessor` results in one request.
    ///
    /// # Errors
    ///
    /// As [`successor`](TransactionalRep::successor).
    pub fn successor_chain(
        &self,
        txn: TxnId,
        key: &Key,
        limit: usize,
    ) -> RepResult<Vec<NeighborReply>> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.successor(txn, &probe)?;
            let done = nb.key == Key::High;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// `DirRepInsert(x, v, z)` under `RepModify(x, x)`.
    ///
    /// # Errors
    ///
    /// Availability, lock, and state errors
    /// ([`RepError::SentinelViolation`] for sentinels,
    /// [`RepError::TransactionAborted`] for unregistered transactions).
    pub fn insert(
        &self,
        txn: TxnId,
        key: &Key,
        version: Version,
        value: &Value,
    ) -> RepResult<InsertOutcome> {
        self.check_up()?;
        self.acquire(txn, LockMode::Modify, KeyRange::point(key.clone()))?;
        let outcome = self.state.lock().insert(txn, key, version, value.clone())?;
        if let Key::User(u) = key {
            self.summary.mark(u.as_bytes());
        }
        Ok(outcome)
    }

    /// `DirRepCoalesce(l, h, v)` under `RepModify(l, h)`.
    ///
    /// # Errors
    ///
    /// Availability, lock, and state errors ([`RepError::InvalidRange`],
    /// [`RepError::NoSuchBoundary`]).
    pub fn coalesce(
        &self,
        txn: TxnId,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> RepResult<CoalesceOutcome> {
        self.check_up()?;
        if low >= high {
            return Err(RepError::InvalidRange {
                low: low.clone(),
                high: high.clone(),
            });
        }
        self.acquire(
            txn,
            LockMode::Modify,
            KeyRange::new(low.clone(), high.clone()),
        )?;
        let outcome = self.state.lock().coalesce(txn, low, high, version)?;
        self.summary
            .mark_span(bucket_of_key(low), bucket_of_key(high));
        Ok(outcome)
    }

    /// Commits the transaction's effects at this representative (durable
    /// after the WAL sync) and releases its locks.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn commit(&self, txn: TxnId) -> RepResult<()> {
        self.check_up()?;
        self.state.lock().commit(txn);
        self.locks.release_all(txn);
        Ok(())
    }

    /// Rolls the transaction back at this representative and releases its
    /// locks. Safe to call regardless of the transaction's state there.
    pub fn abort(&self, txn: TxnId) {
        // Abort proceeds even on an "unavailable" representative: it is the
        // cleanup path for failures.
        let undid = self.state.lock().abort(txn);
        self.locks.release_all(txn);
        if undid {
            // Undo rewrote arbitrary ranges; re-digest lazily.
            self.summary.mark_all();
        }
    }

    /// Pings the representative (quorum collection).
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn ping(&self) -> RepResult<()> {
        self.check_up()
    }

    /// Digests of one summary-tree level (anti-entropy; serves
    /// `Request::Summary`). Dirty buckets are re-scanned under the state
    /// mutex but without transaction locks — the digest is advisory (it
    /// only decides what to pull; every applied step re-validates under
    /// locks), so racing a concurrent writer at worst costs an extra pull.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn summary_children(&self, level: u8, path: u8) -> RepResult<Vec<Digest>> {
        self.check_up()?;
        Ok(self.summary.children(level, path, &mut |b| {
            let state = self.state.lock();
            let low = bucket_low(b);
            let high = bucket_high(b);
            let mut hash = 0u64;
            let mut count = 0u64;
            state.visit_range(
                low.as_ref().map(|a| &a[..]),
                high.as_ref().map(|a| &a[..]),
                &mut |key, version, _value, gap_after| {
                    hash ^= entry_digest(key.as_bytes(), version, gap_after);
                    count += 1;
                },
            );
            if b == 0 {
                hash ^= low_gap_digest(state.low_gap());
            }
            Digest { hash, count }
        }))
    }

    /// The full local view of one summary bucket — its leading gap version
    /// and every entry with its `gap_after` — read under `RepLookup` range
    /// locks on an internal transaction so it never observes uncommitted
    /// data. Serves `Request::Pull`.
    ///
    /// # Errors
    ///
    /// Availability and lock errors.
    pub fn repair_bucket(&self, bucket: u8) -> RepResult<BucketView> {
        self.check_up()?;
        let txn = next_repair_txn();
        self.state.lock().begin(txn);
        let result = self.repair_bucket_locked(txn, bucket);
        // Read-only: abort just releases the locks.
        self.abort(txn);
        result
    }

    fn repair_bucket_locked(&self, txn: TxnId, bucket: u8) -> RepResult<BucketView> {
        let low = bucket_low(bucket);
        let high = bucket_high(bucket);
        let low_key = low.map_or(Key::Low, |b| Key::User(UserKey::new(&b[..])));
        let high_key = high.map_or(Key::High, |b| Key::User(UserKey::new(&b[..])));
        self.acquire(
            txn,
            LockMode::Lookup,
            KeyRange::new(low_key.clone(), high_key),
        )?;
        // The gap extending into the bucket from below: the directory's
        // leading gap for bucket 0, else the gap after the predecessor of
        // the bucket's lower bound.
        let lead_gap = match &low_key {
            Key::Low => self.state.lock().low_gap(),
            key => self.predecessor(txn, key)?.gap_version,
        };
        let mut entries = Vec::new();
        self.state.lock().visit_range(
            low.as_ref().map(|a| &a[..]),
            high.as_ref().map(|a| &a[..]),
            &mut |key, version, value, gap_after| {
                entries.push(BucketEntry {
                    key: key.clone(),
                    version,
                    value: value.clone(),
                    gap_after,
                });
            },
        );
        Ok(BucketView { lead_gap, entries })
    }

    /// Applies a repair plan inside one internal transaction, installing
    /// entries and gap versions **at their pinned version numbers** — sound
    /// without any quorum by the paper's version rule (versions only grow;
    /// equal versions carry identical data). Every step re-validates under
    /// its range lock and is skipped if concurrent progress already
    /// supersedes it, so versions never move down; the whole apply commits
    /// or rolls back atomically. Returns what actually changed.
    ///
    /// # Errors
    ///
    /// Availability, lock, and state errors; on error nothing is applied.
    pub fn apply_repair(&self, plan: &RepairPlan) -> RepResult<ApplyStats> {
        self.check_up()?;
        let mut stats = ApplyStats::default();
        if plan.is_empty() {
            return Ok(stats);
        }
        let txn = next_repair_txn();
        self.state.lock().begin(txn);
        match self.apply_repair_steps(txn, plan, &mut stats) {
            Ok(()) => {
                self.commit(txn)?;
                Ok(stats)
            }
            Err(e) => {
                self.abort(txn);
                Err(e)
            }
        }
    }

    fn apply_repair_steps(
        &self,
        txn: TxnId,
        plan: &RepairPlan,
        stats: &mut ApplyStats,
    ) -> RepResult<()> {
        for (key, version, value) in &plan.installs {
            let key = Key::User(key.clone());
            let reply = self.lookup(txn, &key)?;
            let apply = if reply.is_present() {
                // Equal versions are identical already.
                reply.version() < *version
            } else {
                // Ties against a gap go to the entry (same fact, two
                // encodings); a strictly higher gap is a newer delete.
                reply.version() <= *version
            };
            if apply {
                self.insert(txn, &key, *version, value)?;
                stats.installed += 1;
            }
        }
        for (key, covering) in &plan.ghosts {
            let key = Key::User(key.clone());
            let reply = self.lookup(txn, &key)?;
            if !reply.is_present() || reply.version() >= *covering {
                continue;
            }
            let pred = self.predecessor(txn, &key)?;
            let succ = self.successor(txn, &key)?;
            // Removing the ghost coalesces its two adjacent gap segments to
            // `covering`; if either has concurrently moved past it, leave
            // the key to a later round rather than lower a gap version.
            if pred.gap_version > *covering || succ.gap_version > *covering {
                continue;
            }
            self.coalesce(txn, &pred.key, &succ.key, *covering)?;
            stats.ghosts_removed += 1;
        }
        for (anchor, to) in &plan.gap_raises {
            let anchor_key = match anchor {
                GapAnchor::LowEdge => Key::Low,
                GapAnchor::After(k) => Key::User(k.clone()),
            };
            if let Key::User(_) = &anchor_key {
                // The anchoring entry may itself have been removed since
                // the plan was computed; its gap is then owned elsewhere.
                if !self.lookup(txn, &anchor_key)?.is_present() {
                    continue;
                }
            }
            let succ = self.successor(txn, &anchor_key)?;
            if succ.gap_version >= *to {
                continue;
            }
            // Empty interior: this only rewrites the gap's version.
            self.coalesce(txn, &anchor_key, &succ.key, *to)?;
            stats.gaps_raised += 1;
        }
        Ok(())
    }

    /// The snapshot manifest of the current committed state: the
    /// summary-tree root digest (hash + total entry count) and the leading
    /// gap version. Serves `Request::SnapshotBegin`.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn snapshot_manifest(&self) -> RepResult<SnapshotManifest> {
        let root = fold_children(&self.summary_children(0, 0)?);
        let low_gap = self.state.lock().low_gap();
        Ok(SnapshotManifest { root, low_gap })
    }

    /// One bounded snapshot frame: up to `max` entries strictly after
    /// `after` (from the lowest key when `None`), in ascending key order,
    /// read under `RepLookup` range locks on an internal transaction so the
    /// frame never observes uncommitted data. `done` means the frame
    /// reached the end of the key space. Serves `Request::SnapshotChunk`.
    ///
    /// The stream serves **live** committed state rather than a true
    /// freeze: entries that change behind the cursor are simply missed and
    /// left to the repair driver's post-install sweep.
    ///
    /// # Errors
    ///
    /// Availability and lock errors.
    pub fn snapshot_chunk(&self, after: Option<&UserKey>, max: u32) -> RepResult<SnapshotChunk> {
        self.check_up()?;
        let txn = next_repair_txn();
        self.state.lock().begin(txn);
        let result = self.snapshot_chunk_locked(txn, after, max);
        // Read-only: abort just releases the locks.
        self.abort(txn);
        result
    }

    fn snapshot_chunk_locked(
        &self,
        txn: TxnId,
        after: Option<&UserKey>,
        max: u32,
    ) -> RepResult<SnapshotChunk> {
        let max = max.max(1) as usize;
        // Strictly-after lower bound: the smallest byte string above
        // `after` is `after ++ 0x00`.
        let low: Option<Vec<u8>> = after.map(|k| {
            let mut b = k.as_bytes().to_vec();
            b.push(0);
            b
        });
        // Peek (under the state mutex only) at the span this frame will
        // cover, then lock exactly that span and re-read. The digest-style
        // unlocked peek is advisory; the locked re-read is what's served.
        let mut peek_last: Option<UserKey> = None;
        {
            let state = self.state.lock();
            let mut n = 0usize;
            state.visit_range(low.as_deref(), None, &mut |key, _, _, _| {
                if n < max {
                    peek_last = Some(key.clone());
                    n += 1;
                }
            });
        }
        let low_key = after.map_or(Key::Low, |k| Key::User(k.clone()));
        let high_key = peek_last.clone().map_or(Key::High, Key::User);
        self.acquire(txn, LockMode::Lookup, KeyRange::new(low_key, high_key))?;
        let mut entries = Vec::new();
        let mut beyond = false;
        self.state.lock().visit_range(
            low.as_deref(),
            None,
            &mut |key, version, value, gap_after| {
                // When the peek saw nothing the lock covers the whole tail,
                // so anything committed before the lock is fair game.
                let in_span = peek_last.as_ref().is_none_or(|last| key <= last);
                if in_span && entries.len() < max {
                    entries.push(BucketEntry {
                        key: key.clone(),
                        version,
                        value: value.clone(),
                        gap_after,
                    });
                } else {
                    beyond = true;
                }
            },
        );
        Ok(SnapshotChunk {
            entries,
            done: !beyond,
        })
    }

    /// Forces a WAL checkpoint of the committed state, retiring replay
    /// history (snapshot installs land one on completion so recovery
    /// replays the installed image, not the pre-divergence log).
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed; [`RepError::Storage`] if
    /// transactions are in flight ([`repdir_storage::WalError::CheckpointBusy`]).
    pub fn checkpoint(&self) -> RepResult<()> {
        self.check_up()?;
        self.state
            .lock()
            .checkpoint()
            .map_err(|e| RepError::Storage(e.to_string()))
    }

    /// Durably records a stale-vote observation in the WAL sidecar so a
    /// crash between observing staleness and repairing it does not lose
    /// the repair hint.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] while failed.
    pub fn spill_stale_vote(&self, vote: &StaleVote) -> RepResult<()> {
        self.check_up()?;
        self.state.lock().spill_stale_vote(
            vote.member as u64,
            vote.key.clone(),
            vote.seen,
            vote.latest,
        );
        Ok(())
    }

    /// Stale votes spilled since the last checkpoint, decoded from the
    /// on-disk log — used to reseed the driver's queue after recovery.
    pub fn spilled_stale_votes(&self) -> Vec<StaleVote> {
        let data = {
            let state = self.state.lock();
            state.disk().read_all()
        };
        let (records, _) = decode_log(&data);
        stale_votes_after(&records)
            .into_iter()
            .map(|(member, key, seen, latest)| StaleVote {
                member: member as usize,
                key,
                seen,
                latest,
            })
            .collect()
    }

    fn check_up(&self) -> RepResult<()> {
        if self.is_available() {
            Ok(())
        } else {
            Err(RepError::Unavailable)
        }
    }

    fn acquire(&self, txn: TxnId, mode: LockMode, range: KeyRange) -> RepResult<()> {
        self.locks
            .acquire(txn, mode, range, self.lock_timeout)
            .map_err(|e| match e {
                LockError::Timeout => RepError::LockTimeout,
                LockError::Deadlock => RepError::Deadlock,
            })
    }
}

/// The summary bucket containing a coalesce boundary (sentinels clamp to
/// the edge buckets).
fn bucket_of_key(key: &Key) -> u8 {
    match key {
        Key::Low => 0,
        Key::User(u) => repdir_repair::bucket_of(u.as_bytes()),
        Key::High => u8::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn basic_transactional_round_trip() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.insert(t, &k("a"), v(1), &val("A")).unwrap();
        assert!(rep.lookup(t, &k("a")).unwrap().is_present());
        rep.commit(t).unwrap();
        assert_eq!(rep.len(), 1);
        assert!(!rep.is_empty());
        assert_eq!(rep.id(), RepId(0));
    }

    #[test]
    fn abort_rolls_back_and_releases_locks() {
        let rep = TransactionalRep::new(RepId(0));
        let t1 = TxnId(1);
        rep.begin(t1).unwrap();
        rep.insert(t1, &k("a"), v(1), &val("A")).unwrap();
        rep.abort(t1);
        assert_eq!(rep.len(), 0);

        // The lock released by abort is immediately available.
        let t2 = TxnId(2);
        rep.begin(t2).unwrap();
        rep.insert(t2, &k("a"), v(1), &val("A2")).unwrap();
        rep.commit(t2).unwrap();
        assert_eq!(rep.snapshot().lookup(&k("a")).value(), Some(&val("A2")));
    }

    #[test]
    fn conflicting_writers_serialize_via_locks() {
        let rep = TransactionalRep::new(RepId(0));
        let t1 = TxnId(1);
        rep.begin(t1).unwrap();
        rep.insert(t1, &k("x"), v(1), &val("first")).unwrap();

        // A second transaction's conflicting insert must wait; with t1
        // holding the lock past the timeout, it fails.
        let t2 = TxnId(2);
        rep.begin(t2).unwrap();
        let err = rep.insert(t2, &k("x"), v(2), &val("second")).unwrap_err();
        assert_eq!(err, RepError::LockTimeout);
        rep.commit(t1).unwrap();

        // After release it succeeds.
        rep.insert(t2, &k("x"), v(2), &val("second")).unwrap();
        rep.commit(t2).unwrap();
        assert_eq!(rep.snapshot().lookup(&k("x")).version(), v(2));
    }

    #[test]
    fn readers_do_not_block_readers() {
        let rep = TransactionalRep::new(RepId(0));
        let t0 = TxnId(1);
        rep.begin(t0).unwrap();
        rep.insert(t0, &k("a"), v(1), &val("A")).unwrap();
        rep.commit(t0).unwrap();

        let mut handles = Vec::new();
        for i in 2..8u64 {
            let rep = Arc::clone(&rep);
            handles.push(thread::spawn(move || {
                let t = TxnId(i);
                rep.begin(t).unwrap();
                for _ in 0..50 {
                    assert!(rep.lookup(t, &k("a")).unwrap().is_present());
                }
                rep.commit(t).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn neighbor_ops_lock_the_scanned_range() {
        let rep = TransactionalRep::new(RepId(0));
        let setup = TxnId(1);
        rep.begin(setup).unwrap();
        rep.insert(setup, &k("b"), v(1), &val("B")).unwrap();
        rep.insert(setup, &k("f"), v(1), &val("F")).unwrap();
        rep.commit(setup).unwrap();

        let reader = TxnId(2);
        rep.begin(reader).unwrap();
        let nb = rep.predecessor(reader, &k("f")).unwrap();
        assert_eq!(nb.key, k("b"));
        // The reader now holds RepLookup(b, f): an insert of "d" (inside
        // the scanned range) must block; an insert of "z" must not.
        let writer = TxnId(3);
        rep.begin(writer).unwrap();
        assert_eq!(
            rep.insert(writer, &k("d"), v(1), &val("D")).unwrap_err(),
            RepError::LockTimeout
        );
        rep.insert(writer, &k("z"), v(1), &val("Z")).unwrap();
        rep.commit(reader).unwrap();
        rep.commit(writer).unwrap();
    }

    #[test]
    fn unavailable_rep_rejects_operations_but_allows_abort() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.insert(t, &k("a"), v(1), &val("A")).unwrap();
        rep.set_available(false);
        assert!(!rep.is_available());
        assert_eq!(rep.ping(), Err(RepError::Unavailable));
        assert_eq!(rep.lookup(t, &k("a")), Err(RepError::Unavailable));
        assert_eq!(rep.begin(TxnId(2)), Err(RepError::Unavailable));
        assert_eq!(rep.commit(t), Err(RepError::Unavailable));
        // Abort still works — it is how coordinators clean up after
        // failures.
        rep.abort(t);
        rep.set_available(true);
        assert_eq!(rep.len(), 0);
    }

    #[test]
    fn crash_loses_uncommitted_keeps_committed() {
        let rep = TransactionalRep::new(RepId(0));
        let t1 = TxnId(1);
        rep.begin(t1).unwrap();
        rep.insert(t1, &k("durable"), v(1), &val("D")).unwrap();
        rep.commit(t1).unwrap();

        let t2 = TxnId(2);
        rep.begin(t2).unwrap();
        rep.insert(t2, &k("volatile"), v(1), &val("V")).unwrap();

        rep.crash_and_recover().unwrap();
        let snap = rep.snapshot();
        assert!(snap.lookup(&k("durable")).is_present());
        assert!(!snap.lookup(&k("volatile")).is_present());

        // The representative serves fresh transactions after recovery.
        let t3 = TxnId(3);
        rep.begin(t3).unwrap();
        rep.insert(t3, &k("after"), v(1), &val("A")).unwrap();
        rep.commit(t3).unwrap();
        assert_eq!(rep.len(), 2);
    }

    #[test]
    fn recover_constructor_reads_existing_disk() {
        let disk = Arc::new(SimDisk::new());
        {
            let rep = TransactionalRep::with_disk(RepId(0), Arc::clone(&disk));
            let t = TxnId(1);
            rep.begin(t).unwrap();
            rep.insert(t, &k("persisted"), v(1), &val("P")).unwrap();
            rep.commit(t).unwrap();
        }
        let rep2 = TransactionalRep::recover(RepId(0), disk).unwrap();
        assert!(rep2.snapshot().lookup(&k("persisted")).is_present());
    }

    #[test]
    fn lock_stats_exposed() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.lookup(t, &k("a")).unwrap();
        rep.commit(t).unwrap();
        assert!(rep.lock_stats().granted >= 1);
    }

    #[test]
    fn summary_digests_track_committed_state_only() {
        let a = TransactionalRep::new(RepId(0));
        let b = TransactionalRep::new(RepId(1));
        let digests = |rep: &TransactionalRep| rep.summary_children(0, 0).unwrap();
        assert_eq!(digests(&a), digests(&b));

        let t = TxnId(1);
        a.begin(t).unwrap();
        a.insert(t, &k("apple"), v(1), &val("A")).unwrap();
        a.commit(t).unwrap();
        assert_ne!(digests(&a), digests(&b));

        let t = TxnId(2);
        b.begin(t).unwrap();
        b.insert(t, &k("apple"), v(1), &val("A")).unwrap();
        b.commit(t).unwrap();
        assert_eq!(digests(&a), digests(&b));

        // Aborted work leaves the digests untouched.
        let t = TxnId(3);
        a.begin(t).unwrap();
        a.insert(t, &k("zebra"), v(2), &val("Z")).unwrap();
        a.abort(t);
        assert_eq!(digests(&a), digests(&b));

        // Crash recovery re-digests to the same committed state.
        a.crash_and_recover().unwrap();
        assert_eq!(digests(&a), digests(&b));
    }

    #[test]
    fn repair_bucket_view_carries_lead_and_after_gaps() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.insert(t, &k("b"), v(2), &val("B")).unwrap();
        rep.insert(t, &k("d"), v(4), &val("D")).unwrap();
        rep.commit(t).unwrap();
        let t = TxnId(2);
        rep.begin(t).unwrap();
        rep.coalesce(t, &k("b"), &k("d"), v(7)).unwrap();
        rep.commit(t).unwrap();

        // "b" and "d" are one byte apart in different buckets; the (b, d)
        // gap at version 7 is the `gap_after` of "b" in its bucket and the
        // lead gap of "d"'s bucket.
        let view_b = rep.repair_bucket(b'b').unwrap();
        assert_eq!(view_b.lead_gap, Version::ZERO);
        assert_eq!(view_b.entries.len(), 1);
        assert_eq!(view_b.entries[0].version, v(2));
        assert_eq!(view_b.entries[0].gap_after, v(7));
        let view_d = rep.repair_bucket(b'd').unwrap();
        assert_eq!(view_d.lead_gap, v(7));
        assert_eq!(view_d.entries.len(), 1);
        // An untouched bucket between them inherits the gap as its lead.
        let view_c = rep.repair_bucket(b'c').unwrap();
        assert_eq!(view_c.lead_gap, v(7));
        assert!(view_c.entries.is_empty());
        // The repair read released its locks: a write can proceed.
        let t = TxnId(3);
        rep.begin(t).unwrap();
        rep.insert(t, &k("bz"), v(8), &val("BZ")).unwrap();
        rep.commit(t).unwrap();
    }

    #[test]
    fn apply_repair_converges_a_stale_rep_without_quorum() {
        let fresh = TransactionalRep::new(RepId(0));
        let stale = TransactionalRep::new(RepId(1));
        // Both saw the initial inserts...
        for rep in [&fresh, &stale] {
            let t = TxnId(1);
            rep.begin(t).unwrap();
            rep.insert(t, &k("a"), v(1), &val("A")).unwrap();
            rep.insert(t, &k("b"), v(2), &val("B")).unwrap();
            rep.insert(t, &k("c"), v(3), &val("C")).unwrap();
            rep.commit(t).unwrap();
        }
        // ...but only `fresh` saw the delete of "b" and the update of "c".
        let t = TxnId(2);
        fresh.begin(t).unwrap();
        fresh.coalesce(t, &k("a"), &k("c"), v(9)).unwrap();
        fresh.insert(t, &k("c"), v(10), &val("C2")).unwrap();
        fresh.commit(t).unwrap();
        assert_ne!(fresh.snapshot(), stale.snapshot());

        // Pull every bucket from `fresh`, merge, apply — no quorum involved.
        let mut changed = repdir_repair::ApplyStats::default();
        for bucket in 0..=u8::MAX {
            let remote = fresh.repair_bucket(bucket).unwrap();
            let local = stale.repair_bucket(bucket).unwrap();
            let plan = repdir_repair::diff_bucket(bucket, &local, &remote);
            changed.absorb(stale.apply_repair(&plan).unwrap());
        }
        assert_eq!(fresh.snapshot(), stale.snapshot());
        assert_eq!(
            fresh.summary_children(0, 0).unwrap(),
            stale.summary_children(0, 0).unwrap()
        );
        assert_eq!(changed.installed, 1); // c@10
        assert_eq!(changed.ghosts_removed, 1); // b
                                               // A second pass is a no-op (idempotence).
        for bucket in 0..=u8::MAX {
            let remote = fresh.repair_bucket(bucket).unwrap();
            let local = stale.repair_bucket(bucket).unwrap();
            let plan = repdir_repair::diff_bucket(bucket, &local, &remote);
            assert!(plan.is_empty());
        }
    }

    #[test]
    fn apply_repair_never_moves_versions_down() {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        rep.insert(t, &k("c"), v(10), &val("C")).unwrap();
        rep.commit(t).unwrap();
        let before = rep.snapshot();
        // A plan computed against an older view: install below the current
        // version, ghost below the current version, raise below the gap.
        let plan = repdir_repair::RepairPlan {
            installs: vec![(repdir_core::UserKey::new(&b"c"[..]), v(5), val("old"))],
            ghosts: vec![(repdir_core::UserKey::new(&b"c"[..]), v(4))],
            gap_raises: vec![(repdir_repair::GapAnchor::LowEdge, Version::ZERO)],
        };
        let stats = rep.apply_repair(&plan).unwrap();
        assert_eq!(stats.total(), 0);
        assert_eq!(rep.snapshot(), before);
    }

    #[test]
    fn recovery_hook_fires_on_heal_and_crash_recovery() {
        let rep = TransactionalRep::new(RepId(0));
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        rep.set_recovery_hook(Some(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        })));
        // Already up: no transition, no fire.
        rep.set_available(true);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        // Going down is not a recovery.
        rep.set_available(false);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        rep.set_available(true);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        rep.crash_and_recover().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        // Cleared hook stays silent.
        rep.set_recovery_hook(None);
        rep.set_available(false);
        rep.set_available(true);
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn repair_endpoints_respect_availability() {
        let rep = TransactionalRep::new(RepId(0));
        rep.set_available(false);
        assert_eq!(rep.summary_children(0, 0), Err(RepError::Unavailable));
        assert_eq!(rep.repair_bucket(0), Err(RepError::Unavailable));
        let plan = repdir_repair::RepairPlan::default();
        assert_eq!(rep.apply_repair(&plan), Err(RepError::Unavailable));
        assert_eq!(rep.snapshot_manifest(), Err(RepError::Unavailable));
        assert_eq!(rep.snapshot_chunk(None, 8), Err(RepError::Unavailable));
        assert_eq!(rep.checkpoint(), Err(RepError::Unavailable));
    }

    /// Seeds `n` committed entries `k000..` with versions `1..=n`.
    fn seeded(n: u64) -> Arc<TransactionalRep> {
        let rep = TransactionalRep::new(RepId(0));
        let t = TxnId(1);
        rep.begin(t).unwrap();
        for i in 0..n {
            rep.insert(t, &k(&format!("k{i:03}")), v(i + 1), &val("x"))
                .unwrap();
        }
        rep.commit(t).unwrap();
        rep
    }

    #[test]
    fn snapshot_chunks_walk_the_key_space_and_match_the_manifest() {
        let rep = seeded(10);
        let manifest = rep.snapshot_manifest().unwrap();
        assert_eq!(manifest.root.count, 10);
        assert_eq!(manifest.low_gap, rep.snapshot().low_gap());

        // Walk in frames of 4: 4 + 4 + 2, cursor-addressed.
        let mut seen = Vec::new();
        let mut after: Option<UserKey> = None;
        loop {
            let chunk = rep.snapshot_chunk(after.as_ref(), 4).unwrap();
            assert!(chunk.done || !chunk.entries.is_empty());
            after = chunk.entries.last().map(|e| e.key.clone());
            seen.extend(chunk.entries.into_iter().map(|e| (e.key, e.version)));
            if chunk.done {
                break;
            }
        }
        assert_eq!(seen.len(), 10);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "entries arrive in ascending key order");
        // The independently-computed source digest agrees with the manifest.
        use repdir_snapshot::SnapshotPeer;
        let source = repdir_snapshot::SnapshotSource::new(rep.snapshot());
        assert_eq!(source.manifest().unwrap().root, manifest.root);
    }

    #[test]
    fn snapshot_chunk_serves_committed_state_only() {
        let rep = seeded(3);
        let t = TxnId(7);
        rep.begin(t).unwrap();
        rep.insert(t, &k("k999"), v(99), &val("uncommitted"))
            .unwrap();
        // The frame covers only keys outside the writer's lock, so ask for
        // the tail strictly after the committed span: blocked by the
        // writer's lock rather than leaking uncommitted data.
        let err = rep
            .snapshot_chunk(Some(&UserKey::new(*b"k998")), 4)
            .unwrap_err();
        assert_eq!(err, RepError::LockTimeout);
        rep.abort(t);
        let chunk = rep
            .snapshot_chunk(Some(&UserKey::new(*b"k998")), 4)
            .unwrap();
        assert!(chunk.done);
        assert!(chunk.entries.is_empty());
    }

    #[test]
    fn checkpoint_compacts_the_log_and_survives_recovery() {
        let rep = seeded(5);
        rep.checkpoint().unwrap();
        // A transaction in flight makes the checkpoint refuse, not panic.
        let t = TxnId(9);
        rep.begin(t).unwrap();
        rep.insert(t, &k("zz"), v(9), &val("Z")).unwrap();
        match rep.checkpoint() {
            Err(RepError::Storage(msg)) => assert!(msg.contains("1")),
            other => panic!("expected Storage error, got {other:?}"),
        }
        rep.commit(t).unwrap();
        rep.checkpoint().unwrap();
        rep.crash_and_recover().unwrap();
        assert_eq!(rep.len(), 6);
    }

    #[test]
    fn spilled_stale_votes_survive_crash_and_retire_on_checkpoint() {
        let rep = seeded(2);
        let vote = StaleVote {
            member: 1,
            key: k("k001"),
            seen: v(1),
            latest: v(4),
        };
        rep.spill_stale_vote(&vote).unwrap();
        rep.crash_and_recover().unwrap();
        let spilled = rep.spilled_stale_votes();
        assert_eq!(spilled, vec![vote]);
        // A checkpoint marks the spilled votes consumed.
        rep.checkpoint().unwrap();
        assert!(rep.spilled_stale_votes().is_empty());
    }
}
