//! Snapshot catch-up adapters: plugging a [`TransactionalRep`] into the
//! `repdir-snapshot` [`SnapshotPeer`] trait, in-process and across the
//! simulated network.
//!
//! A typical deployment gives each representative's
//! [`RepairDriver`](repdir_repair::RepairDriver) a
//! [`SnapshotInstaller`](repdir_snapshot::SnapshotInstaller) whose peers
//! are [`RemoteSnapshotPeer`]s for the other members (aligned with the
//! repair peer order, so the driver's sticky peer index addresses the same
//! member on both paths), or [`LocalSnapshotPeer`]s in single-process
//! tests.

use std::sync::Arc;
use std::time::Duration;

use repdir_net::{NodeId, RpcClient};
use repdir_repair::RepairError;
use repdir_snapshot::{SnapshotChunk, SnapshotManifest, SnapshotPeer};

use crate::codec::{decode_response, encode_request, Request, Response};
use crate::repair::map_rep_error;
use crate::server::TransactionalRep;

use repdir_core::UserKey;

/// A snapshot peer reached over the simulated network via the wire codec
/// ([`Request::SnapshotBegin`] / [`Request::SnapshotChunk`]).
#[derive(Debug)]
pub struct RemoteSnapshotPeer {
    rpc: Arc<RpcClient>,
    server: NodeId,
    timeout: Duration,
}

impl RemoteSnapshotPeer {
    /// Default per-call deadline.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(2);

    /// A peer served at `server`, called through `rpc`.
    pub fn new(rpc: Arc<RpcClient>, server: NodeId) -> Self {
        RemoteSnapshotPeer {
            rpc,
            server,
            timeout: Self::DEFAULT_TIMEOUT,
        }
    }

    /// Overrides the per-call deadline.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    fn call(&self, req: Request) -> Result<Response, RepairError> {
        let reply = self
            .rpc
            .call(self.server, encode_request(&req), self.timeout)
            // An unreachable peer looks exactly like an unavailable one.
            .map_err(|_| RepairError::Unavailable)?;
        let resp = decode_response(&reply).map_err(|e| RepairError::Protocol(e.to_string()))?;
        match resp {
            Response::Err(e) => Err(map_rep_error(e)),
            ok => Ok(ok),
        }
    }
}

impl SnapshotPeer for RemoteSnapshotPeer {
    fn manifest(&self) -> Result<SnapshotManifest, RepairError> {
        match self.call(Request::SnapshotBegin)? {
            Response::SnapshotManifest(m) => Ok(m),
            other => Err(RepairError::Protocol(format!(
                "unexpected reply to SnapshotBegin: {other:?}"
            ))),
        }
    }

    fn chunk(&self, after: Option<&UserKey>, max: u32) -> Result<SnapshotChunk, RepairError> {
        match self.call(Request::SnapshotChunk {
            after: after.cloned(),
            max,
        })? {
            Response::SnapshotChunk(chunk) => Ok(chunk),
            other => Err(RepairError::Protocol(format!(
                "unexpected reply to SnapshotChunk: {other:?}"
            ))),
        }
    }
}

/// An in-process snapshot peer (no network) — handy in tests and
/// single-process simulations.
#[derive(Debug)]
pub struct LocalSnapshotPeer {
    rep: Arc<TransactionalRep>,
}

impl LocalSnapshotPeer {
    /// Wraps a representative as a snapshot peer.
    pub fn new(rep: Arc<TransactionalRep>) -> Self {
        LocalSnapshotPeer { rep }
    }
}

impl SnapshotPeer for LocalSnapshotPeer {
    fn manifest(&self) -> Result<SnapshotManifest, RepairError> {
        self.rep.snapshot_manifest().map_err(map_rep_error)
    }

    fn chunk(&self, after: Option<&UserKey>, max: u32) -> Result<SnapshotChunk, RepairError> {
        self.rep.snapshot_chunk(after, max).map_err(map_rep_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::serve_rep;
    use repdir_core::{Key, RepId, Value, Version};
    use repdir_net::Network;
    use repdir_repair::{CatchupStream, RepairTarget};
    use repdir_snapshot::SnapshotInstaller;
    use repdir_txn::TxnId;

    fn seed(rep: &TransactionalRep, txn: u64, keys: &[(&str, u64)]) {
        let t = TxnId(txn);
        rep.begin(t).unwrap();
        for (key, ver) in keys {
            rep.insert(t, &Key::from(*key), Version::new(*ver), &Value::from(*key))
                .unwrap();
        }
        rep.commit(t).unwrap();
    }

    #[test]
    fn networked_snapshot_stream_converges_an_empty_member() {
        let net = Arc::new(Network::new(7));
        let fresh = TransactionalRep::new(RepId(0));
        let stale = TransactionalRep::new(RepId(1));
        seed(&fresh, 1, &[("a", 1), ("b", 2), ("c", 3), ("d", 4)]);

        let _server = serve_rep(Arc::clone(&net), NodeId(10), Arc::clone(&fresh));
        let rpc = Arc::new(RpcClient::new(Arc::clone(&net), NodeId(0)));
        let peer = RemoteSnapshotPeer::new(rpc, NodeId(10));
        let mut installer = SnapshotInstaller::new(vec![Box::new(peer)]).with_chunk_entries(2);
        let target: Arc<dyn RepairTarget> =
            Arc::new(crate::repair::RepTarget::new(Arc::clone(&stale)));
        let stats = installer.stream(0, &target).unwrap();
        assert!(stats.root_matched);
        assert_eq!(stats.entries, 4);
        assert!(stats.chunks >= 2);
        assert_eq!(fresh.snapshot(), stale.snapshot());
    }

    #[test]
    fn local_peer_mirrors_the_remote_endpoints() {
        let rep = TransactionalRep::new(RepId(0));
        seed(&rep, 1, &[("x", 1), ("y", 2)]);
        let peer = LocalSnapshotPeer::new(Arc::clone(&rep));
        let manifest = peer.manifest().unwrap();
        assert_eq!(manifest.root.count, 2);
        let chunk = peer.chunk(None, 8).unwrap();
        assert!(chunk.done);
        assert_eq!(chunk.entries.len(), 2);
        // Dead peers surface as Unavailable, the installer's retry signal.
        rep.set_available(false);
        assert_eq!(peer.manifest(), Err(RepairError::Unavailable));
        assert_eq!(peer.chunk(None, 8), Err(RepairError::Unavailable));
    }
}
