//! A ready-to-use replicated directory: representatives, transactions, and
//! deadlock-retry wrapped around the core suite algorithm.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use repdir_core::suite::LookupOutcome;
use repdir_core::suite::{
    DirSuite, QuorumPolicy, RandomPolicy, RepairHealth, StaleVote, StaleVoteQueue, SuiteConfig,
};
use repdir_core::sync::Mutex;
use repdir_core::{ConfigError, Key, RepError, RepId, SuiteError, UserKey, Value};
use repdir_repair::{DriverHandle, Pacing, RepairDriver, Repairer};
use repdir_snapshot::SnapshotInstaller;
use repdir_txn::TxnManager;

use crate::client::SessionClient;
use crate::repair::{LocalRepairPeer, RepTarget};
use crate::server::TransactionalRep;
use crate::snapshot::LocalSnapshotPeer;
use repdir_storage::{Backend, SimDisk};

/// A complete replicated directory service over transactional
/// representatives.
///
/// Each user operation (or multi-operation closure passed to
/// [`run`](ReplicatedDirectory::run)) executes inside a transaction that
/// spans the representatives: Figure-6 range locks are held at every touched
/// representative until commit (strict two-phase locking), mutations are
/// durable through each representative's write-ahead log, and deadlock or
/// lock-timeout victims are retried with a fresh transaction.
///
/// # Examples
///
/// ```
/// use repdir_core::suite::SuiteConfig;
/// use repdir_core::{Key, Value};
/// use repdir_replica::ReplicatedDirectory;
///
/// let dir = ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2)?, 7)?;
/// dir.insert(&Key::from("motd"), &Value::from("hello"))?;
/// assert!(dir.lookup(&Key::from("motd"))?.present);
/// dir.delete(&Key::from("motd"))?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ReplicatedDirectory {
    reps: Vec<Arc<TransactionalRep>>,
    config: SuiteConfig,
    txns: Arc<TxnManager>,
    policy_seed: AtomicU64,
    max_attempts: u32,
    /// Shared stale-vote sink. Per-transaction suites are ephemeral, so
    /// every suite this directory creates routes its stale votes here —
    /// the evidence outlives the transaction that observed it and feeds
    /// the repair drivers.
    stale_votes: Arc<StaleVoteQueue>,
    /// Per-member "has unhealed buckets" flags, fed by the repair drivers'
    /// health sinks and consulted by every latency-based quorum policy the
    /// directory's suites build — a member known to be behind is ranked
    /// last, not first, however fast it replies.
    repair_health: Arc<RepairHealth>,
    repair_drivers: Mutex<Vec<DriverHandle>>,
}

impl ReplicatedDirectory {
    /// Creates a directory with fresh representatives.
    ///
    /// # Errors
    ///
    /// Mirrors [`DirSuite::new`]'s [`ConfigError`]s (cannot occur for a
    /// valid config).
    pub fn new(config: SuiteConfig, seed: u64) -> Result<Self, ConfigError> {
        Self::with_backend(config, seed, Backend::GapMap)
    }

    /// Creates a directory whose representatives use an explicit state
    /// representation — e.g. the paper's §5 B-tree.
    ///
    /// # Errors
    ///
    /// As [`ReplicatedDirectory::new`].
    pub fn with_backend(
        config: SuiteConfig,
        seed: u64,
        backend: Backend,
    ) -> Result<Self, ConfigError> {
        let reps = (0..config.member_count())
            .map(|i| {
                TransactionalRep::with_disk_and_backend(
                    RepId(i as u32),
                    std::sync::Arc::new(SimDisk::new()),
                    backend,
                )
            })
            .collect();
        Self::with_reps(reps, config, seed)
    }

    /// Wraps existing representatives (e.g. recovered ones).
    ///
    /// # Errors
    ///
    /// [`ConfigError::MemberCountMismatch`] if counts differ.
    pub fn with_reps(
        reps: Vec<Arc<TransactionalRep>>,
        config: SuiteConfig,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if reps.len() != config.member_count() {
            return Err(ConfigError::MemberCountMismatch {
                clients: reps.len(),
                votes: config.member_count(),
            });
        }
        // Concurrent write waves acquire locks at several representatives
        // at once, so deadlock cycles can span representatives; a shared
        // domain lets them be detected instead of timed out.
        let domain = Arc::new(repdir_rangelock::DeadlockDomain::new());
        for rep in &reps {
            rep.join_deadlock_domain(&domain);
        }
        Ok(ReplicatedDirectory {
            reps,
            config,
            txns: Arc::new(TxnManager::new()),
            policy_seed: AtomicU64::new(seed),
            max_attempts: 8,
            stale_votes: Arc::new(StaleVoteQueue::new()),
            repair_health: Arc::new(RepairHealth::new()),
            repair_drivers: Mutex::new(Vec::new()),
        })
    }

    /// The suite configuration.
    pub fn config(&self) -> &SuiteConfig {
        &self.config
    }

    /// The representative servers (failure injection, inspection).
    pub fn reps(&self) -> &[Arc<TransactionalRep>] {
        &self.reps
    }

    /// The shared transaction manager.
    pub fn txn_manager(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    /// Begins an explicit transaction with a freshly seeded random quorum
    /// policy. Most callers use [`run`](ReplicatedDirectory::run) instead.
    pub fn begin(&self) -> DirTxn<'_> {
        let seed = self.policy_seed.fetch_add(1, Ordering::Relaxed);
        self.begin_with_policy(Box::new(RandomPolicy::new(seed)))
    }

    /// Begins a transaction with an explicit quorum policy.
    pub fn begin_with_policy(&self, policy: Box<dyn QuorumPolicy + Send>) -> DirTxn<'_> {
        let id = self.txns.begin();
        let clients: Vec<SessionClient> = self
            .reps
            .iter()
            .map(|rep| {
                // Unavailable representatives cannot register the
                // transaction; they stay unusable for it even if they heal
                // mid-flight (the suite routes around them).
                let _ = rep.begin(id);
                SessionClient::new(Arc::clone(rep), id)
            })
            .collect();
        let mut suite = DirSuite::new(clients, self.config.clone(), policy)
            .expect("rep count matches config by construction");
        suite.set_stale_vote_sink(Some(Arc::clone(&self.stale_votes)));
        suite.set_repair_health(Some(Arc::clone(&self.repair_health)));
        DirTxn {
            dir: self,
            id,
            suite,
            finished: false,
        }
    }

    /// Runs `body` in a transaction, committing on success. Deadlock and
    /// lock-timeout victims are aborted and retried (fresh transaction, new
    /// quorums) with exponential backoff, up to an attempt limit. A member
    /// that dies inside the ping-then-call window — it votes into a quorum,
    /// then fails the data RPC with [`RepError::Unavailable`] — is retried
    /// the same way: the fresh attempt collects a quorum from the
    /// survivors.
    ///
    /// # Errors
    ///
    /// The body's error after retries are exhausted, or any non-retryable
    /// [`SuiteError`].
    pub fn run<R>(
        &self,
        mut body: impl FnMut(&mut DirSuite<SessionClient>) -> Result<R, SuiteError>,
    ) -> Result<R, SuiteError> {
        let mut attempt = 0;
        loop {
            let mut txn = self.begin();
            match body(txn.suite_mut()) {
                Ok(out) => {
                    txn.commit();
                    return Ok(out);
                }
                Err(e) => {
                    txn.abort();
                    attempt += 1;
                    let retryable = matches!(
                        e,
                        SuiteError::Rep(RepError::Deadlock)
                            | SuiteError::Rep(RepError::LockTimeout)
                            | SuiteError::Rep(RepError::Unavailable)
                    );
                    if !retryable || attempt >= self.max_attempts {
                        return Err(e);
                    }
                    // Exponential backoff with jitter, capped. The jitter
                    // matters: colliding transactions that backed off for
                    // *identical* durations re-collide in lockstep; drawing
                    // from the directory's seed stream desynchronizes them.
                    let base = 1u64 << attempt.min(6);
                    let mut z = self
                        .policy_seed
                        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    let jitter = (z ^ (z >> 31)) % base;
                    std::thread::sleep(Duration::from_millis(base + jitter));
                }
            }
        }
    }

    /// Looks a key up in its own transaction.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::lookup`], after retries.
    pub fn lookup(&self, key: &Key) -> Result<LookupOutcome, SuiteError> {
        self.run(|suite| suite.lookup(key))
    }

    /// Inserts in its own transaction.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::insert`], after retries.
    pub fn insert(&self, key: &Key, value: &Value) -> Result<(), SuiteError> {
        self.run(|suite| suite.insert(key, value).map(drop))
    }

    /// Updates in its own transaction.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::update`], after retries.
    pub fn update(&self, key: &Key, value: &Value) -> Result<(), SuiteError> {
        self.run(|suite| suite.update(key, value).map(drop))
    }

    /// Deletes in its own transaction.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::delete`], after retries.
    pub fn delete(&self, key: &Key) -> Result<(), SuiteError> {
        self.run(|suite| suite.delete(key).map(drop))
    }

    /// Inserts a batch of entries in one transaction, paying one write
    /// quorum for the whole batch (see [`DirSuite::insert_many`]). The
    /// transaction makes the batch atomic at this layer: a retryable
    /// mid-batch failure aborts, rolls every applied prefix entry back, and
    /// retries the whole batch under a fresh transaction.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::insert_many`], after retries.
    pub fn insert_many(&self, entries: &[(Key, Value)]) -> Result<(), SuiteError> {
        self.run(|suite| suite.insert_many(entries).map(drop))
    }

    /// Deletes a batch of keys in one transaction, paying one write quorum
    /// for the whole batch (see [`DirSuite::delete_many`]).
    ///
    /// # Errors
    ///
    /// As [`DirSuite::delete_many`], after retries.
    pub fn delete_many(&self, keys: &[Key]) -> Result<(), SuiteError> {
        self.run(|suite| suite.delete_many(keys).map(drop))
    }

    /// Lists every entry in key order, in its own transaction. The suite
    /// walks under a session quorum with batched envelopes (one quorum
    /// collection for the whole scan); the transaction's range locks make
    /// the listing a consistent snapshot.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::scan`], after retries.
    pub fn scan(&self) -> Result<Vec<(UserKey, Value)>, SuiteError> {
        self.run(|suite| suite.scan())
    }

    /// The shared stale-vote queue every transaction's suite reports into.
    pub fn stale_vote_queue(&self) -> &Arc<StaleVoteQueue> {
        &self.stale_votes
    }

    /// The per-member repair-health flags quorum policies consult.
    pub fn repair_health(&self) -> &Arc<RepairHealth> {
        &self.repair_health
    }

    /// Drains every queued stale vote (for inspection or a hand-rolled
    /// repair loop; the spawned drivers normally consume these).
    pub fn take_stale_votes(&self) -> Vec<StaleVote> {
        self.stale_votes.drain_all()
    }

    /// Starts one background [`RepairDriver`] per representative: each
    /// drains this directory's stale-vote queue for its member into
    /// bucket-targeted pulls from the other representatives, falling back
    /// to adaptively paced summary sweeps when the queue is dry. The queue
    /// wakes a driver the moment a read observes its member voting stale,
    /// and each representative's recovery hook snaps its driver's pacing
    /// back to the floor. Idempotent: a second call replaces the fleet.
    pub fn spawn_repair_drivers(&self, pacing: Pacing) {
        self.stop_repair_drivers();
        // Reseed the queue from each representative's WAL sidecar: votes
        // spilled before a crash survive it and re-enter the queue here
        // (coalesced, no re-spill, no waker — the fleet below drains them).
        for rep in &self.reps {
            for vote in rep.spilled_stale_votes() {
                self.stale_votes.restore(vote);
            }
        }
        // From now on every pushed vote is spilled to the stale member's
        // WAL before it becomes observable in the queue, so the
        // observe-then-pull window has no durability hole.
        let spill_reps = self.reps.clone();
        self.stale_votes.set_spill(Some(Box::new(move |vote| {
            if let Some(rep) = spill_reps.get(vote.member) {
                // Best-effort: an unavailable member just misses the hint.
                let _ = rep.spill_stale_vote(vote);
            }
        })));
        let mut handles = Vec::with_capacity(self.reps.len());
        for (member, rep) in self.reps.iter().enumerate() {
            let target = Arc::new(RepTarget::new(Arc::clone(rep)));
            let mut peers: Vec<Box<dyn repdir_repair::RepairPeer>> = Vec::new();
            let mut snap_peers: Vec<Box<dyn repdir_snapshot::SnapshotPeer>> = Vec::new();
            // Snapshot peers are aligned index-for-index with repair peers,
            // so the driver's sticky peer choice addresses the same member
            // on both the per-bucket and the streamed path.
            for (j, peer) in self.reps.iter().enumerate() {
                if j == member {
                    continue;
                }
                peers.push(Box::new(LocalRepairPeer::new(Arc::clone(peer))));
                snap_peers.push(Box::new(LocalSnapshotPeer::new(Arc::clone(peer))));
            }
            let queue = Arc::clone(&self.stale_votes);
            let health = Arc::clone(&self.repair_health);
            let driver = RepairDriver::new(Repairer::new(target, peers), pacing)
                .with_vote_source(Box::new(move || queue.drain_member(member)))
                .with_catchup(Box::new(SnapshotInstaller::new(snap_peers)))
                .with_health_sink(Box::new(move |unrepaired| {
                    health.set_unrepaired(member, unrepaired);
                }));
            let handle = driver.spawn();
            let vote_waker = handle.waker();
            self.stale_votes
                .set_waker(member, Some(Box::new(move || vote_waker.wake_votes())));
            let recovery_waker = handle.waker();
            rep.set_recovery_hook(Some(Box::new(move || recovery_waker.wake_recovery())));
            handles.push(handle);
        }
        *self.repair_drivers.lock() = handles;
    }

    /// Stops the repair-driver fleet: unhooks the wakers, then joins every
    /// driver thread. Queued stale votes are kept — a later fleet (or
    /// [`take_stale_votes`](ReplicatedDirectory::take_stale_votes)) can
    /// still consume them.
    pub fn stop_repair_drivers(&self) {
        let handles = std::mem::take(&mut *self.repair_drivers.lock());
        if handles.is_empty() {
            return;
        }
        self.stale_votes.set_spill(None);
        for (member, rep) in self.reps.iter().enumerate() {
            self.stale_votes.set_waker(member, None);
            rep.set_recovery_hook(None);
        }
        drop(handles); // joins each driver thread
    }
}

impl Drop for ReplicatedDirectory {
    fn drop(&mut self) {
        self.stop_repair_drivers();
    }
}

impl fmt::Debug for ReplicatedDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicatedDirectory")
            .field("config", &self.config)
            .field("reps", &self.reps.len())
            .finish_non_exhaustive()
    }
}

/// An open transaction against a [`ReplicatedDirectory`].
///
/// Dropping an unfinished transaction aborts it (locks release, mutations
/// roll back).
pub struct DirTxn<'a> {
    dir: &'a ReplicatedDirectory,
    id: repdir_txn::TxnId,
    suite: DirSuite<SessionClient>,
    finished: bool,
}

impl DirTxn<'_> {
    /// The transaction's id.
    pub fn id(&self) -> repdir_txn::TxnId {
        self.id
    }

    /// The suite to operate through. All operations share this
    /// transaction's locks.
    pub fn suite_mut(&mut self) -> &mut DirSuite<SessionClient> {
        &mut self.suite
    }

    /// Inserts a batch of entries under this transaction's locks, one write
    /// quorum for the whole batch.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::insert_many`].
    pub fn insert_many(
        &mut self,
        entries: &[(Key, Value)],
    ) -> Result<repdir_core::BulkWriteOutcome, SuiteError> {
        self.suite.insert_many(entries)
    }

    /// Deletes a batch of keys under this transaction's locks, one write
    /// quorum for the whole batch.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::delete_many`].
    pub fn delete_many(
        &mut self,
        keys: &[Key],
    ) -> Result<repdir_core::BulkWriteOutcome, SuiteError> {
        self.suite.delete_many(keys)
    }

    /// Commits at every representative (write-ahead-log sync per member)
    /// and releases locks.
    ///
    /// The per-member commits — each a WAL sync — run concurrently, so
    /// commit latency is the *slowest* member's sync, not the sum of all
    /// of them (the same scatter-gather shape the suite uses for its RPC
    /// waves).
    pub fn commit(mut self) {
        self.finished = true;
        let id = self.id;
        let _span = repdir_obs::global().span("txn.commit");
        std::thread::scope(|scope| {
            for rep in &self.dir.reps {
                // A representative that failed mid-transaction cannot
                // commit; it never saw the transaction's writes (the suite
                // routed around it), so skipping is sound.
                scope.spawn(move || {
                    let _ = rep.commit(id);
                });
            }
        });
        let _ = self.dir.txns.commit(id);
    }

    /// Aborts at every representative and releases locks.
    pub fn abort(mut self) {
        self.finished = true;
        self.rollback();
    }

    fn rollback(&self) {
        let id = self.id;
        let _span = repdir_obs::global().span("txn.abort");
        std::thread::scope(|scope| {
            for rep in &self.dir.reps {
                scope.spawn(move || {
                    rep.abort(id);
                });
            }
        });
        if self.dir.txns.is_active(id) {
            let _ = self.dir.txns.abort(id);
        }
    }
}

impl Drop for DirTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback();
        }
    }
}

impl fmt::Debug for DirTxn<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DirTxn")
            .field("id", &self.id)
            .field("finished", &self.finished)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repdir_core::suite::FixedPolicy;
    use repdir_txn::TxnStatus;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    fn dir_322(seed: u64) -> ReplicatedDirectory {
        ReplicatedDirectory::new(SuiteConfig::symmetric(3, 2, 2).unwrap(), seed).unwrap()
    }

    #[test]
    fn autocommit_crud() {
        let dir = dir_322(1);
        dir.insert(&k("a"), &val("A")).unwrap();
        assert!(dir.lookup(&k("a")).unwrap().present);
        dir.update(&k("a"), &val("A2")).unwrap();
        assert_eq!(dir.lookup(&k("a")).unwrap().value, Some(val("A2")));
        dir.delete(&k("a")).unwrap();
        assert!(!dir.lookup(&k("a")).unwrap().present);
        assert_eq!(
            dir.delete(&k("a")),
            Err(SuiteError::NotFound { key: k("a") })
        );
    }

    #[test]
    fn explicit_transaction_commits_atomically() {
        let dir = dir_322(2);
        let mut txn = dir.begin();
        txn.suite_mut().insert(&k("x"), &val("X")).unwrap();
        txn.suite_mut().insert(&k("y"), &val("Y")).unwrap();
        let id = txn.id();
        txn.commit();
        assert_eq!(dir.txn_manager().status(id), Some(TxnStatus::Committed));
        assert!(dir.lookup(&k("x")).unwrap().present);
        assert!(dir.lookup(&k("y")).unwrap().present);
    }

    #[test]
    fn dropped_transaction_rolls_back() {
        let dir = dir_322(3);
        {
            let mut txn = dir.begin();
            txn.suite_mut().insert(&k("ghost"), &val("G")).unwrap();
            // dropped without commit
        }
        assert!(!dir.lookup(&k("ghost")).unwrap().present);
        for rep in dir.reps() {
            assert!(rep.is_empty(), "no residue on any representative");
        }
    }

    #[test]
    fn explicit_abort_rolls_back() {
        let dir = dir_322(4);
        dir.insert(&k("keep"), &val("K")).unwrap();
        let mut txn = dir.begin();
        txn.suite_mut().update(&k("keep"), &val("dirty")).unwrap();
        txn.suite_mut().insert(&k("temp"), &val("T")).unwrap();
        txn.abort();
        assert_eq!(dir.lookup(&k("keep")).unwrap().value, Some(val("K")));
        assert!(!dir.lookup(&k("temp")).unwrap().present);
    }

    #[test]
    fn commit_fanout_applies_at_every_rep_and_records_obs() {
        // The per-rep commit fan-out must leave every write-quorum member
        // durably committed, bump the global txn counters, and record the
        // txn.commit span. Counters are process-global and tests run in
        // parallel, so assertions are monotone (>= before + delta).
        let g = repdir_obs::global();
        let committed_before = g.counter("txn.committed").get();
        let aborted_before = g.counter("txn.aborted").get();

        let dir = dir_322(7);
        let mut txn = dir.begin_with_policy(Box::new(FixedPolicy::new()));
        txn.suite_mut().insert(&k("fan"), &val("F")).unwrap();
        let out = txn.suite_mut().lookup(&k("fan")).unwrap();
        let id = txn.id();
        txn.commit();

        assert_eq!(dir.txn_manager().status(id), Some(TxnStatus::Committed));
        // Each quorum member saw the write and must have applied it after
        // the concurrent commit wave completed.
        for rep_id in out.quorum {
            let rep = &dir.reps()[rep_id.0 as usize];
            assert!(
                rep.snapshot().lookup(&k("fan")).is_present(),
                "rep {rep_id:?} lost the committed entry"
            );
        }
        assert!(g.counter("txn.committed").get() > committed_before);
        assert!(g.spans().iter().any(|e| e.name == "txn.commit"));

        // The abort fan-out mirrors it.
        let mut txn = dir.begin();
        txn.suite_mut().insert(&k("doomed"), &val("D")).unwrap();
        txn.abort();
        assert!(!dir.lookup(&k("doomed")).unwrap().present);
        assert!(g.counter("txn.aborted").get() > aborted_before);
        assert!(g.spans().iter().any(|e| e.name == "txn.abort"));
    }

    #[test]
    fn bulk_ops_commit_atomically_and_roll_back_on_error() {
        let dir = dir_322(11);
        let entries: Vec<(Key, Value)> = (0..8)
            .map(|i| (Key::from(format!("bulk{i:02}").as_str()), val("v")))
            .collect();
        dir.insert_many(&entries).unwrap();
        for (key, _) in &entries {
            assert!(dir.lookup(key).unwrap().present, "{key:?}");
        }
        // A batch with a mid-batch duplicate fails; the transaction wrapper
        // rolls the applied prefix back, so the directory sees none of it.
        let bad = vec![
            (k("p0"), val("v")),
            (k("p1"), val("v")),
            (k("bulk03"), val("v")),
            (k("p2"), val("v")),
        ];
        let err = dir.insert_many(&bad).unwrap_err();
        assert!(matches!(err, SuiteError::AlreadyExists { .. }), "{err:?}");
        assert!(!dir.lookup(&k("p0")).unwrap().present, "prefix rolled back");
        assert!(!dir.lookup(&k("p1")).unwrap().present, "prefix rolled back");
        // Bulk delete removes the batch in one transaction.
        let keys: Vec<Key> = entries.iter().map(|(key, _)| key.clone()).collect();
        dir.delete_many(&keys).unwrap();
        for key in &keys {
            assert!(!dir.lookup(key).unwrap().present, "{key:?}");
        }
        // DirTxn exposes the same ops under an explicit transaction.
        let mut txn = dir.begin();
        txn.insert_many(&[(k("t0"), val("T")), (k("t1"), val("T"))])
            .unwrap();
        txn.delete_many(&[k("t0")]).unwrap();
        txn.commit();
        assert!(!dir.lookup(&k("t0")).unwrap().present);
        assert!(dir.lookup(&k("t1")).unwrap().present);
    }

    #[test]
    fn run_retries_lock_timeouts() {
        // A transaction that holds a conflicting lock for a while: run()
        // must retry the victim until it succeeds.
        let dir = Arc::new(dir_322(5));
        dir.insert(&k("contended"), &val("0")).unwrap();

        let holder = {
            let dir = Arc::clone(&dir);
            std::thread::spawn(move || {
                let mut txn = dir.begin_with_policy(Box::new(FixedPolicy::new()));
                txn.suite_mut()
                    .update(&k("contended"), &val("held"))
                    .unwrap();
                // Hold locks past one lock-timeout period.
                std::thread::sleep(Duration::from_millis(700));
                txn.commit();
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        // This update conflicts at every representative in the fixed quorum;
        // the first attempts time out, a retry eventually wins.
        dir.run(|suite| suite.update(&k("contended"), &val("winner")).map(drop))
            .unwrap();
        holder.join().unwrap();
        let got = dir.lookup(&k("contended")).unwrap().value.unwrap();
        assert_eq!(got, val("winner"), "second writer committed last");
    }

    #[test]
    fn disjoint_transactions_proceed_concurrently() {
        let dir = Arc::new(dir_322(6));
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let dir = Arc::clone(&dir);
            handles.push(std::thread::spawn(move || {
                for i in 0..10u64 {
                    let key = Key::from(format!("worker{t}-{i}").as_str());
                    dir.insert(&key, &val("v")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..6u64 {
            for i in 0..10u64 {
                let key = Key::from(format!("worker{t}-{i}").as_str());
                assert!(dir.lookup(&key).unwrap().present, "{key:?}");
            }
        }
    }

    #[test]
    fn survives_one_representative_failure() {
        let dir = dir_322(7);
        dir.insert(&k("a"), &val("A")).unwrap();
        dir.reps()[0].set_available(false);
        assert!(dir.lookup(&k("a")).unwrap().present);
        dir.update(&k("a"), &val("A2")).unwrap();
        dir.delete(&k("a")).unwrap();
        dir.reps()[0].set_available(true);
        assert!(!dir.lookup(&k("a")).unwrap().present);
    }

    #[test]
    fn representative_crash_recovery_preserves_committed_data() {
        let dir = dir_322(8);
        dir.insert(&k("a"), &val("A")).unwrap();
        dir.insert(&k("b"), &val("B")).unwrap();
        for rep in dir.reps() {
            rep.crash_and_recover().unwrap();
        }
        assert!(dir.lookup(&k("a")).unwrap().present);
        assert!(dir.lookup(&k("b")).unwrap().present);
        // And the directory still accepts writes.
        dir.delete(&k("a")).unwrap();
        assert!(!dir.lookup(&k("a")).unwrap().present);
    }

    #[test]
    fn run_retries_member_death_between_collect_and_call() {
        // The ping-then-call window: a member votes into the quorum, dies,
        // and the data RPC addressed to it surfaces Rep(Unavailable) —
        // DirSuite's behavior for this interleaving is pinned by
        // repdir-core's member_death_between_collect_and_call test. Here the
        // body reproduces that outcome on its first attempt (killing rep 0
        // mid-flight) and run() must classify it retryable: the retry
        // collects a fresh quorum from the survivors and commits.
        let dir = dir_322(10);
        dir.insert(&k("a"), &val("A")).unwrap();
        let mut attempts = 0;
        dir.run(|suite| {
            attempts += 1;
            if attempts == 1 {
                dir.reps()[0].set_available(false);
                return Err(SuiteError::Rep(RepError::Unavailable));
            }
            suite.update(&k("a"), &val("A2")).map(drop)
        })
        .unwrap();
        assert_eq!(attempts, 2, "one death, one successful retry");
        dir.reps()[0].set_available(true);
        assert_eq!(dir.lookup(&k("a")).unwrap().value, Some(val("A2")));
    }

    #[test]
    fn session_clients_are_shareable_across_threads() {
        // The fan-out executor lends &SessionClient to scoped threads;
        // clients must be Send + Sync. The suite itself only needs Send
        // (its quorum policy is Send-only): the coordinator owns it, and
        // only member references cross threads.
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<SessionClient>();
        assert_send::<DirSuite<SessionClient>>();
    }

    #[test]
    fn quorum_unavailable_propagates_not_retried_forever() {
        let dir = dir_322(9);
        dir.reps()[0].set_available(false);
        dir.reps()[1].set_available(false);
        let err = dir.lookup(&k("a")).unwrap_err();
        assert!(matches!(err, SuiteError::QuorumUnavailable { .. }));
    }
}
