//! In-process session clients: a [`RepClient`] view of a
//! [`TransactionalRep`] bound to one transaction.

use std::sync::Arc;

use repdir_core::{
    CoalesceOutcome, InsertOutcome, Key, LookupReply, NeighborReply, RepClient, RepId, RepResult,
    Value, Version,
};
use repdir_txn::TxnId;

use crate::server::TransactionalRep;

/// A transaction's handle to one representative.
///
/// The suite algorithm (`repdir_core::suite::DirSuite`) is generic over
/// [`RepClient`], which has no transaction parameter — the paper's
/// pseudocode likewise leaves the ambient transaction implicit. Binding the
/// transaction into the client keeps that shape: build one `SessionClient`
/// per representative per transaction and hand them to a `DirSuite`.
#[derive(Clone, Debug)]
pub struct SessionClient {
    rep: Arc<TransactionalRep>,
    txn: TxnId,
}

impl SessionClient {
    /// Binds a representative to a transaction.
    pub fn new(rep: Arc<TransactionalRep>, txn: TxnId) -> Self {
        SessionClient { rep, txn }
    }

    /// The bound transaction.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The underlying representative.
    pub fn rep(&self) -> &Arc<TransactionalRep> {
        &self.rep
    }
}

impl RepClient for SessionClient {
    fn id(&self) -> RepId {
        self.rep.id()
    }

    fn ping(&self) -> RepResult<()> {
        self.rep.ping()
    }

    fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
        self.rep.lookup(self.txn, key)
    }

    fn predecessor(&self, key: &Key) -> RepResult<NeighborReply> {
        self.rep.predecessor(self.txn, key)
    }

    fn successor(&self, key: &Key) -> RepResult<NeighborReply> {
        self.rep.successor(self.txn, key)
    }

    fn predecessor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        self.rep.predecessor_chain(self.txn, key, limit)
    }

    fn successor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        self.rep.successor_chain(self.txn, key, limit)
    }

    fn insert(&self, key: &Key, version: Version, value: &Value) -> RepResult<InsertOutcome> {
        self.rep.insert(self.txn, key, version, value)
    }

    fn coalesce(&self, low: &Key, high: &Key, version: Version) -> RepResult<CoalesceOutcome> {
        self.rep.coalesce(self.txn, low, high, version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_client_scopes_operations_to_its_txn() {
        let rep = TransactionalRep::new(RepId(3));
        rep.begin(TxnId(1)).unwrap();
        let client = SessionClient::new(Arc::clone(&rep), TxnId(1));
        assert_eq!(client.id(), RepId(3));
        assert_eq!(client.txn(), TxnId(1));
        client.ping().unwrap();
        client
            .insert(&Key::from("k"), Version::new(1), &Value::from("v"))
            .unwrap();
        assert!(client.lookup(&Key::from("k")).unwrap().is_present());
        let nb = client.successor(&Key::Low).unwrap();
        assert_eq!(nb.key, Key::from("k"));
        let nb = client.predecessor(&Key::High).unwrap();
        assert_eq!(nb.key, Key::from("k"));
        client
            .coalesce(&Key::Low, &Key::High, Version::new(2))
            .unwrap();
        client.rep().commit(TxnId(1)).unwrap();
        assert!(rep.is_empty());
    }
}
