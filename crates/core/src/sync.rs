//! In-tree synchronization primitives with `parking_lot`-style APIs.
//!
//! The workspace builds fully offline, so instead of depending on
//! `parking_lot` we wrap [`std::sync`] primitives with the same ergonomic
//! surface the rest of the codebase relies on:
//!
//! * locking never returns a `Result` — a poisoned lock (a panic while the
//!   lock was held) is recovered rather than propagated, since every
//!   protected structure here is either repaired by its owner or torn down
//!   with the test that panicked;
//! * [`Condvar`] takes `&mut MutexGuard` instead of consuming the guard;
//! * [`MutexGuard::unlocked`] temporarily releases a held lock around a
//!   closure — the pattern the network fabric uses to deliver messages
//!   without holding its queue lock.

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive. Non-poisoning: `lock` always succeeds.
///
/// # Examples
///
/// ```
/// use repdir_core::sync::Mutex;
///
/// let m = Mutex::new(5);
/// *m.lock() += 1;
/// assert_eq!(*m.lock(), 6);
/// ```
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never fails: a poisoned
    /// lock is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            mutex: &self.inner,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                mutex: &self.inner,
                inner: Some(g),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                mutex: &self.inner,
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a sync::Mutex<T>,
    /// Always `Some` except transiently inside [`MutexGuard::unlocked`] and
    /// [`Condvar`] waits, which hand the std guard back and forth.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Temporarily unlocks the mutex, runs `f`, then re-locks.
    ///
    /// This mirrors `parking_lot::MutexGuard::unlocked`: useful when a
    /// computation must not run under the lock (e.g. delivering a message
    /// that may re-enter the lock).
    pub fn unlocked<U>(guard: &mut MutexGuard<'a, T>, f: impl FnOnce() -> U) -> U {
        guard.inner = None;
        let result = f();
        guard.inner = Some(guard.mutex.lock().unwrap_or_else(PoisonError::into_inner));
        result
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// Whether a [`Condvar`] wait ended by timeout rather than notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable operating on [`MutexGuard`]s by mutable reference.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with any
    /// condition variable: re-check the predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock. Non-poisoning, like [`Mutex`].
///
/// # Examples
///
/// ```
/// use repdir_core::sync::RwLock;
///
/// let l = RwLock::new(vec![1, 2]);
/// assert_eq!(l.read().len(), 2);
/// l.write().push(3);
/// assert_eq!(*l.read(), vec![1, 2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII shared-read guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic_exclusion() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn mutex_try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // Non-poisoning: the value is still reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn guard_unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut guard = m.lock();
        let m2 = Arc::clone(&m);
        MutexGuard::unlocked(&mut guard, move || {
            // The lock must be free here: this would deadlock otherwise.
            *m2.lock() = 5;
        });
        assert_eq!(*guard, 5);
        *guard = 6;
        drop(guard);
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        thread::sleep(Duration::from_millis(20));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        // A deadline in the past times out immediately.
        let res = cv.wait_until(&mut g, Instant::now() - Duration::from_secs(1));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wait_for_delivery_beats_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            let mut timed_out = false;
            while !*done {
                timed_out = cv.wait_for(&mut done, Duration::from_secs(5)).timed_out();
                if timed_out {
                    break;
                }
            }
            timed_out
        });
        thread::sleep(Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(!h.join().unwrap(), "notified well before the 5s deadline");
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
            assert!(l.try_write().is_none(), "readers block writers");
        }
        *l.write() += 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_into_inner_and_get_mut() {
        let mut l = RwLock::new(3);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 4);
        let mut m = Mutex::new(1);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 2);
    }
}
