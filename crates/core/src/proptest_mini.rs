//! A minimal, fully deterministic property-testing harness.
//!
//! The workspace builds offline with zero external crates, so this module
//! replaces the subset of `proptest` the test suite uses: strategies for
//! scalars, ranges, tuples and vectors, `prop_map`, weighted
//! [`prop_oneof!`], a [`proptest!`] test macro, and *shrinking-lite* — on
//! failure, the harness minimises the failing input by dropping list
//! elements and walking scalars toward their lower bound, then reports the
//! smallest still-failing case.
//!
//! Determinism: every case is derived from [`ProptestConfig::seed`] via the
//! in-tree [`SplitMix64`](crate::rng::SplitMix64) generator. The same seed
//! always produces the same case sequence, so a failure report's seed can be
//! pinned in a regression test. Set the `REPDIR_PROPTEST_SEED` environment
//! variable to explore other schedules without editing code.
//!
//! # Examples
//!
//! ```
//! use repdir_core::proptest_mini::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     #[test]
//!     fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
//!         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
//!     }
//! }
//!
//! # fn main() {} // #[test] fns only run under the test harness
//! ```

// The doctest above demonstrates the `proptest!` macro, whose whole point
// is to expand `#[test]` functions; the example compiles but is not run as
// a test, which is exactly what its trailing `fn main` comment says.
#![allow(clippy::test_attr_in_doctest)]

use std::cell::Cell;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

use crate::rng::SplitMix64;

/// Harness configuration: case count and master seed.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Master seed; every generated case derives from it deterministically.
    pub seed: u64,
    /// Upper bound on accepted shrink steps before reporting.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let seed = std::env::var("REPDIR_PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x1983_0DA1); // Daniels & Spector, 1983.
        ProptestConfig {
            cases: 256,
            seed,
            max_shrink_iters: 4096,
        }
    }
}

impl ProptestConfig {
    /// The default configuration with `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// Pins the master seed (overrides the environment).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generator of test inputs with optional shrink candidates.
///
/// `shrink` returns *simpler* variants of a failing value; the harness keeps
/// any candidate that still fails and repeats. Strategies that cannot invert
/// their construction (e.g. [`Map`], [`Union`]) return no candidates —
/// shrinking then happens at the enclosing vector/tuple level, which is
/// where most of the minimisation value lies.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Simpler candidate replacements for `value` (possibly empty).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

// ---- scalar strategies ----

/// Types with a canonical whole-domain strategy, via [`any`].
pub trait Arbitrary: Clone + Debug + 'static {
    /// Generates a uniformly distributed value.
    fn arbitrary(rng: &mut SplitMix64) -> Self;
    /// Simpler candidates for shrinking.
    fn shrink_value(&self) -> Vec<Self>;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SplitMix64) -> Self {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    if *self > 1 {
                        out.push(self / 2);
                        out.push(self - 1);
                    }
                }
                out.dedup();
                out
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SplitMix64) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SplitMix64) -> Self {
        // Uniform in [0, 1): ample for workload parameters.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn shrink_value(&self) -> Vec<Self> {
        if *self != 0.0 {
            vec![0.0, self / 2.0]
        } else {
            Vec::new()
        }
    }
}

/// The whole-domain strategy for `T` (cf. `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SplitMix64) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (value - self.start) / 2;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    if value - 1 != self.start {
                        out.push(value - 1);
                    }
                }
                out
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut SplitMix64) -> i32 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.next_below(span) as i64) as i32
    }
    fn shrink(&self, value: &i32) -> Vec<i32> {
        if *value > self.start {
            vec![self.start, self.start + (value - self.start) / 2]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value > self.start {
            vec![self.start, self.start + (value - self.start) / 2.0]
        } else {
            Vec::new()
        }
    }
}

// ---- combinators ----

/// Strategy mapping another strategy's output (see [`Strategy::prop_map`]).
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut SplitMix64) -> U {
        (self.f)(self.inner.generate(rng))
    }
    // Not invertible: shrinking happens at the enclosing collection level.
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SplitMix64) -> V {
        self.inner.generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.inner.shrink(value)
    }
}

/// A weighted choice among strategies (built by [`prop_oneof!`]).
#[derive(Clone, Debug)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V: Clone + Debug> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<V: Clone + Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SplitMix64) -> V {
        let mut pick = rng.next_below(self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick is below the total weight");
    }
    // The generating arm is unknown at shrink time: no candidates.
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
tuple_strategy! {
    (S0/v0/0)
    (S0/v0/0, S1/v1/1)
    (S0/v0/0, S1/v1/1, S2/v2/2)
    (S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3)
    (S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3, S4/v4/4)
    (S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3, S4/v4/4, S5/v5/5)
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use super::*;

    /// A strategy for vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.size.start;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Structural shrinks first: shorter lists localise failures
            // faster than simpler elements.
            if value.len() > min {
                out.push(value[..min].to_vec()); // minimal prefix
                let half = (value.len() + min) / 2;
                if half < value.len() && half > min {
                    out.push(value[..half].to_vec());
                }
                // Dropping single elements, spread across the list.
                let step = (value.len() / 8).max(1);
                for i in (0..value.len()).step_by(step) {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            // Element-wise shrinks at a few positions.
            for i in 0..value.len().min(8) {
                for candidate in self.element.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

// ---- runner ----

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses output while a
/// thread is probing candidate cases, so shrinking does not spam the log.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

fn fails<V: Clone>(test: &impl Fn(V), value: &V) -> Option<String> {
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| test(value.clone())));
    QUIET_PANICS.with(|q| q.set(false));
    result.err().map(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_owned()
        }
    })
}

/// Runs `test` against `config.cases` generated inputs, shrinking and
/// reporting the minimal failing case. Used by the [`proptest!`] macro; call
/// directly for programmatic harnesses.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first input whose
/// minimised form still fails, with a reproduction seed in the message.
pub fn run<S: Strategy>(config: ProptestConfig, strategy: S, test: impl Fn(S::Value)) {
    install_quiet_hook();
    let mut master = SplitMix64::new(config.seed);
    for case in 0..config.cases {
        let mut case_rng = master.fork();
        let value = strategy.generate(&mut case_rng);
        if let Some(first_message) = fails(&test, &value) {
            let (minimal, message, steps) = shrink_loop(
                &strategy,
                &test,
                value,
                first_message,
                config.max_shrink_iters,
            );
            panic!(
                "proptest-mini: property failed at case #{case} (seed {:#x}; \
                 set REPDIR_PROPTEST_SEED to reproduce)\n\
                 minimal failing input (after {steps} shrink steps):\n{minimal:#?}\n\
                 panic: {message}",
                config.seed
            );
        }
    }
}

fn shrink_loop<S: Strategy>(
    strategy: &S,
    test: &impl Fn(S::Value),
    mut current: S::Value,
    mut message: String,
    max_iters: u32,
) -> (S::Value, String, u32) {
    let mut steps = 0;
    'outer: while steps < max_iters {
        for candidate in strategy.shrink(&current) {
            if let Some(m) = fails(test, &candidate) {
                current = candidate;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: minimal
    }
    (current, message, steps)
}

/// Asserts a condition inside a property (alias for `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (alias for `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (alias for `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted or uniform choice among strategies producing one value type.
///
/// ```
/// use repdir_core::proptest_mini::prelude::*;
///
/// let uniform = prop_oneof![0u8..10, 50u8..60];
/// let weighted = prop_oneof![3 => 0u8..10, 1 => 50u8..60];
/// # let _ = (uniform, weighted);
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::proptest_mini::Union::new(vec![
            $(($weight, $crate::proptest_mini::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::proptest_mini::Union::new(vec![
            $((1, $crate::proptest_mini::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares deterministic property tests (cf. `proptest::proptest!`).
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running `body` against generated inputs, shrinking failures.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::proptest_mini::run(
                    $config,
                    ($($strategy,)+),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::proptest_mini::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// Everything a property-test file needs, in one glob import.
///
/// Re-exports the [`Strategy`] trait, [`any`], [`ProptestConfig`], the
/// macros, and this module under the name `proptest` so call sites written
/// against the upstream crate (`proptest::collection::vec(...)`) compile
/// unchanged.
pub mod prelude {
    pub use super::{any, Arbitrary, BoxedStrategy, ProptestConfig, Strategy, Union};
    pub use crate::proptest_mini as proptest;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate::rng::SplitMix64;

    #[test]
    fn same_seed_same_cases() {
        let strat = proptest::collection::vec((any::<u8>(), 0u32..100), 1..20);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&strat, &mut a),
                Strategy::generate(&strat, &mut b)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let strat = proptest::collection::vec(any::<u64>(), 5..20);
        let a = Strategy::generate(&strat, &mut SplitMix64::new(1));
        let b = Strategy::generate(&strat, &mut SplitMix64::new(2));
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn union_honours_weights_roughly() {
        let strat = prop_oneof![9 => 0u8..1, 1 => 1u8..2];
        let mut rng = SplitMix64::new(11);
        let hits = (0..1000).filter(|_| strat.generate(&mut rng) == 0).count();
        assert!(hits > 800, "weight-9 arm hit only {hits}/1000");
    }

    #[test]
    fn vec_strategy_lengths_in_range() {
        let strat = proptest::collection::vec(any::<bool>(), 2..6);
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn shrinking_minimises_a_vec_failure() {
        // Property "no element is >= 200" fails; the minimal counterexample
        // is a single offending element at the minimum length.
        let strat = proptest::collection::vec(0u32..1000, 1..40);
        let mut rng = SplitMix64::new(5);
        let failing = loop {
            let v = strat.generate(&mut rng);
            if v.iter().any(|&x| x >= 200) {
                break v;
            }
        };
        let test = |v: Vec<u32>| assert!(v.iter().all(|&x| x < 200));
        super::install_quiet_hook();
        let (minimal, _, _) = super::shrink_loop(&strat, &test, failing, String::new(), 4096);
        assert_eq!(minimal.len(), 1, "minimal case is one element: {minimal:?}");
        assert!(minimal[0] >= 200);
    }

    #[test]
    fn scalar_shrink_walks_to_lower_bound() {
        // Failing predicate: x >= 57. Minimal failing value must be 57.
        let strat = 0u32..1000;
        let test = |x: u32| assert!(x < 57);
        super::install_quiet_hook();
        let (minimal, _, _) = super::shrink_loop(&strat, &test, 999, String::new(), 4096);
        assert_eq!(minimal, 57);
    }

    #[test]
    fn run_passes_a_true_property() {
        super::run(
            ProptestConfig::with_cases(64),
            (proptest::collection::vec(any::<u8>(), 1..30),),
            |(v,)| {
                let doubled: Vec<u16> = v.iter().map(|&x| x as u16 * 2).collect();
                prop_assert_eq!(doubled.len(), v.len());
                prop_assert!(doubled.iter().all(|&x| x % 2 == 0));
            },
        );
    }

    #[test]
    fn run_reports_failures_with_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            super::run(
                ProptestConfig::with_cases(256),
                (proptest::collection::vec(0u32..100, 1..30),),
                |(v,)| prop_assert!(v.iter().sum::<u32>() < 50),
            );
        });
        let message = match result {
            Err(p) => *p.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(message.contains("proptest-mini"), "got: {message}");
        assert!(message.contains("minimal failing input"), "got: {message}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, trailing comma, doc comments.
        #[test]
        fn macro_generates_runnable_tests(
            xs in proptest::collection::vec(any::<u8>(), 1..10),
            flag in any::<bool>(),
            scale in 1usize..4,
        ) {
            let total: usize = xs.iter().map(|&x| x as usize * scale).sum();
            prop_assert!(total <= 255 * 10 * 4);
            if flag {
                prop_assert_ne!(xs.len(), 0);
            }
        }
    }
}
