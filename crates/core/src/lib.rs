//! # repdir-core
//!
//! A faithful implementation of **"An Algorithm for Replicated Directories"**
//! (Daniels & Spector, PODC 1983 / CMU-CS-83-123): weighted-voting
//! replication for directory objects in which **every possible key** carries
//! a version number on every replica.
//!
//! ## The problem
//!
//! Gifford's weighted voting replicates files by giving each replica
//! ("representative") a version number; reads consult `R` votes, writes `W`
//! votes, with `R + W` greater than the total so quorums always intersect.
//! Applied naively to a directory, a single version number per replica
//! serializes all modifications. Versioning each *entry* instead breaks
//! deletion: a replica holding a stale (ghost) entry answers "present with
//! version v" while another answers "not present" — with no version on the
//! "not present" reply, the client cannot tell which is current (paper §2,
//! Figures 1–3).
//!
//! ## The algorithm
//!
//! Partition the key space dynamically: each stored entry is a partition of
//! its own, and each *gap* between adjacent entries is a partition with its
//! own version number. "Not present" replies then carry the gap's version
//! and can be compared against "present" replies. Insertions split a gap
//! (both halves keep its version); deletions *coalesce* the range between
//! the deleted key's **real predecessor** and **real successor** — the
//! nearest keys present in the suite — into one gap whose new version
//! exceeds every version previously associated with any key in the range.
//!
//! ## Crate layout
//!
//! * [`Key`], [`UserKey`], [`Value`], [`Version`] — vocabulary types, with
//!   the `LOW`/`HIGH` sentinels of §3.1.
//! * [`GapMap`] — the gap-versioned state of one representative, with the
//!   five `DirRep*` operations of Fig. 6.
//! * [`RepClient`] / [`LocalRep`] — the RPC surface of a representative and
//!   an in-process implementation; `repdir-replica` provides transactional
//!   and networked implementations.
//! * [`suite::DirSuite`] — the replicated directory: quorum collection,
//!   `DirSuiteLookup/Insert/Update/Delete` and the real-neighbor searches
//!   (Figs. 8, 9, 12, 13).
//! * [`suite::SuiteConfig`] — votes and quorum sizes, enforcing
//!   `R + W > total` and `2W > total`.
//! * [`suite::quorum`] — random (the paper's §4 setup), sticky (§5's
//!   moving-primary observation), fixed, and locality (Fig. 16) policies.
//!
//! ## Quick example
//!
//! ```
//! use repdir_core::suite::{DirSuite, SuiteConfig};
//! use repdir_core::{Key, Value};
//!
//! // A 3-representative suite with read and write quorums of 2 ("3-2-2").
//! let mut dir = DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2)?, 7)?;
//!
//! dir.insert(&Key::from("passwd"), &Value::from("inode 41"))?;
//! assert!(dir.lookup(&Key::from("passwd"))?.present);
//!
//! dir.delete(&Key::from("passwd"))?;
//! assert!(!dir.lookup(&Key::from("passwd"))?.present);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytes;
pub mod channel;
mod error;
mod gapmap;
mod key;
pub mod proptest_mini;
mod rep;
pub mod rng;
pub mod suite;
pub mod sync;
mod value;
mod version;

pub use error::{ConfigError, QuorumKind, RepError, SuiteError};
pub use gapmap::{
    CoalesceOutcome, GapInfo, GapMap, InsertOutcome, LookupReply, NeighborReply, RemovedEntry,
};
pub use key::{Key, UserKey};
pub use rep::{BatchReply, BatchRequest, LocalRep, RepClient, RepId, RepResult};
pub use suite::{BulkWriteOutcome, DirSuite, QuorumSession, SuiteConfig};
pub use value::Value;
pub use version::Version;
