//! Quorum selection policies.
//!
//! The algorithm is correct for *any* choice of quorum members (every read
//! quorum intersects every write quorum by construction), so the policy is a
//! pure performance knob:
//!
//! * [`RandomPolicy`] reproduces the paper's simulations, where "the members
//!   of quorums … were selected randomly from a uniform distribution" (§4);
//! * [`StickyPolicy`] models §5's observation that "if the memberships of
//!   write quorums change infrequently, coalescing during deletions will not
//!   be costly", behaving like a moving-primary scheme;
//! * [`FixedPolicy`] always prefers the same ordering (a degenerate sticky
//!   policy — a true primary-copy-like assignment);
//! * [`LocalityPolicy`] reproduces Figure 16: transactions pick quorums near
//!   their key range so reads are local and remote writes spread evenly;
//! * [`LatencyPolicy`] closes the loop with the obs subsystem: it orders
//!   members by their measured reply-time EWMA, so a read quorum costs the
//!   R-th *fastest* member's latency instead of a random draw's.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::QuorumKind;
use crate::key::Key;
use crate::rng::SplitMix64;
use repdir_obs::{Avail, Ewma};

/// Chooses the order in which representatives are asked to join a quorum.
///
/// `candidates` returns member indices in preference order; the suite walks
/// the list, pinging each member, until enough votes are gathered. Returning
/// fewer than `n` indices is allowed — the suite appends the remaining
/// members in index order as a fallback, so a policy can express only a
/// preference prefix.
pub trait QuorumPolicy {
    /// Preference ordering for the given quorum kind over `n` members.
    /// `hint` is the key the operation concerns, when there is one, enabling
    /// locality-aware choices.
    fn candidates(&mut self, kind: QuorumKind, n: usize, hint: Option<&Key>) -> Vec<usize>;

    /// Offers the policy live per-member availability handles (member `i`
    /// described by `avails[i]`). `DirSuite::set_policy` calls this with the
    /// suite's windowed success-rate trackers; availability-aware policies
    /// ([`LatencyPolicy`]) keep the handles and discount their ranking,
    /// everything else ignores the hint.
    fn observe_availability(&mut self, _avails: &[Avail]) {}
}

impl<P: QuorumPolicy + ?Sized> QuorumPolicy for Box<P> {
    fn candidates(&mut self, kind: QuorumKind, n: usize, hint: Option<&Key>) -> Vec<usize> {
        (**self).candidates(kind, n, hint)
    }

    fn observe_availability(&mut self, avails: &[Avail]) {
        (**self).observe_availability(avails)
    }
}

/// Uniform random quorum selection (the paper's §4 simulation setup).
///
/// Each call draws an independent random permutation of the members, so
/// successive operations land on uncorrelated quorums — the worst case for
/// ghost accumulation, as §5 notes.
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    rng: SplitMix64,
}

impl RandomPolicy {
    /// Creates a policy with a deterministic seed (experiments are
    /// reproducible given the seed).
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SplitMix64::new(seed),
        }
    }
}

impl QuorumPolicy for RandomPolicy {
    fn candidates(&mut self, _kind: QuorumKind, n: usize, _hint: Option<&Key>) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut order);
        order
    }
}

/// Mostly-stable quorum selection: keeps a preferred permutation and
/// reshuffles it only with probability `change_prob` per operation.
///
/// With `change_prob = 0` this never changes (see [`FixedPolicy`]); with
/// `change_prob = 1` it degenerates to [`RandomPolicy`]. The ablation
/// benchmark sweeps this knob to quantify §5's claim that infrequent quorum
/// changes make coalescing cheap.
#[derive(Clone, Debug)]
pub struct StickyPolicy {
    rng: SplitMix64,
    change_prob: f64,
    order: Vec<usize>,
}

impl StickyPolicy {
    /// Creates a sticky policy; `change_prob` is the per-operation
    /// probability of re-drawing the preferred permutation.
    pub fn new(seed: u64, change_prob: f64) -> Self {
        StickyPolicy {
            rng: SplitMix64::new(seed),
            change_prob,
            order: Vec::new(),
        }
    }
}

impl QuorumPolicy for StickyPolicy {
    fn candidates(&mut self, _kind: QuorumKind, n: usize, _hint: Option<&Key>) -> Vec<usize> {
        if self.order.len() != n {
            self.order = (0..n).collect();
            self.rng.shuffle(&mut self.order);
        } else if self.rng.next_bool(self.change_prob) {
            self.rng.shuffle(&mut self.order);
        }
        self.order.clone()
    }
}

/// A fixed preference ordering — representative 0 is always asked first
/// unless an explicit order is supplied. Failures still rotate later members
/// in, so this behaves like a primary with automatic failover.
#[derive(Clone, Debug, Default)]
pub struct FixedPolicy {
    order: Vec<usize>,
}

impl FixedPolicy {
    /// Prefers members in index order `0, 1, 2, …`.
    pub fn new() -> Self {
        FixedPolicy::default()
    }

    /// Prefers members in the given order.
    pub fn with_order(order: Vec<usize>) -> Self {
        FixedPolicy { order }
    }
}

impl QuorumPolicy for FixedPolicy {
    fn candidates(&mut self, _kind: QuorumKind, n: usize, _hint: Option<&Key>) -> Vec<usize> {
        if self.order.is_empty() {
            (0..n).collect()
        } else {
            self.order.iter().copied().filter(|&i| i < n).collect()
        }
    }
}

/// Figure 16's locality-aware policy.
///
/// The key space is split at `pivot`: operations on keys below the pivot
/// prefer the `low_members` (reading locally), operations at or above it
/// prefer the `high_members`. For writes — which need votes beyond the local
/// group — the non-local members are appended in rotating order so "the
/// non-local write … is evenly distributed among the remote representatives"
/// (§5).
#[derive(Clone, Debug)]
pub struct LocalityPolicy {
    pivot: Key,
    low_members: Vec<usize>,
    high_members: Vec<usize>,
    rotation: usize,
}

impl LocalityPolicy {
    /// Creates a locality policy splitting the key space at `pivot` between
    /// two groups of members.
    pub fn new(pivot: Key, low_members: Vec<usize>, high_members: Vec<usize>) -> Self {
        LocalityPolicy {
            pivot,
            low_members,
            high_members,
            rotation: 0,
        }
    }
}

impl QuorumPolicy for LocalityPolicy {
    fn candidates(&mut self, kind: QuorumKind, n: usize, hint: Option<&Key>) -> Vec<usize> {
        let is_low = match hint {
            Some(k) => *k < self.pivot,
            None => true,
        };
        let (local, remote) = if is_low {
            (&self.low_members, &self.high_members)
        } else {
            (&self.high_members, &self.low_members)
        };
        let mut order: Vec<usize> = local.iter().copied().filter(|&i| i < n).collect();
        if kind == QuorumKind::Write && !remote.is_empty() {
            // Rotate through remote members so remote write load spreads
            // evenly (Fig. 16: "either B1 or B2").
            let len = remote.len();
            for j in 0..len {
                let idx = remote[(self.rotation + j) % len];
                if idx < n {
                    order.push(idx);
                }
            }
            self.rotation = (self.rotation + 1) % len;
        }
        order
    }
}

/// Shared per-member repair-health flags, set by the repair drivers and
/// read by [`LatencyPolicy`].
///
/// A member whose driver reports unhealed buckets (`TickStats.unrepaired >
/// 0`) is *known* to hold stale data that repair could not yet fix: every
/// read that lands on it collects another stale vote and re-queues a pull
/// that will fail the same way. Flagging the member demotes it to the back
/// of the quorum ordering until its driver reports the buckets healed —
/// reads route around the known-stale member during the repair window
/// without ever affecting correctness (quorum intersection holds for any
/// ordering).
#[derive(Debug, Default)]
pub struct RepairHealth {
    unhealed: crate::sync::Mutex<Vec<Arc<AtomicBool>>>,
}

impl RepairHealth {
    /// All members healthy.
    pub fn new() -> Self {
        RepairHealth::default()
    }

    fn flag(&self, member: usize) -> Arc<AtomicBool> {
        let mut flags = self.unhealed.lock();
        while flags.len() <= member {
            flags.push(Arc::new(AtomicBool::new(false)));
        }
        Arc::clone(&flags[member])
    }

    /// Marks (or clears) `member` as holding buckets repair could not heal.
    pub fn set_unrepaired(&self, member: usize, unrepaired: bool) {
        self.flag(member).store(unrepaired, Ordering::Relaxed);
    }

    /// Whether `member` is currently flagged unhealed.
    pub fn is_unrepaired(&self, member: usize) -> bool {
        self.unhealed
            .lock()
            .get(member)
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// Latency-aware quorum selection, driven by the suite's per-member
/// reply-time EWMAs (see `DirSuite::latency_policy`).
///
/// Members the policy has never seen a sample for sort *first*: they get
/// pinged, earn a sample, and from then on compete on measured latency.
/// After a few operations every member has been probed and quorums settle
/// on the R (or W) lowest-EWMA members — the fan-out wave then costs the
/// R-th fastest member's reply time. Samples keep flowing from the quorums
/// the policy itself selects, so a member that degrades is re-ranked and a
/// recovered member is re-discovered the next time the ranking probes it.
///
/// Given availability handles ([`LatencyPolicy::with_availability`] or
/// [`QuorumPolicy::observe_availability`]), the ranking key becomes
/// *availability-discounted* latency: `ewma / max(avail, floor)`. A member
/// answering in 1 ms but
/// dropping half its requests ranks like a 2 ms member — the expected cost of
/// getting an answer out of it — so flaky members sink below merely slow
/// ones without waiting for the failure-penalty EWMA to saturate.
///
/// Given a [`RepairHealth`] handle ([`LatencyPolicy::with_repair_health`]),
/// a member whose repair driver reports unhealed buckets is demoted to the
/// back of the ordering outright — reads stop re-collecting stale votes
/// from a member that is *known* to be behind until its driver heals it.
#[derive(Clone, Debug)]
pub struct LatencyPolicy {
    ewmas: Vec<Ewma>,
    avails: Vec<Avail>,
    health: Option<Arc<RepairHealth>>,
}

/// Floor applied to the availability divisor so a member observed at zero
/// availability gets a huge-but-finite key instead of dividing by zero.
const AVAIL_FLOOR: f64 = 1.0 / 64.0;

impl LatencyPolicy {
    /// Creates a policy over per-member EWMA handles (member `i` is ranked
    /// by `ewmas[i]`). Clone the handles out of the suite with
    /// `DirSuite::member_reply_ewmas`, or construct synthetic ones in
    /// tests.
    pub fn new(ewmas: Vec<Ewma>) -> Self {
        LatencyPolicy {
            ewmas,
            avails: Vec::new(),
            health: None,
        }
    }

    /// Creates a policy that ranks by availability-discounted latency:
    /// member `i`'s EWMA is divided by `avails[i]`'s observed success rate.
    /// Clone both handle vectors out of the suite
    /// (`DirSuite::member_reply_ewmas` / `DirSuite::member_avails`), or use
    /// `DirSuite::latency_policy`, which wires them for you.
    pub fn with_availability(ewmas: Vec<Ewma>, avails: Vec<Avail>) -> Self {
        LatencyPolicy {
            ewmas,
            avails,
            health: None,
        }
    }

    /// Attaches shared repair-health flags: a member flagged unhealed by
    /// its repair driver ranks last (key `+∞`) until the flag clears.
    #[must_use]
    pub fn with_repair_health(mut self, health: Arc<RepairHealth>) -> Self {
        self.health = Some(health);
        self
    }

    /// The ranking key: members flagged unhealed by their repair driver
    /// sort after everyone else; otherwise unsampled members sort before
    /// every sampled one, and sampled members sort by EWMA divided by
    /// observed availability (1.0 when no availability handle or no
    /// outcome has been recorded).
    fn key(&self, i: usize) -> f64 {
        if self.health.as_ref().is_some_and(|h| h.is_unrepaired(i)) {
            // Known-stale beats merely slow or unsampled: +∞ sorts after
            // every finite key (and after NEG_INFINITY probes) under
            // total_cmp, before only NaN.
            return f64::INFINITY;
        }
        let base = self
            .ewmas
            .get(i)
            .and_then(Ewma::value_us)
            .unwrap_or(f64::NEG_INFINITY);
        match self.avails.get(i).and_then(Avail::rate) {
            // NEG_INFINITY / rate stays NEG_INFINITY: an unsampled member
            // still probes first even once availability data exists.
            Some(rate) => base / rate.max(AVAIL_FLOOR),
            None => base,
        }
    }
}

impl QuorumPolicy for LatencyPolicy {
    fn candidates(&mut self, _kind: QuorumKind, n: usize, _hint: Option<&Key>) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        // Stable sort under a total order: ties (and the unsampled) keep
        // index order, and a NaN key (conceivable only from a poisoned EWMA
        // sample) sorts deterministically last instead of making the
        // comparator inconsistent, which `partial_cmp`'s `Equal` fallback
        // silently did.
        order.sort_by(|&a, &b| self.key(a).total_cmp(&self.key(b)));
        order
    }

    fn observe_availability(&mut self, avails: &[Avail]) {
        self.avails = avails.to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(v: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &i in v {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        v.len() == n
    }

    #[test]
    fn random_policy_is_uniform_permutation() {
        let mut p = RandomPolicy::new(1);
        let mut first_counts = vec![0u32; 4];
        for _ in 0..4000 {
            let c = p.candidates(QuorumKind::Read, 4, None);
            assert!(is_permutation(&c, 4));
            first_counts[c[0]] += 1;
        }
        for &c in &first_counts {
            assert!((800..1200).contains(&c), "not uniform: {first_counts:?}");
        }
    }

    #[test]
    fn random_policy_deterministic_from_seed() {
        let mut a = RandomPolicy::new(42);
        let mut b = RandomPolicy::new(42);
        for _ in 0..10 {
            assert_eq!(
                a.candidates(QuorumKind::Write, 5, None),
                b.candidates(QuorumKind::Write, 5, None)
            );
        }
    }

    #[test]
    fn sticky_policy_with_zero_change_never_moves() {
        let mut p = StickyPolicy::new(7, 0.0);
        let first = p.candidates(QuorumKind::Write, 5, None);
        for _ in 0..100 {
            assert_eq!(p.candidates(QuorumKind::Write, 5, None), first);
        }
    }

    #[test]
    fn sticky_policy_with_full_change_keeps_permuting() {
        let mut p = StickyPolicy::new(7, 1.0);
        let first = p.candidates(QuorumKind::Write, 6, None);
        let mut changed = false;
        for _ in 0..50 {
            let c = p.candidates(QuorumKind::Write, 6, None);
            assert!(is_permutation(&c, 6));
            changed |= c != first;
        }
        assert!(changed);
    }

    #[test]
    fn sticky_policy_adapts_to_member_count_change() {
        let mut p = StickyPolicy::new(3, 0.0);
        assert!(is_permutation(&p.candidates(QuorumKind::Read, 3, None), 3));
        assert!(is_permutation(&p.candidates(QuorumKind::Read, 5, None), 5));
    }

    #[test]
    fn fixed_policy_prefers_index_order() {
        let mut p = FixedPolicy::new();
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![0, 1, 2]);
        let mut p = FixedPolicy::with_order(vec![2, 0, 1, 9]);
        // Out-of-range entries are dropped.
        assert_eq!(p.candidates(QuorumKind::Write, 3, None), vec![2, 0, 1]);
    }

    #[test]
    fn locality_policy_reads_stay_local() {
        // Fig. 16: A1=0, A2=1 serve keys < "n"; B1=2, B2=3 serve the rest.
        let mut p = LocalityPolicy::new(Key::from("n"), vec![0, 1], vec![2, 3]);
        let low = p.candidates(QuorumKind::Read, 4, Some(&Key::from("c")));
        assert_eq!(low, vec![0, 1]);
        let high = p.candidates(QuorumKind::Read, 4, Some(&Key::from("x")));
        assert_eq!(high, vec![2, 3]);
    }

    #[test]
    fn locality_policy_writes_rotate_remote_members() {
        let mut p = LocalityPolicy::new(Key::from("n"), vec![0, 1], vec![2, 3]);
        let w1 = p.candidates(QuorumKind::Write, 4, Some(&Key::from("c")));
        let w2 = p.candidates(QuorumKind::Write, 4, Some(&Key::from("c")));
        assert_eq!(&w1[..2], &[0, 1]);
        assert_eq!(&w2[..2], &[0, 1]);
        // The first remote candidate alternates between B1 and B2.
        assert_ne!(w1[2], w2[2]);
        assert!([2, 3].contains(&w1[2]));
        assert!([2, 3].contains(&w2[2]));
    }

    #[test]
    fn latency_policy_orders_by_ewma_ascending() {
        let ewmas: Vec<Ewma> = (0..4).map(|_| Ewma::new(0.5)).collect();
        ewmas[0].record_us(300.0);
        ewmas[1].record_us(50.0);
        ewmas[2].record_us(9000.0);
        ewmas[3].record_us(120.0);
        let mut p = LatencyPolicy::new(ewmas);
        assert_eq!(p.candidates(QuorumKind::Read, 4, None), vec![1, 3, 0, 2]);
    }

    #[test]
    fn latency_policy_probes_unsampled_members_first() {
        let ewmas: Vec<Ewma> = (0..4).map(|_| Ewma::new(0.5)).collect();
        ewmas[0].record_us(10.0);
        ewmas[2].record_us(20.0);
        let mut p = LatencyPolicy::new(ewmas);
        // 1 and 3 have no samples: they lead (in index order) so the suite
        // pings them and they earn one.
        assert_eq!(p.candidates(QuorumKind::Read, 4, None), vec![1, 3, 0, 2]);
        // Once sampled, ranking is purely by measured latency.
        p.ewmas[1].record_us(15.0);
        p.ewmas[3].record_us(5.0);
        assert_eq!(p.candidates(QuorumKind::Read, 4, None), vec![3, 0, 1, 2]);
    }

    #[test]
    fn latency_policy_tracks_ewma_updates() {
        let ewmas: Vec<Ewma> = (0..2).map(|_| Ewma::new(1.0)).collect();
        ewmas[0].record_us(10.0);
        ewmas[1].record_us(20.0);
        let mut p = LatencyPolicy::new(ewmas);
        assert_eq!(p.candidates(QuorumKind::Write, 2, None), vec![0, 1]);
        // Member 0 degrades: the very next selection re-ranks.
        p.ewmas[0].record_us(500.0);
        assert_eq!(p.candidates(QuorumKind::Write, 2, None), vec![1, 0]);
    }

    #[test]
    fn boxed_policy_is_a_policy() {
        let mut p: Box<dyn QuorumPolicy> = Box::new(FixedPolicy::new());
        assert_eq!(p.candidates(QuorumKind::Read, 2, None), vec![0, 1]);
    }

    #[test]
    fn latency_policy_discounts_by_availability() {
        let ewmas: Vec<Ewma> = (0..3).map(|_| Ewma::new(1.0)).collect();
        ewmas[0].record_us(100.0);
        ewmas[1].record_us(150.0);
        ewmas[2].record_us(400.0);
        let avails: Vec<Avail> = (0..3).map(|_| Avail::new()).collect();
        for a in &avails {
            a.record(true);
        }
        let mut p = LatencyPolicy::with_availability(ewmas, avails.clone());
        // Fully available: pure latency order.
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![0, 1, 2]);
        // Member 0 starts dropping three quarters of its requests: its
        // discounted cost (100 / 0.25 = 400) ties the genuinely slow member
        // and the stable sort puts it after the healthy ones.
        for _ in 0..3 {
            avails[0].record(false);
        }
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![1, 0, 2]);
    }

    #[test]
    fn latency_policy_discount_keeps_unsampled_first() {
        let ewmas: Vec<Ewma> = (0..3).map(|_| Ewma::new(1.0)).collect();
        ewmas[0].record_us(10.0);
        ewmas[2].record_us(20.0);
        let avails: Vec<Avail> = (0..3).map(|_| Avail::new()).collect();
        avails[1].record(false); // failed before ever earning an EWMA sample
        let mut p = LatencyPolicy::with_availability(ewmas, avails);
        // NEG_INFINITY / rate is still NEG_INFINITY: member 1 probes first.
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![1, 0, 2]);
    }

    #[test]
    fn latency_policy_total_cmp_survives_nan_keys() {
        let ewmas: Vec<Ewma> = (0..3).map(|_| Ewma::new(1.0)).collect();
        ewmas[0].record_us(f64::NAN);
        ewmas[1].record_us(10.0);
        ewmas[2].record_us(20.0);
        let mut p = LatencyPolicy::new(ewmas);
        // A poisoned (NaN) EWMA must not panic or scramble the order:
        // total_cmp ranks NaN after every finite key, so the healthy
        // members come first and the result stays a permutation.
        let order = p.candidates(QuorumKind::Read, 3, None);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn observe_availability_wires_the_discount() {
        let ewmas: Vec<Ewma> = (0..2).map(|_| Ewma::new(1.0)).collect();
        ewmas[0].record_us(100.0);
        ewmas[1].record_us(120.0);
        let avails: Vec<Avail> = (0..2).map(|_| Avail::new()).collect();
        avails[0].record(false);
        avails[1].record(true);
        let mut p = LatencyPolicy::new(ewmas);
        assert_eq!(p.candidates(QuorumKind::Read, 2, None), vec![0, 1]);
        // The suite hands the handles over; the ranking flips.
        p.observe_availability(&avails);
        assert_eq!(p.candidates(QuorumKind::Read, 2, None), vec![1, 0]);
        // Policies without an override ignore the hint entirely.
        let mut fixed: Box<dyn QuorumPolicy> = Box::new(FixedPolicy::new());
        fixed.observe_availability(&[]);
        assert_eq!(fixed.candidates(QuorumKind::Read, 2, None), vec![0, 1]);
    }

    #[test]
    fn repair_health_demotes_unhealed_member_to_last() {
        let ewmas: Vec<Ewma> = (0..3).map(|_| Ewma::new(1.0)).collect();
        ewmas[0].record_us(10.0); // fastest
        ewmas[1].record_us(50.0);
        ewmas[2].record_us(200.0);
        let health = Arc::new(RepairHealth::new());
        let mut p = LatencyPolicy::new(ewmas).with_repair_health(Arc::clone(&health));
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![0, 1, 2]);
        // The fastest member's driver reports unhealed buckets: known-stale
        // beats fast, so it sorts dead last until the flag clears.
        health.set_unrepaired(0, true);
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![1, 2, 0]);
        health.set_unrepaired(0, false);
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![0, 1, 2]);
    }

    #[test]
    fn repair_health_overrides_unsampled_probe_priority() {
        let ewmas: Vec<Ewma> = (0..3).map(|_| Ewma::new(1.0)).collect();
        ewmas[0].record_us(10.0);
        ewmas[2].record_us(20.0);
        let health = Arc::new(RepairHealth::new());
        health.set_unrepaired(1, true);
        let mut p = LatencyPolicy::new(ewmas).with_repair_health(Arc::clone(&health));
        // Member 1 has never been sampled (would normally probe first), but
        // its repair driver says it holds stale buckets: don't send readers
        // at it just to collect another stale vote.
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![0, 2, 1]);
        health.set_unrepaired(1, false);
        assert_eq!(p.candidates(QuorumKind::Read, 3, None), vec![1, 0, 2]);
    }

    #[test]
    fn repair_health_flags_are_shared_across_clones() {
        let health = Arc::new(RepairHealth::new());
        assert!(!health.is_unrepaired(5)); // out-of-range reads are healthy
        health.set_unrepaired(5, true);
        assert!(health.is_unrepaired(5));
        // Members below the grown index default to healthy.
        assert!(!health.is_unrepaired(0));
    }
}
