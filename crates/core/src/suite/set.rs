//! Replicated sets: the paper's §1 remark made concrete — "Trivial
//! modifications of this algorithm may be used to implement sets or similar
//! abstractions."
//!
//! A set is a directory whose values carry no information; membership is
//! the whole story. [`DirSet`] wraps a [`DirSuite`] with set vocabulary and
//! idempotent add/remove (a set's `add` of an existing element is a no-op,
//! unlike the directory's erroring `insert`).

use crate::error::SuiteError;
use crate::key::{Key, UserKey};
use crate::rep::RepClient;
use crate::suite::DirSuite;
use crate::value::Value;

/// A replicated set of keys over a directory suite.
///
/// # Examples
///
/// ```
/// use repdir_core::suite::{DirSet, DirSuite, SuiteConfig};
/// use repdir_core::Key;
///
/// let suite = DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2)?, 9)?;
/// let mut set = DirSet::new(suite);
/// assert!(set.add(&Key::from("apple"))?);
/// assert!(!set.add(&Key::from("apple"))?, "second add is a no-op");
/// assert!(set.contains(&Key::from("apple"))?);
/// assert!(set.remove(&Key::from("apple"))?);
/// assert!(!set.remove(&Key::from("apple"))?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DirSet<C: RepClient> {
    suite: DirSuite<C>,
}

impl<C: RepClient + 'static> DirSet<C> {
    /// Wraps a directory suite as a set.
    pub fn new(suite: DirSuite<C>) -> Self {
        DirSet { suite }
    }

    /// The underlying suite (policy changes, failure injection, …).
    pub fn suite_mut(&mut self) -> &mut DirSuite<C> {
        &mut self.suite
    }

    /// Unwraps back into the directory suite.
    pub fn into_suite(self) -> DirSuite<C> {
        self.suite
    }

    /// Whether `key` is a member.
    ///
    /// # Errors
    ///
    /// Quorum/representative failures as for
    /// [`DirSuite::lookup`].
    pub fn contains(&mut self, key: &Key) -> Result<bool, SuiteError> {
        Ok(self.suite.lookup(key)?.present)
    }

    /// Adds `key`; returns `true` if it was newly added, `false` if already
    /// a member.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::insert`], minus `AlreadyExists` (absorbed into the
    /// `false` return).
    pub fn add(&mut self, key: &Key) -> Result<bool, SuiteError> {
        match self.suite.insert(key, &Value::empty()) {
            Ok(_) => Ok(true),
            Err(SuiteError::AlreadyExists { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes `key`; returns `true` if it was a member.
    ///
    /// # Errors
    ///
    /// As [`DirSuite::delete`], minus `NotFound` (absorbed into the `false`
    /// return).
    pub fn remove(&mut self, key: &Key) -> Result<bool, SuiteError> {
        match self.suite.delete(key) {
            Ok(_) => Ok(true),
            Err(SuiteError::NotFound { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// All members in key order (a full scan via real-successor walks).
    ///
    /// # Errors
    ///
    /// Quorum/representative failures.
    pub fn members(&mut self) -> Result<Vec<UserKey>, SuiteError> {
        self.suite
            .scan()
            .map(|entries| entries.into_iter().map(|(k, _)| k).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rep::LocalRep;
    use crate::suite::{RandomPolicy, SuiteConfig};
    use crate::RepId;

    fn set_322(seed: u64) -> DirSet<LocalRep> {
        let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
        let suite = DirSuite::new(
            clients,
            SuiteConfig::symmetric(3, 2, 2).unwrap(),
            Box::new(RandomPolicy::new(seed)),
        )
        .unwrap();
        DirSet::new(suite)
    }

    #[test]
    fn set_semantics_are_idempotent() {
        let mut s = set_322(1);
        assert!(!s.contains(&Key::from("x")).unwrap());
        assert!(s.add(&Key::from("x")).unwrap());
        assert!(!s.add(&Key::from("x")).unwrap());
        assert!(s.contains(&Key::from("x")).unwrap());
        assert!(s.remove(&Key::from("x")).unwrap());
        assert!(!s.remove(&Key::from("x")).unwrap());
        assert!(!s.contains(&Key::from("x")).unwrap());
    }

    #[test]
    fn members_scan_in_order() {
        let mut s = set_322(2);
        for name in ["pear", "apple", "quince", "fig"] {
            s.add(&Key::from(name)).unwrap();
        }
        s.remove(&Key::from("pear")).unwrap();
        let members: Vec<String> = s
            .members()
            .unwrap()
            .into_iter()
            .map(|k| k.to_string())
            .collect();
        assert_eq!(members, vec!["apple", "fig", "quince"]);
    }

    #[test]
    fn survives_failure_like_the_directory() {
        let mut s = set_322(3);
        s.add(&Key::from("a")).unwrap();
        s.suite_mut().member(0).set_available(false);
        assert!(s.contains(&Key::from("a")).unwrap());
        assert!(s.add(&Key::from("b")).unwrap());
        let suite = s.into_suite();
        assert_eq!(suite.config().describe(), "3-2-2");
    }
}
