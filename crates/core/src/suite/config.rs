//! Suite configuration: vote assignment and quorum sizes.
//!
//! A directory suite is "a set of directory representatives, a distribution
//! of votes, and the read and write quorum sizes R and W" (§3.2). The paper
//! writes configurations as `x-y-z`: `x` representatives (one vote each in
//! all of the paper's examples), read quorum `y`, write quorum `z`.

use std::fmt;

use crate::error::ConfigError;

/// Vote distribution and quorum thresholds for a directory suite.
///
/// Construction enforces Gifford's intersection rules:
///
/// * `R + W > total votes` — every read quorum intersects every write
///   quorum, so a read always sees at least one current copy (§2);
/// * `2W > total votes` — any two write quorums intersect, so version
///   numbers form a single lineage.
///
/// Representatives may hold **zero votes**: these are Gifford-style "weak
/// representatives" usable as hints (§2 — "representatives with zero votes
/// may be used as hints"); they can absorb writes and serve reads but never
/// contribute to a quorum count.
///
/// # Examples
///
/// ```
/// use repdir_core::suite::SuiteConfig;
///
/// // The paper's 3-2-2 example suite.
/// let cfg = SuiteConfig::symmetric(3, 2, 2)?;
/// assert_eq!(cfg.total_votes(), 3);
/// assert_eq!(cfg.describe(), "3-2-2");
/// # Ok::<(), repdir_core::ConfigError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuiteConfig {
    votes: Vec<u32>,
    read_quorum: u32,
    write_quorum: u32,
}

impl SuiteConfig {
    /// Creates a configuration with an explicit vote for each
    /// representative.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the quorum sizes violate the
    /// intersection rules, exceed the total votes, are zero, or no votes are
    /// assigned at all.
    pub fn new(votes: Vec<u32>, read_quorum: u32, write_quorum: u32) -> Result<Self, ConfigError> {
        let total: u32 = votes.iter().sum();
        if total == 0 {
            return Err(ConfigError::NoVotes);
        }
        if read_quorum == 0 || write_quorum == 0 {
            return Err(ConfigError::ZeroQuorum);
        }
        if read_quorum + write_quorum <= total {
            return Err(ConfigError::ReadWriteTooSmall {
                read: read_quorum,
                write: write_quorum,
                total,
            });
        }
        if 2 * write_quorum <= total {
            return Err(ConfigError::WriteWriteTooSmall {
                write: write_quorum,
                total,
            });
        }
        Ok(SuiteConfig {
            votes,
            read_quorum,
            write_quorum,
        })
    }

    /// Creates the paper's `x-y-z` style configuration: `n` representatives
    /// with one vote each, read quorum `r`, write quorum `w`.
    ///
    /// # Errors
    ///
    /// Same as [`SuiteConfig::new`].
    pub fn symmetric(n: u32, r: u32, w: u32) -> Result<Self, ConfigError> {
        SuiteConfig::new(vec![1; n as usize], r, w)
    }

    /// Number of representatives (including zero-vote weak ones).
    pub fn member_count(&self) -> usize {
        self.votes.len()
    }

    /// The vote weight of representative `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn votes_of(&self, i: usize) -> u32 {
        self.votes[i]
    }

    /// All vote weights in representative order.
    pub fn votes(&self) -> &[u32] {
        &self.votes
    }

    /// Sum of all votes.
    pub fn total_votes(&self) -> u32 {
        self.votes.iter().sum()
    }

    /// Votes required for a read quorum (`R`).
    pub fn read_quorum(&self) -> u32 {
        self.read_quorum
    }

    /// Votes required for a write quorum (`W`).
    pub fn write_quorum(&self) -> u32 {
        self.write_quorum
    }

    /// Renders the paper's `x-y-z` notation for symmetric configurations,
    /// or `votes=[..] R=..,W=..` otherwise.
    pub fn describe(&self) -> String {
        if self.votes.iter().all(|&v| v == 1) {
            format!(
                "{}-{}-{}",
                self.votes.len(),
                self.read_quorum,
                self.write_quorum
            )
        } else {
            format!(
                "votes={:?} R={} W={}",
                self.votes, self.read_quorum, self.write_quorum
            )
        }
    }
}

impl fmt::Display for SuiteConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_are_legal() {
        for (n, r, w) in [
            (1u32, 1u32, 1u32),
            (2, 1, 2),
            (3, 2, 2),
            (3, 1, 3),
            (4, 2, 3),
            (4, 1, 4),
            (5, 3, 3),
            (5, 2, 4),
            (5, 1, 5),
            (7, 4, 4),
        ] {
            let cfg = SuiteConfig::symmetric(n, r, w)
                .unwrap_or_else(|e| panic!("{n}-{r}-{w} should be legal: {e}"));
            assert_eq!(cfg.describe(), format!("{n}-{r}-{w}"));
        }
    }

    #[test]
    fn read_write_intersection_enforced() {
        // 3 reps, R=1, W=2: R+W = 3 <= 3 votes — reads may miss writes.
        assert_eq!(
            SuiteConfig::symmetric(3, 1, 2),
            Err(ConfigError::ReadWriteTooSmall {
                read: 1,
                write: 2,
                total: 3
            })
        );
    }

    #[test]
    fn write_write_intersection_enforced() {
        // 4 reps, R=3, W=2: R+W = 5 > 4 but 2W = 4 <= 4 — two disjoint
        // write quorums could exist.
        assert_eq!(
            SuiteConfig::symmetric(4, 3, 2),
            Err(ConfigError::WriteWriteTooSmall { write: 2, total: 4 })
        );
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert_eq!(SuiteConfig::new(vec![], 1, 1), Err(ConfigError::NoVotes));
        assert_eq!(
            SuiteConfig::new(vec![0, 0], 1, 1),
            Err(ConfigError::NoVotes)
        );
        assert_eq!(
            SuiteConfig::new(vec![1], 0, 1),
            Err(ConfigError::ZeroQuorum)
        );
        assert_eq!(
            SuiteConfig::new(vec![1], 1, 0),
            Err(ConfigError::ZeroQuorum)
        );
    }

    #[test]
    fn weighted_votes_and_weak_representatives() {
        // 2 strong reps with 2 votes, 1 weak rep with 0 votes: total 4,
        // R=2, W=3.
        let cfg = SuiteConfig::new(vec![2, 2, 0], 2, 3).unwrap();
        assert_eq!(cfg.total_votes(), 4);
        assert_eq!(cfg.member_count(), 3);
        assert_eq!(cfg.votes_of(2), 0);
        assert!(cfg.describe().contains("votes"));
        assert_eq!(cfg.votes(), &[2, 2, 0]);
    }

    #[test]
    fn unanimous_update_is_a_special_case() {
        // §2: "A unanimous update strategy may be specified if desired."
        let cfg = SuiteConfig::symmetric(5, 1, 5).unwrap();
        assert_eq!(cfg.read_quorum(), 1);
        assert_eq!(cfg.write_quorum(), cfg.total_votes());
    }

    #[test]
    fn display_matches_describe() {
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        assert_eq!(cfg.to_string(), cfg.describe());
    }
}
