//! Directory suites: the replicated directory built from representatives by
//! weighted voting (paper §3.2).
//!
//! A [`DirSuite`] combines a set of [`RepClient`]s, a vote distribution and
//! quorum sizes ([`SuiteConfig`]), and a [`QuorumPolicy`]. It implements the
//! paper's four user-facing operations —
//! [`lookup`](DirSuite::lookup) (Fig. 8), [`insert`](DirSuite::insert)
//! (Fig. 9), [`update`](DirSuite::update), and [`delete`](DirSuite::delete)
//! (Fig. 13) — plus the [`real_predecessor`](DirSuite::real_predecessor) /
//! [`real_successor`](DirSuite::real_successor) searches (Fig. 12) that
//! deletion needs.

mod config;
pub mod quorum;
mod set;

pub use config::SuiteConfig;
pub use quorum::{
    FixedPolicy, LatencyPolicy, LocalityPolicy, QuorumPolicy, RandomPolicy, RepairHealth,
    StickyPolicy,
};
pub use set::DirSet;

use crate::error::{ConfigError, QuorumKind, RepError, SuiteError};
use crate::gapmap::LookupReply;
use crate::key::Key;
use crate::rep::{BatchReply, BatchRequest, LocalRep, RepClient, RepId, RepResult};
use crate::value::Value;
use crate::version::Version;
use std::sync::Arc;
use std::time::Duration;

use repdir_obs::{Avail, Counter, Ewma, Histogram, Registry};

/// Result of [`DirSuite::lookup`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Whether the directory suite contains an entry for the key.
    pub present: bool,
    /// The winning (highest) version returned by the read quorum. For an
    /// absent key this is the current gap version — internal callers
    /// (Figs. 9, 12, 13) need it; end users ignore it (paper footnote 4).
    pub version: Version,
    /// The entry's value when present.
    pub value: Option<Value>,
    /// The representatives whose replies formed the read quorum.
    pub quorum: Vec<RepId>,
}

/// Result of [`DirSuite::insert`] and [`DirSuite::update`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The version assigned to the written entry.
    pub version: Version,
    /// The representatives written (the write quorum).
    pub quorum: Vec<RepId>,
}

/// Result of [`DirSuite::insert_many`] / [`DirSuite::delete_many`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BulkWriteOutcome {
    /// Per key, in input order: the version assigned to the written entry
    /// (for inserts) or to the coalesced gap (for deletes).
    pub versions: Vec<Version>,
}

/// Result of [`DirSuite::real_predecessor`] / [`DirSuite::real_successor`]
/// (Fig. 12).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborSearch {
    /// The real neighbor's key (possibly a sentinel).
    pub key: Key,
    /// The neighbor's current version ([`Version::ZERO`] for sentinels).
    pub version: Version,
    /// The neighbor's value (empty for sentinels).
    pub value: Option<Value>,
    /// The largest gap version encountered while searching; deletion folds
    /// this into the coalesced gap's version.
    pub max_gap_version: Version,
    /// Number of search-loop iterations (lookup probes). The paper's §4
    /// batching claim — "three successive DirRepPredecessor … in a single
    /// message" — is evaluated from this count together with `rpc_calls`.
    pub steps: u32,
    /// Neighbor (chain) RPCs issued across all quorum members. With a
    /// batch size of `b`, roughly `quorum_size * ceil(steps / b)`.
    pub rpc_calls: u32,
}

/// Result of [`DirSuite::delete`], carrying the counts behind the paper's
/// §4 statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeleteOutcome {
    /// The real predecessor used as the lower coalesce boundary.
    pub predecessor: Key,
    /// The real successor used as the upper coalesce boundary.
    pub successor: Key,
    /// The version assigned to the coalesced gap.
    pub gap_version: Version,
    /// Copies of the real predecessor/successor inserted into write-quorum
    /// members that lacked them — the "Insertions while coalescing"
    /// statistic.
    pub copies_inserted: u32,
    /// Per write-quorum member: how many entries were removed by the
    /// coalesce (the deleted entry where present, plus ghosts) — the
    /// "Entries in ranges coalesced" statistic's samples.
    pub entries_in_range: Vec<(RepId, usize)>,
    /// Ghost entries removed across the whole quorum (entries other than the
    /// deleted key) — the "Deletions while coalescing" statistic.
    pub ghosts_deleted: u32,
    /// Search-loop iterations taken by the real-predecessor search.
    pub pred_steps: u32,
    /// Search-loop iterations taken by the real-successor search.
    pub succ_steps: u32,
    /// Neighbor-chain RPCs issued by the real-predecessor search.
    pub pred_rpcs: u32,
    /// Neighbor-chain RPCs issued by the real-successor search.
    pub succ_rpcs: u32,
    /// The write quorum used.
    pub quorum: Vec<RepId>,
}

struct Member<C> {
    /// Shared so hedge/straggler workers can outlive the wave that spawned
    /// them: the adaptive executor returns at the vote threshold while
    /// detached threads still own a clone.
    client: Arc<C>,
    votes: u32,
}

/// Per-suite observability handles, resolved by name once at construction so
/// the hot path records through lock-free atomics. Each suite owns a fresh
/// [`Registry`] by default — per-member counters stay exact even when many
/// suites (or parallel tests) run in one process — and
/// [`DirSuite::set_obs_registry`] rebinds everything to a shared one.
struct SuiteObs {
    registry: Registry,
    /// Data RPCs per member (`suite.member.{i}.msgs`) — the paper's §4
    /// message-count statistic, formerly the ad-hoc `msg_counts` vector.
    msgs: Vec<Counter>,
    /// Quorum-collection pings per member (`suite.member.{i}.pings`).
    pings: Vec<Counter>,
    /// Reply-time EWMA per member (`suite.member.{i}.reply_us`), fed by
    /// every timed ping and data RPC; [`LatencyPolicy`] orders quorum
    /// candidates by it.
    reply: Vec<Ewma>,
    /// Windowed success rate per member (`suite.member.{i}.avail`), fed by
    /// every ping and data RPC outcome; adaptive waves provision by it and
    /// [`LatencyPolicy`] discounts by it.
    avail: Vec<Avail>,
    /// Suite-local reply-time histogram (`suite.reply_us`) over every timed
    /// ping and data RPC; the hedge delay is derived from its quantiles.
    /// Suite-local rather than the global `rpc.reply_us` so parallel suites
    /// (and parallel tests) never pollute each other's delay estimate.
    reply_hist: Histogram,
    /// Ping waves issued by `collect_quorum` (`suite.quorum.waves`).
    waves: Counter,
    /// Hedge RPCs the suite issued after a wave straggled
    /// (`suite.hedge.issued`).
    hedge_issued: Counter,
    /// Hedge RPCs whose reply was counted toward the quorum or merged into
    /// the read result (`suite.hedge.won`).
    hedge_won: Counter,
    /// Hedge RPCs that lost the race or went unused (`suite.hedge.wasted`).
    hedge_wasted: Counter,
    /// Preferred candidates that were pinged but failed to vote
    /// (`suite.quorum.sticky_miss`): for a sticky policy this is exactly
    /// "a remembered member stopped responding", forcing fresh collection.
    sticky_miss: Counter,
    /// Quorum collections answered from a held session without pinging
    /// (`suite.session.reuse`): each increment is one ping wave a bulk
    /// operation did not pay.
    session_reuse: Counter,
    /// Session re-validations (`suite.session.revalidate`): a held member
    /// failed mid-walk, so the session was rebuilt with one ping wave over
    /// the prior members plus re-collection of only the failed votes.
    session_revalidate: Counter,
    /// Bulk write operations started (`suite.bulk.ops`).
    bulk_ops: Counter,
    /// Keys carried by bulk write operations (`suite.bulk.keys`).
    bulk_keys: Counter,
    /// Bulk write bodies that restarted after a mid-batch re-validation and
    /// resumed from their first unacknowledged key (`suite.bulk.resumed`).
    bulk_resumed: Counter,
    /// Quorum reads that observed a member voting with a version older than
    /// the merged winner (`repair.stale_votes_observed`) — each increment is
    /// one entry queued for inline read-repair.
    stale_votes: Counter,
}

/// Sample recorded into a member's reply-time EWMA when an RPC to it fails.
///
/// A dead member often fails *fast* (a refused connection returns quicker
/// than a healthy reply), so the measured duration of a failed call says
/// nothing about the member's health — left alone it keeps a stale-fast
/// EWMA attractive and [`LatencyPolicy`] keeps routing quorums at a corpse.
/// Recording a large penalty instead demotes the member until real
/// successes decay it back. (Resetting the EWMA would be worse: unsampled
/// members sort *first* in [`LatencyPolicy`]'s order.)
const FAILED_RPC_PENALTY: std::time::Duration = std::time::Duration::from_secs(1);

impl SuiteObs {
    fn new(registry: Registry, n: usize) -> Self {
        let handle = |kind: &str, i: usize| format!("suite.member.{i}.{kind}");
        SuiteObs {
            msgs: (0..n)
                .map(|i| registry.counter(&handle("msgs", i)))
                .collect(),
            pings: (0..n)
                .map(|i| registry.counter(&handle("pings", i)))
                .collect(),
            reply: (0..n)
                .map(|i| registry.ewma(&handle("reply_us", i)))
                .collect(),
            avail: (0..n)
                .map(|i| registry.avail(&handle("avail", i)))
                .collect(),
            reply_hist: registry.histogram("suite.reply_us"),
            waves: registry.counter("suite.quorum.waves"),
            hedge_issued: registry.counter("suite.hedge.issued"),
            hedge_won: registry.counter("suite.hedge.won"),
            hedge_wasted: registry.counter("suite.hedge.wasted"),
            sticky_miss: registry.counter("suite.quorum.sticky_miss"),
            session_reuse: registry.counter("suite.session.reuse"),
            session_revalidate: registry.counter("suite.session.revalidate"),
            bulk_ops: registry.counter("suite.bulk.ops"),
            bulk_keys: registry.counter("suite.bulk.keys"),
            bulk_resumed: registry.counter("suite.bulk.resumed"),
            stale_votes: registry.counter("repair.stale_votes_observed"),
            registry,
        }
    }

    /// Records the failed-RPC penalty `sample` into member `i`'s reply-time
    /// EWMA (see [`FAILED_RPC_PENALTY`] for the default and rationale).
    fn penalize(&self, i: usize, sample: std::time::Duration) {
        self.reply[i].record(sample);
    }
}

/// One stale vote observed during a quorum read: `member` answered with
/// `seen`, but the merged quorum winner carried `latest`.
///
/// The read itself is already correct — the winner's version rule masked the
/// stale reply — so nothing is urgent. Queued votes are drained with
/// [`DirSuite::take_stale_votes`] and handed to the anti-entropy layer
/// (`repdir-repair`), which pulls the fresh entry into the stale member
/// without spending a quorum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleVote {
    /// Index of the member that voted stale.
    pub member: usize,
    /// The key the read asked about.
    pub key: Key,
    /// The version the stale member answered with (entry or gap version).
    pub seen: Version,
    /// The winning version the quorum merge settled on.
    pub latest: Version,
}

/// A shared, deduplicating queue of [`StaleVote`]s, the hand-off point
/// between the read path (any number of [`DirSuite`]s pushing via
/// [`set_stale_vote_sink`](DirSuite::set_stale_vote_sink)) and the repair
/// drivers draining votes for the member they heal.
///
/// Votes are coalesced per `(member, key)`: a key that keeps getting read
/// while stale produces one queued vote (carrying the latest observation),
/// not one redundant bucket pull per read. Per-member wakers let a driver
/// sleep until evidence for *its* member actually arrives.
#[derive(Default)]
pub struct StaleVoteQueue {
    votes: crate::sync::Mutex<Vec<StaleVote>>,
    wakers: crate::sync::Mutex<Vec<Option<VoteWaker>>>,
    spill: crate::sync::Mutex<Option<VoteSpill>>,
}

/// Callback fired after a vote for a member is queued; see
/// [`StaleVoteQueue::set_waker`].
pub type VoteWaker = Box<dyn Fn() + Send + Sync>;

/// Durability hook fired on every [`StaleVoteQueue::push`]; see
/// [`StaleVoteQueue::set_spill`].
pub type VoteSpill = Box<dyn Fn(&StaleVote) + Send + Sync>;

impl StaleVoteQueue {
    /// An empty queue with no wakers.
    pub fn new() -> Self {
        StaleVoteQueue::default()
    }

    /// Queues one vote, coalescing with any queued vote for the same
    /// `(member, key)` — the newer observation replaces the older in place,
    /// so queue order stays oldest-first per target. The member's waker (if
    /// registered) fires after the push.
    pub fn push(&self, vote: StaleVote) {
        let member = vote.member;
        {
            // Spill before queueing/waking: the driver that the waker
            // rouses should find the vote already durable, so a crash
            // between observe and pull replays it on restart.
            let spill = self.spill.lock();
            if let Some(spill) = spill.as_ref() {
                spill(&vote);
            }
        }
        {
            let mut votes = self.votes.lock();
            match votes
                .iter_mut()
                .find(|v| v.member == vote.member && v.key == vote.key)
            {
                Some(existing) => *existing = vote,
                None => votes.push(vote),
            }
        }
        let wakers = self.wakers.lock();
        if let Some(Some(waker)) = wakers.get(member) {
            waker();
        }
    }

    /// Re-queues a vote recovered from durable storage: coalesces like
    /// [`push`](Self::push) but fires neither the spill hook (it is already
    /// durable) nor the waker (recovery happens before drivers spawn).
    pub fn restore(&self, vote: StaleVote) {
        let mut votes = self.votes.lock();
        match votes
            .iter_mut()
            .find(|v| v.member == vote.member && v.key == vote.key)
        {
            Some(existing) => *existing = vote,
            None => votes.push(vote),
        }
    }

    /// Drains every queued vote naming `member`, oldest observation first.
    pub fn drain_member(&self, member: usize) -> Vec<StaleVote> {
        let mut votes = self.votes.lock();
        let mut out = Vec::new();
        votes.retain(|v| {
            if v.member == member {
                out.push(v.clone());
                false
            } else {
                true
            }
        });
        out
    }

    /// Drains the whole queue, oldest first.
    pub fn drain_all(&self) -> Vec<StaleVote> {
        std::mem::take(&mut *self.votes.lock())
    }

    /// Number of queued (coalesced) votes.
    pub fn len(&self) -> usize {
        self.votes.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs (or clears) the waker called after a vote for `member` is
    /// queued. The callback runs on the reading thread and must not block:
    /// typical implementations send a wake message to a driver channel.
    pub fn set_waker(&self, member: usize, waker: Option<VoteWaker>) {
        let mut wakers = self.wakers.lock();
        if wakers.len() <= member {
            wakers.resize_with(member + 1, || None);
        }
        wakers[member] = waker;
    }

    /// Installs (or clears) the durability hook called with every vote
    /// *before* it is queued. Typical implementations append a
    /// `WalRecord::StaleVote` sidecar to the stale member's log so a
    /// restarted process resumes targeted pulls instead of waiting for the
    /// fallback sweep. The hook runs on the reading thread: it may sync a
    /// WAL (one small record) but must not block on the network.
    pub fn set_spill(&self, spill: Option<VoteSpill>) {
        *self.spill.lock() = spill;
    }
}

impl std::fmt::Debug for StaleVoteQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaleVoteQueue")
            .field("queued", &self.len())
            .finish_non_exhaustive()
    }
}

/// A quorum held across the hops of one bulk operation (scan, the deletes'
/// copy+coalesce chain) instead of being re-collected per hop.
///
/// Safety rests on the paper's §3.1 intersection argument: *which* read
/// quorum answers never affects correctness — every read quorum intersects
/// every write quorum, so re-asking the same members each hop returns data
/// at least as fresh as any other quorum would. The only thing per-hop
/// collection buys is failure detection, and the session keeps that by
/// re-validating (one ping wave over the prior members, re-collecting only
/// the failed votes) the moment a held member returns
/// [`RepError::Unavailable`] or times out mid-walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumSession {
    /// Member indices forming the quorum, in preference order.
    pub members: Vec<usize>,
    /// Whether the session holds a read or a write quorum.
    pub kind: QuorumKind,
    /// Bumped on every re-validation; 0 for a freshly collected session.
    pub epoch: u64,
}

/// A replicated directory: Gifford-style weighted voting over gap-versioned
/// representatives.
///
/// # Examples
///
/// ```
/// use repdir_core::suite::{DirSuite, SuiteConfig};
/// use repdir_core::{Key, Value};
///
/// // The paper's 3-2-2 suite with uniformly random quorums, seeded.
/// let mut suite = DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2)?, 42)?;
/// suite.insert(&Key::from("b"), &Value::from("B"))?;
/// let found = suite.lookup(&Key::from("b"))?;
/// assert!(found.present);
/// suite.delete(&Key::from("b"))?;
/// assert!(!suite.lookup(&Key::from("b"))?.present);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DirSuite<C: RepClient> {
    // Debug: the policy is a trait object, so derive is unavailable; see the
    // manual impl below.
    members: Vec<Member<C>>,
    config: SuiteConfig,
    policy: Box<dyn QuorumPolicy + Send>,
    /// Best-effort writes to zero-vote (weak) representatives after each
    /// successful quorum write.
    write_through_weak: bool,
    /// How many successive neighbor results each chain RPC requests
    /// (§4 batching; 1 = the unbatched Fig. 12 algorithm).
    neighbor_batch: usize,
    /// How many keys each bulk-write envelope carries
    /// ([`insert_many`](DirSuite::insert_many) chunking).
    bulk_chunk: usize,
    /// Whether member RPC waves are issued concurrently (scatter-gather
    /// over scoped threads) or serialized. Concurrent is the default; the
    /// sequential mode is kept as the counter/latency baseline.
    fanout: bool,
    /// The read ([`QuorumKind::Read`] = slot 0) and write (slot 1) session
    /// quorums currently held by an in-flight bulk operation.
    sessions: [Option<QuorumSession>; 2],
    /// Nesting depth of bulk-operation scopes; sessions are dropped when it
    /// returns to zero so no quorum outlives the operation that pinned it.
    session_depth: u32,
    /// Whether bulk operations hold session quorums (default) or collect a
    /// fresh quorum per hop (the pre-session baseline).
    session_reuse: bool,
    /// Whether `collect_quorum` sizes each ping wave by expected
    /// (availability-weighted) yield and returns at the vote threshold
    /// (default), or uses the minimal-prefix waves that guarantee an extra
    /// round whenever any member is down (the baseline the property tests
    /// compare against).
    adaptive_waves: bool,
    /// Ceiling on wave over-provisioning: a wave (including hedges) may
    /// provision at most `ceil(deficit * max_overprovision)` votes.
    max_overprovision: f64,
    /// Whether straggling quorum pings and read-quorum lookups are hedged
    /// to the next-ranked spare member (off by default: hedging spends
    /// extra pings, so exact-count tests opt in explicitly).
    hedge: bool,
    /// Explicit hedge-delay override; `None` derives it from the suite's
    /// reply-time histogram.
    hedge_delay: Option<Duration>,
    /// Whether quorum reads watch for stale member votes and queue them for
    /// inline read-repair (default). Off is the no-repair baseline.
    repair: bool,
    /// Stale votes observed by quorum reads, drained by
    /// [`take_stale_votes`](DirSuite::take_stale_votes). Coalesced per
    /// `(member, key)`; unused when a shared sink is installed.
    stale_votes: Vec<StaleVote>,
    /// Shared sink stale votes are routed to instead of the local queue —
    /// the hand-off to background repair drivers
    /// ([`set_stale_vote_sink`](DirSuite::set_stale_vote_sink)).
    stale_sink: Option<Arc<StaleVoteQueue>>,
    /// Per-member repair-health flags attached to [`latency_policy`]
    /// (`DirSuite::latency_policy`) snapshots so readers demote members
    /// whose drivers report unhealed buckets.
    repair_health: Option<Arc<RepairHealth>>,
    /// EWMA sample recorded when a member RPC fails; defaults to
    /// [`FAILED_RPC_PENALTY`].
    penalty_sample: Duration,
    obs: SuiteObs,
}

impl<C: RepClient + 'static> DirSuite<C> {
    /// Creates a suite from representative clients, a configuration, and a
    /// quorum policy. Client `i` receives `config.votes_of(i)` votes.
    ///
    /// # Errors
    ///
    /// [`ConfigError::MemberCountMismatch`] if `clients.len()` differs from
    /// the configuration's member count.
    pub fn new(
        clients: Vec<C>,
        config: SuiteConfig,
        policy: Box<dyn QuorumPolicy + Send>,
    ) -> Result<Self, ConfigError> {
        if clients.len() != config.member_count() {
            return Err(ConfigError::MemberCountMismatch {
                clients: clients.len(),
                votes: config.member_count(),
            });
        }
        let n = clients.len();
        let members = clients
            .into_iter()
            .enumerate()
            .map(|(i, client)| Member {
                client: Arc::new(client),
                votes: config.votes_of(i),
            })
            .collect();
        let obs = SuiteObs::new(Registry::new(), n);
        let mut policy = policy;
        policy.observe_availability(&obs.avail);
        Ok(DirSuite {
            members,
            config,
            policy,
            write_through_weak: false,
            neighbor_batch: 1,
            bulk_chunk: 16,
            fanout: true,
            sessions: [None, None],
            session_depth: 0,
            session_reuse: true,
            adaptive_waves: true,
            max_overprovision: 2.0,
            hedge: false,
            hedge_delay: None,
            repair: true,
            stale_votes: Vec::new(),
            stale_sink: None,
            repair_health: None,
            penalty_sample: FAILED_RPC_PENALTY,
            obs,
        })
    }

    /// The suite's configuration.
    pub fn config(&self) -> &SuiteConfig {
        &self.config
    }

    /// Number of representatives.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The client for representative `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn member(&self, i: usize) -> &C {
        self.members[i].client.as_ref()
    }

    /// Replaces the quorum policy (e.g. to script specific quorums in tests
    /// or to switch from random to sticky selection mid-run). The suite's
    /// per-member availability handles are offered to the new policy
    /// ([`QuorumPolicy::observe_availability`]); availability-aware
    /// policies start discounting immediately.
    pub fn set_policy(&mut self, mut policy: Box<dyn QuorumPolicy + Send>) {
        policy.observe_availability(&self.obs.avail);
        self.policy = policy;
    }

    /// Enables or disables best-effort propagation of writes to zero-vote
    /// (weak) representatives. Failures of weak writes are ignored — weak
    /// representatives are hints (§2).
    pub fn set_write_through_weak(&mut self, enabled: bool) {
        self.write_through_weak = enabled;
    }

    /// Sets how many successive neighbor results each chain RPC requests
    /// during the real-predecessor/successor searches (the §4 batching
    /// optimization; the paper suggests 3). A batch of 1 reproduces the
    /// unbatched Fig. 12 algorithm exactly.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn set_neighbor_batch(&mut self, batch: usize) {
        assert!(batch > 0, "neighbor batch must be at least 1");
        self.neighbor_batch = batch;
    }

    /// Sets how many keys each bulk-write envelope carries (default 16):
    /// [`insert_many`](DirSuite::insert_many) packs its batch into
    /// per-member envelopes of at most this many sub-requests. Smaller
    /// chunks bound envelope size and retry granularity; larger chunks save
    /// round trips.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn set_bulk_chunk(&mut self, chunk: usize) {
        assert!(chunk > 0, "bulk chunk must be at least 1");
        self.bulk_chunk = chunk;
    }

    /// Enables or disables concurrent scatter-gather for member RPC waves.
    ///
    /// Enabled by default: each wave (quorum pings, quorum reads, quorum
    /// writes, chain refills, copy/coalesce passes) is issued from scoped
    /// threads and costs the slowest member's latency instead of the sum.
    /// Disabling serializes the identical waves — same RPCs, same counters,
    /// same answers — which is the baseline the `suite_latency` bench and
    /// the counter-equivalence property test compare against.
    pub fn set_fanout(&mut self, enabled: bool) {
        self.fanout = enabled;
    }

    /// Whether member RPC waves are issued concurrently.
    pub fn fanout_enabled(&self) -> bool {
        self.fanout
    }

    /// Enables or disables adaptive wave provisioning (enabled by default).
    ///
    /// Enabled, `collect_quorum` sizes each ping wave by its *expected*
    /// yield — every member's votes are weighted by its observed
    /// availability (`suite.member.{i}.avail`), and further candidates are
    /// provisioned until the expected vote count covers the deficit (capped
    /// by [`set_max_overprovision`](DirSuite::set_max_overprovision)) — and
    /// the concurrent wave returns the moment the threshold is met instead
    /// of joining stragglers. On a fault-free fabric every member's
    /// availability is 1.0, the wave is exactly the minimal prefix, and the
    /// behaviour (results, pings, waves) is identical to the baseline.
    ///
    /// Disabled, waves are the minimal prefix that could meet the threshold
    /// if every ping succeeded — guaranteeing a full extra round whenever
    /// any member is down. This is the pre-adaptive baseline the property
    /// tests and `hedge_bench` compare against.
    pub fn set_adaptive_waves(&mut self, enabled: bool) {
        self.adaptive_waves = enabled;
    }

    /// Whether ping waves are sized by expected yield.
    pub fn adaptive_waves_enabled(&self) -> bool {
        self.adaptive_waves
    }

    /// Caps adaptive over-provisioning: one wave (hedges included) may
    /// provision at most `ceil(deficit * factor)` votes (default 2.0).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` — a wave must always be allowed its
    /// minimal prefix.
    pub fn set_max_overprovision(&mut self, factor: f64) {
        assert!(factor >= 1.0, "overprovision factor must be at least 1.0");
        self.max_overprovision = factor;
    }

    /// Enables hedged member RPCs (disabled by default). With hedging on —
    /// and fan-out enabled — a quorum ping or read-quorum lookup that
    /// outlives the hedge delay is duplicated to the next-ranked spare
    /// member; the first usable reply wins and stragglers' replies are
    /// discarded. Hedging spends extra pings for tail latency
    /// (`suite.hedge.{issued,won,wasted}` counts the trade), so tests that
    /// assert exact ping counts leave it off.
    pub fn set_hedge(&mut self, enabled: bool) {
        self.hedge = enabled;
    }

    /// Whether straggling member RPCs are hedged.
    pub fn hedge_enabled(&self) -> bool {
        self.hedge
    }

    /// Overrides the hedge delay. `None` (the default) derives it from the
    /// suite's reply-time histogram: three times the median reply,
    /// clamped below at 500 µs — a bimodal flaky fabric makes high
    /// percentiles useless, while 3×p50 fires only on genuine stragglers.
    /// Until that histogram has samples no hedges are issued.
    pub fn set_hedge_delay(&mut self, delay: Option<Duration>) {
        self.hedge_delay = delay;
    }

    /// Enables or disables session quorums for bulk operations (enabled by
    /// default).
    ///
    /// Enabled, a scan / neighbor search / delete collects its quorum once
    /// and holds it across every hop ([`QuorumSession`]), re-validating only
    /// when a held member fails; scans additionally pack each hop's probes
    /// into one batched envelope per member. Disabled, every hop collects a
    /// fresh quorum and scans take the unbatched per-hop path — the
    /// pre-session baseline the equivalence tests and `scan_bench` compare
    /// against.
    pub fn set_session_reuse(&mut self, enabled: bool) {
        self.session_reuse = enabled;
        if !enabled {
            self.sessions = [None, None];
        }
    }

    /// Whether bulk operations hold session quorums across hops.
    pub fn session_reuse_enabled(&self) -> bool {
        self.session_reuse
    }

    /// Enables or disables inline read-repair detection (enabled by
    /// default).
    ///
    /// Enabled, every quorum read compares each member's vote against the
    /// merged winner and queues [`StaleVote`]s for the anti-entropy layer
    /// (counted as `repair.stale_votes_observed`). Disabled, reads skip the
    /// bookkeeping entirely and the queue stays empty — the no-repair
    /// baseline. Disabling also drops anything already queued.
    pub fn set_repair(&mut self, enabled: bool) {
        self.repair = enabled;
        if !enabled {
            self.stale_votes.clear();
        }
    }

    /// Whether inline read-repair detection is armed.
    pub fn repair_enabled(&self) -> bool {
        self.repair
    }

    /// Drains the queue of stale votes observed by quorum reads since the
    /// last drain, oldest first. Feed these to the repair subsystem; the
    /// reads that produced them were already correct (the version rule
    /// masked the stale replies), so draining lazily is safe. Empty while a
    /// shared sink is installed — the votes went to the sink instead.
    pub fn take_stale_votes(&mut self) -> Vec<StaleVote> {
        std::mem::take(&mut self.stale_votes)
    }

    /// Routes observed stale votes to a shared [`StaleVoteQueue`] instead of
    /// the suite-local queue — the hook a `ReplicatedDirectory` uses to feed
    /// one queue from every transaction's suite so background repair drivers
    /// can drain it. `None` restores the local queue. Anything already
    /// queued locally stays until [`take_stale_votes`] drains it.
    pub fn set_stale_vote_sink(&mut self, sink: Option<Arc<StaleVoteQueue>>) {
        self.stale_sink = sink;
    }

    /// Attaches shared per-member repair-health flags: subsequent
    /// [`latency_policy`](DirSuite::latency_policy) snapshots demote any
    /// member its repair driver flags as holding unhealed buckets. `None`
    /// detaches (future snapshots rank purely by latency/availability).
    pub fn set_repair_health(&mut self, health: Option<Arc<RepairHealth>>) {
        self.repair_health = health;
    }

    /// Overrides the reply-time EWMA sample recorded for a failed member
    /// RPC (default [`FAILED_RPC_PENALTY`], 1 s). A dead member often fails
    /// *fast*, so the penalty — not the measured duration — is what demotes
    /// it in latency-aware quorum selection; tune it to the fabric's actual
    /// tail so a single miss neither pins a member to the bottom for ages
    /// nor vanishes into the noise.
    pub fn set_penalty_sample(&mut self, sample: Duration) {
        self.penalty_sample = sample;
    }

    /// The session quorum currently held for `kind`, if a bulk operation is
    /// in flight. `None` between operations: sessions never outlive the
    /// operation that pinned them.
    pub fn session(&self, kind: QuorumKind) -> Option<&QuorumSession> {
        self.sessions[Self::kind_idx(kind)].as_ref()
    }

    fn kind_idx(kind: QuorumKind) -> usize {
        match kind {
            QuorumKind::Read => 0,
            QuorumKind::Write => 1,
        }
    }

    /// Runs `body` inside a bulk-operation scope: quorums collected while at
    /// least one scope is open are pinned as sessions and answered from
    /// cache on re-collection. Scopes nest (delete's searches run inside
    /// delete's scope); the sessions drop when the outermost scope closes.
    ///
    /// The scope is an RAII guard, not a begin/end pair: a panicking body
    /// (a poisoned client, a bug in a walk) unwinds through the guard, so
    /// the depth never leaks and no stale session outlives the operation
    /// that pinned it. The old manual pair left a panicked suite with
    /// `session_depth > 0` forever, silently answering every later quorum
    /// collection from a session that should have died — and underflowed if
    /// ever unbalanced.
    fn with_session_scope<R>(&mut self, body: impl FnOnce(&mut Self) -> R) -> R {
        struct Scope<'a, C: RepClient>(&'a mut DirSuite<C>);
        impl<C: RepClient> Drop for Scope<'_, C> {
            fn drop(&mut self) {
                self.0.session_depth -= 1;
                if self.0.session_depth == 0 {
                    self.0.sessions = [None, None];
                }
            }
        }
        self.session_depth += 1;
        let scope = Scope(self);
        body(scope.0)
    }

    fn take_session(&mut self, kind: QuorumKind) -> Option<QuorumSession> {
        self.sessions[Self::kind_idx(kind)].take()
    }

    fn store_session(&mut self, kind: QuorumKind, members: Vec<usize>, epoch: u64) {
        if self.session_reuse && self.session_depth > 0 {
            self.sessions[Self::kind_idx(kind)] = Some(QuorumSession {
                members,
                kind,
                epoch,
            });
        }
    }

    /// Runs a multi-hop body, re-validating every held session and
    /// restarting the body when a held member fails mid-walk. The budget
    /// bounds the member failures tolerated before the error surfaces.
    ///
    /// Restarts are trivially safe for read-only bodies. Write bodies (the
    /// bulk ingest walks) are restart-safe because they resume from their
    /// first unacknowledged key and replay any half-acknowledged work at
    /// the *same* explicit version the first attempt assigned — the Fig. 9
    /// version discipline makes such a replay an idempotent overwrite, so
    /// an acknowledged write is never re-applied at a new version
    /// (DESIGN.md §11).
    fn with_session_retries<R>(
        &mut self,
        mut body: impl FnMut(&mut Self) -> Result<R, SuiteError>,
    ) -> Result<R, SuiteError> {
        let mut budget = self.members.len() + 1;
        loop {
            match body(self) {
                Err(SuiteError::Rep(RepError::Unavailable))
                    if budget > 0 && self.sessions.iter().any(Option::is_some) =>
                {
                    budget -= 1;
                    // The failure does not say which held quorum the dead
                    // member belonged to, so re-confirm both.
                    for kind in [QuorumKind::Read, QuorumKind::Write] {
                        if self.session(kind).is_some() {
                            self.revalidate_session(kind)?;
                        }
                    }
                }
                out => return out,
            }
        }
    }

    /// Data RPCs sent to each representative since the last reset (pings
    /// excluded). Index `i` corresponds to member `i`. A view over the
    /// suite's obs counters (`suite.member.{i}.msgs`).
    pub fn message_counts(&self) -> Vec<u64> {
        self.obs.msgs.iter().map(Counter::get).collect()
    }

    /// Quorum-collection pings sent to each representative since the last
    /// reset. A view over the suite's obs counters
    /// (`suite.member.{i}.pings`).
    pub fn ping_counts(&self) -> Vec<u64> {
        self.obs.pings.iter().map(Counter::get).collect()
    }

    /// Zeroes both message counters.
    pub fn reset_message_counts(&mut self) {
        self.obs.msgs.iter().for_each(Counter::reset);
        self.obs.pings.iter().for_each(Counter::reset);
    }

    /// The suite's metric registry: per-member message/ping counters and
    /// reply-time EWMAs, quorum wave counters, and the spans recorded by
    /// every operation. Fresh per suite unless rebound with
    /// [`set_obs_registry`](DirSuite::set_obs_registry).
    pub fn obs(&self) -> &Registry {
        &self.obs.registry
    }

    /// Rebinds the suite's metrics to `registry` (e.g. the process-wide
    /// [`repdir_obs::global`] registry, or a disarmed one for overhead
    /// baselines). Counter readings restart from the registry's existing
    /// values — rebind before running a workload, not mid-measurement.
    pub fn set_obs_registry(&mut self, registry: Registry) {
        self.obs = SuiteObs::new(registry, self.members.len());
        // The old registry's handles are dead; re-offer the live ones.
        self.policy.observe_availability(&self.obs.avail);
    }

    /// Clones of the per-member reply-time EWMA handles, in member order.
    /// Feed these to [`LatencyPolicy`] so quorum selection tracks measured
    /// reply times; samples accumulate from every timed ping and data RPC.
    pub fn member_reply_ewmas(&self) -> Vec<Ewma> {
        self.obs.reply.clone()
    }

    /// Clones of the per-member availability handles
    /// (`suite.member.{i}.avail`), in member order: windowed success rates
    /// fed by every ping and data RPC outcome.
    pub fn member_avails(&self) -> Vec<Avail> {
        self.obs.avail.clone()
    }

    /// A [`LatencyPolicy`] wired to this suite's reply-time EWMAs and
    /// availability trackers — and, when
    /// [`set_repair_health`](DirSuite::set_repair_health) attached flags,
    /// to the repair drivers' unhealed-bucket reports. Install with
    /// [`set_policy`](DirSuite::set_policy) to route reads to the measured
    /// R fastest members, discounted by how often each actually answers.
    pub fn latency_policy(&self) -> LatencyPolicy {
        let policy =
            LatencyPolicy::with_availability(self.member_reply_ewmas(), self.member_avails());
        match &self.repair_health {
            Some(health) => policy.with_repair_health(Arc::clone(health)),
            None => policy,
        }
    }

    /// `DirSuiteLookup(x)` (Fig. 8): queries a read quorum and returns the
    /// reply with the largest version number.
    ///
    /// Sentinel keys are reported present with version zero, matching the
    /// representative semantics.
    ///
    /// # Errors
    ///
    /// [`SuiteError::QuorumUnavailable`] if a read quorum cannot be
    /// gathered; [`SuiteError::Rep`] if a member fails mid-operation.
    pub fn lookup(&mut self, key: &Key) -> Result<LookupOutcome, SuiteError> {
        let _span = self.obs.registry.span("suite.lookup");
        let quorum = self.collect_quorum(QuorumKind::Read, Some(key))?;
        if self.hedge && self.fanout {
            if let Some(delay) = self.effective_hedge_delay() {
                return self.lookup_hedged(key, &quorum, delay);
            }
        }
        // One concurrent wave over the read quorum; `pick_reply` is
        // order-independent, so merging in slot order is equivalent to
        // merging in arrival order.
        let mut votes: Vec<(usize, LookupReply)> = Vec::with_capacity(quorum.len());
        for (slot, reply) in self
            .scatter(&quorum, |_, c| c.lookup(key))
            .into_iter()
            .enumerate()
        {
            votes.push((quorum[slot], reply?));
        }
        let mut best: Option<LookupReply> = None;
        for (_, reply) in &votes {
            best = Some(match best {
                None => reply.clone(),
                Some(cur) => pick_reply(cur, reply.clone()),
            });
        }
        let best = best.expect("quorum is never empty");
        self.note_stale_votes(key, &best, &votes);
        let ids = self.ids_of(&quorum);
        Ok(match best {
            LookupReply::Present { version, value } => LookupOutcome {
                present: true,
                version,
                value: Some(value),
                quorum: ids,
            },
            LookupReply::Absent { gap_version } => LookupOutcome {
                present: false,
                version: gap_version,
                value: None,
                quorum: ids,
            },
        })
    }

    /// The hedged read path: queries the collected quorum concurrently on
    /// detached workers and, whenever the next reply straggles past the
    /// hedge delay, duplicates the lookup to a spare voting member outside
    /// the quorum. The answer is assembled from whichever replies land
    /// first until their votes cover R — sound by the intersection argument
    /// (§3.1): *any* set of members whose votes sum to the read threshold
    /// is a read quorum, so substituting a spare's reply for a straggler's
    /// cannot change the merged result. Stragglers keep recording their
    /// latency and availability from their worker threads.
    ///
    /// # Errors
    ///
    /// [`SuiteError::Rep`] with the last member error if replies plus
    /// spares cannot cover R.
    fn lookup_hedged(
        &mut self,
        key: &Key,
        quorum: &[usize],
        delay: Duration,
    ) -> Result<LookupOutcome, SuiteError> {
        use crate::channel::RecvTimeoutError;
        let needed = self.config.read_quorum();
        let mut in_quorum = vec![false; self.members.len()];
        for &i in quorum {
            in_quorum[i] = true;
        }
        let mut spares =
            (0..self.members.len()).filter(|&i| !in_quorum[i] && self.members[i].votes > 0);
        let (tx, rx) = crate::channel::unbounded();
        for &i in quorum {
            self.obs.msgs[i].inc();
            let key = key.clone();
            self.spawn_rpc_worker(i, tx.clone(), move |c| c.lookup(&key));
        }
        let mut outstanding = quorum.len();
        let mut votes = 0u32;
        let mut best: Option<LookupReply> = None;
        let mut contributors = Vec::new();
        let mut merged: Vec<(usize, LookupReply)> = Vec::new();
        let mut hedged: Vec<usize> = Vec::new();
        let mut hedges_won = 0u64;
        let mut last_err = RepError::Unavailable;
        while outstanding > 0 && votes < needed {
            match rx.recv_timeout(delay) {
                Ok((i, Ok(reply))) => {
                    outstanding -= 1;
                    votes += self.members[i].votes;
                    contributors.push(i);
                    if hedged.contains(&i) {
                        self.obs.hedge_won.inc();
                        hedges_won += 1;
                    }
                    merged.push((i, reply.clone()));
                    best = Some(match best {
                        None => reply,
                        Some(cur) => pick_reply(cur, reply),
                    });
                }
                Ok((i, Err(e))) => {
                    // The worker already recorded the availability miss and
                    // the EWMA penalty for member `i`.
                    let _ = i;
                    outstanding -= 1;
                    last_err = e;
                }
                Err(RecvTimeoutError::Timeout) => {
                    // A straggling reply: duplicate the lookup to the next
                    // spare, if one remains; otherwise keep waiting.
                    if let Some(i) = spares.next() {
                        self.obs.msgs[i].inc();
                        self.obs.hedge_issued.inc();
                        hedged.push(i);
                        let key = key.clone();
                        self.spawn_rpc_worker(i, tx.clone(), move |c| c.lookup(&key));
                        outstanding += 1;
                    }
                }
                // We hold `tx`, so disconnection is impossible; bail
                // defensively rather than spin.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.obs.hedge_wasted.add(hedged.len() as u64 - hedges_won);
        if votes < needed {
            return Err(SuiteError::Rep(last_err));
        }
        let best = best.expect("votes cover R, so at least one reply merged");
        self.note_stale_votes(key, &best, &merged);
        // Report the members whose replies actually formed the answer, in
        // member order like the unhedged path's preference-sorted quorum.
        contributors.sort_unstable();
        let ids = self.ids_of(&contributors);
        Ok(match best {
            LookupReply::Present { version, value } => LookupOutcome {
                present: true,
                version,
                value: Some(value),
                quorum: ids,
            },
            LookupReply::Absent { gap_version } => LookupOutcome {
                present: false,
                version: gap_version,
                value: None,
                quorum: ids,
            },
        })
    }

    /// `DirSuiteInsert(x, z)` (Fig. 9): looks the key up in a read quorum,
    /// takes one more than the highest version seen, and writes the entry to
    /// a write quorum.
    ///
    /// # Errors
    ///
    /// * [`SuiteError::SentinelKey`] if `key` is `LOW`/`HIGH`.
    /// * [`SuiteError::AlreadyExists`] if the suite has an entry for `key`.
    /// * [`SuiteError::QuorumUnavailable`] / [`SuiteError::Rep`] on quorum
    ///   failures.
    pub fn insert(&mut self, key: &Key, value: &Value) -> Result<WriteOutcome, SuiteError> {
        self.require_user_key(key)?;
        let looked = self.lookup(key)?;
        if looked.present {
            return Err(SuiteError::AlreadyExists { key: key.clone() });
        }
        self.write_entry(key, looked.version.next(), value)
    }

    /// `DirSuiteUpdate(x, z)`: "analogous" to insert (§3.2) but requires the
    /// entry to exist.
    ///
    /// # Errors
    ///
    /// As [`insert`](DirSuite::insert), but [`SuiteError::NotFound`] if the
    /// key has no entry.
    pub fn update(&mut self, key: &Key, value: &Value) -> Result<WriteOutcome, SuiteError> {
        self.require_user_key(key)?;
        let looked = self.lookup(key)?;
        if !looked.present {
            return Err(SuiteError::NotFound { key: key.clone() });
        }
        self.write_entry(key, looked.version.next(), value)
    }

    /// Bulk insert: the Fig. 9 flow for every key in `entries`, paid for
    /// like one operation. One read quorum answers a batched lookup
    /// envelope per [`set_bulk_chunk`](DirSuite::set_bulk_chunk) keys to
    /// discover versions, and one write quorum takes the matching envelope
    /// of versioned inserts — so ingesting N keys costs one read- and one
    /// write-quorum collection plus `O(N / chunk)` envelopes per member,
    /// instead of N collections and ~3N round trips.
    ///
    /// The semantics are exactly a sequential per-key loop of
    /// [`insert`](DirSuite::insert): keys apply in input order, and the
    /// first failing key surfaces its error with every earlier key applied.
    /// With session reuse disabled the call *is* that loop (the baseline
    /// the equivalence tests compare against).
    ///
    /// If a held member fails mid-batch, the session is re-validated and
    /// the walk resumes from the first unacknowledged key. Keys whose
    /// version was already assigned replay at that same version — an
    /// idempotent overwrite under the paper's version discipline — so an
    /// acknowledged write is never re-applied at a new version
    /// (DESIGN.md §11).
    ///
    /// # Errors
    ///
    /// As [`insert`](DirSuite::insert), for the first offending key. A
    /// duplicate key within the batch fails its later occurrence with
    /// [`SuiteError::AlreadyExists`], exactly as the loop would.
    pub fn insert_many(
        &mut self,
        entries: &[(Key, Value)],
    ) -> Result<BulkWriteOutcome, SuiteError> {
        let _span = self.obs.registry.span("suite.insert_many");
        self.obs.bulk_ops.inc();
        self.obs.bulk_keys.add(entries.len() as u64);
        if !self.session_reuse {
            let mut versions = Vec::with_capacity(entries.len());
            for (key, value) in entries {
                versions.push(self.insert(key, value)?.version);
            }
            return Ok(BulkWriteOutcome { versions });
        }
        // Both survive body restarts: `done` is the acknowledged prefix
        // (every write-quorum member confirmed those envelopes), `assigned`
        // pins each key's version from its first discovery.
        let mut done = 0usize;
        let mut assigned: Vec<Option<Version>> = vec![None; entries.len()];
        let mut attempts = 0u32;
        self.with_session_scope(|s| {
            s.with_session_retries(|s| {
                attempts += 1;
                if attempts > 1 {
                    s.obs.bulk_resumed.inc();
                }
                s.insert_many_walk(entries, &mut done, &mut assigned)
            })
        })?;
        Ok(BulkWriteOutcome {
            versions: assigned
                .into_iter()
                .map(|v| v.expect("every key is assigned on success"))
                .collect(),
        })
    }

    /// One attempt at the bulk-insert walk, resuming at `entries[*done]`.
    fn insert_many_walk(
        &mut self,
        entries: &[(Key, Value)],
        done: &mut usize,
        assigned: &mut [Option<Version>],
    ) -> Result<(), SuiteError> {
        while *done < entries.len() {
            let lo = *done;
            let hi = (lo + self.bulk_chunk).min(entries.len());

            // Version discovery: one batched lookup envelope over the read
            // quorum for the chunk's unassigned keys. Keys assigned by a
            // prior (failed) attempt skip discovery — replaying them at the
            // version already assigned is what makes the retry idempotent.
            let need: Vec<usize> = (lo..hi).filter(|&i| assigned[i].is_none()).collect();
            let mut discovered: Vec<Option<LookupReply>> = vec![None; need.len()];
            if !need.is_empty() {
                let read_q = self.collect_quorum(QuorumKind::Read, None)?;
                let env: Vec<BatchRequest> = need
                    .iter()
                    .map(|&i| BatchRequest::Lookup(entries[i].0.clone()))
                    .collect();
                let env_ref = &env;
                for wave in self.scatter(&read_q, |_, c| c.batch(env_ref)) {
                    let parts = wave?;
                    if parts.len() != env.len() {
                        return Err(protocol_violation("bulk lookup envelope arity"));
                    }
                    for (j, part) in parts.into_iter().enumerate() {
                        match part {
                            BatchReply::Lookup(reply) => {
                                discovered[j] = Some(match discovered[j].take() {
                                    None => reply,
                                    Some(cur) => pick_reply(cur, reply),
                                });
                            }
                            _ => {
                                return Err(protocol_violation(
                                    "bulk envelope missing lookup reply",
                                ))
                            }
                        }
                    }
                }
            }
            let mut chunk_replies: Vec<Option<LookupReply>> = vec![None; hi - lo];
            for (j, &i) in need.iter().enumerate() {
                chunk_replies[i - lo] = discovered[j].take();
            }

            // Walk the chunk in input order, exactly as the per-key loop
            // would: the first offending key truncates the chunk there, the
            // truncated prefix still applies, and its error surfaces after.
            let mut writes: Vec<BatchRequest> = Vec::new();
            let mut stop = hi;
            let mut pending_err = None;
            let mut seen_in_chunk: std::collections::BTreeSet<&Key> = Default::default();
            for i in lo..hi {
                let (key, value) = &entries[i];
                let reply = chunk_replies[i - lo].take();
                if key.is_sentinel() {
                    pending_err = Some(SuiteError::SentinelKey { key: key.clone() });
                    stop = i;
                    break;
                }
                if !seen_in_chunk.insert(key) {
                    // A later duplicate would have found its earlier
                    // occurrence already written; same error, one envelope.
                    pending_err = Some(SuiteError::AlreadyExists { key: key.clone() });
                    stop = i;
                    break;
                }
                let version = match assigned[i] {
                    Some(v) => v,
                    None => {
                        let reply = reply.expect("quorum is never empty");
                        if reply.is_present() {
                            pending_err = Some(SuiteError::AlreadyExists { key: key.clone() });
                            stop = i;
                            break;
                        }
                        let v = reply.version().next();
                        assigned[i] = Some(v);
                        v
                    }
                };
                writes.push(BatchRequest::Insert(key.clone(), version, value.clone()));
            }

            if !writes.is_empty() {
                let write_q = self.collect_quorum(QuorumKind::Write, None)?;
                let writes_ref = &writes;
                for wave in self.scatter(&write_q, |_, c| c.batch(writes_ref)) {
                    let parts = wave?;
                    if parts.len() != writes.len() {
                        return Err(protocol_violation("bulk insert envelope arity"));
                    }
                    for part in parts {
                        if !matches!(part, BatchReply::Insert(_)) {
                            return Err(protocol_violation("bulk envelope missing insert reply"));
                        }
                    }
                }
                if self.write_through_weak {
                    let weak: Vec<usize> = (0..self.members.len())
                        .filter(|&i| self.members[i].votes == 0)
                        .collect();
                    if !weak.is_empty() {
                        // Weak representatives are hints: ignore failures.
                        let _ = self.scatter(&weak, |_, c| c.batch(writes_ref));
                    }
                }
            }
            // Every write-quorum member acknowledged the whole envelope:
            // the chunk (up to any truncation) is durably applied.
            *done = stop;
            if let Some(e) = pending_err {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Bulk delete: the Fig. 13 flow for every key in `keys`, sharing one
    /// session scope so the whole batch pays one read- and one write-quorum
    /// collection (each delete's copy+coalesce waves are inherently
    /// multi-wave, so unlike [`insert_many`](DirSuite::insert_many) the
    /// per-key work is not packed into envelopes).
    ///
    /// Semantics are exactly a sequential per-key loop of
    /// [`delete`](DirSuite::delete); the first failing key surfaces its
    /// error with every earlier key deleted. On a mid-batch member failure
    /// the session is re-validated and the walk resumes at the first
    /// unfinished key; a half-coalesced key is re-driven through the
    /// mutation phase, whose coalesce removes whatever remains of the entry
    /// (DESIGN.md §11), so the resume never reports a key deleted that is
    /// not.
    ///
    /// # Errors
    ///
    /// As [`delete`](DirSuite::delete), for the first offending key.
    pub fn delete_many(&mut self, keys: &[Key]) -> Result<BulkWriteOutcome, SuiteError> {
        let _span = self.obs.registry.span("suite.delete_many");
        self.obs.bulk_ops.inc();
        self.obs.bulk_keys.add(keys.len() as u64);
        if !self.session_reuse {
            let mut versions = Vec::with_capacity(keys.len());
            for key in keys {
                versions.push(self.delete(key)?.gap_version);
            }
            return Ok(BulkWriteOutcome { versions });
        }
        let mut versions = Vec::with_capacity(keys.len());
        let mut attempted = vec![false; keys.len()];
        let mut attempts = 0u32;
        self.with_session_scope(|s| {
            s.with_session_retries(|s| {
                attempts += 1;
                if attempts > 1 {
                    s.obs.bulk_resumed.inc();
                }
                s.delete_many_walk(keys, &mut versions, &mut attempted)
            })
        })?;
        Ok(BulkWriteOutcome { versions })
    }

    /// One attempt at the bulk-delete walk, resuming at the first key whose
    /// gap version has not been recorded yet.
    fn delete_many_walk(
        &mut self,
        keys: &[Key],
        versions: &mut Vec<Version>,
        attempted: &mut [bool],
    ) -> Result<(), SuiteError> {
        while versions.len() < keys.len() {
            let i = versions.len();
            let key = &keys[i];
            self.require_user_key(key)?;
            let target = self.lookup(key)?;
            if !target.present && !attempted[i] {
                return Err(SuiteError::NotFound { key: key.clone() });
            }
            // A key this batch already started deleting may be
            // half-coalesced: some members hold the new gap, others still
            // the entry, so the merged lookup is unreliable. Re-drive the
            // mutation phase regardless — its coalesce removes whatever
            // remains of the entry either way.
            attempted[i] = true;
            let out = self.delete_apply(key, target.version)?;
            versions.push(out.gap_version);
        }
        Ok(())
    }

    /// `RealPredecessor(x)` (Fig. 12): finds the entry with the largest key
    /// below `x` that is *present in the suite* (skipping ghosts), returning
    /// it together with the largest gap version seen while searching.
    ///
    /// # Errors
    ///
    /// Quorum and representative failures, plus
    /// [`SuiteError::SentinelKey`] if `x` is `LOW` (nothing precedes it).
    pub fn real_predecessor(&mut self, key: &Key) -> Result<NeighborSearch, SuiteError> {
        if *key == Key::Low {
            return Err(SuiteError::SentinelKey { key: Key::Low });
        }
        self.neighbor_search(key, Direction::Pred)
    }

    /// `RealSuccessor(x)`: the mirror image of
    /// [`real_predecessor`](DirSuite::real_predecessor).
    ///
    /// # Errors
    ///
    /// As [`real_predecessor`](DirSuite::real_predecessor), with `HIGH`
    /// rejected instead of `LOW`.
    pub fn real_successor(&mut self, key: &Key) -> Result<NeighborSearch, SuiteError> {
        if *key == Key::High {
            return Err(SuiteError::SentinelKey { key: Key::High });
        }
        self.neighbor_search(key, Direction::Succ)
    }

    /// The shared Fig. 12 search loop, generalized over direction and §4
    /// batching. Each quorum member keeps a buffered *chain* of successive
    /// neighbor results; buffers refill with one chain RPC of
    /// `neighbor_batch` results when exhausted, so larger batches issue
    /// fewer RPCs for the same walk.
    fn neighbor_search(&mut self, key: &Key, dir: Direction) -> Result<NeighborSearch, SuiteError> {
        let _span = self.obs.registry.span("suite.neighbor");
        self.with_session_scope(|s| s.with_session_retries(|s| s.neighbor_walk(key, dir)))
    }

    /// One attempt at the Fig. 12 walk: collects (or reuses) the read
    /// quorum, then hops until the candidate answers present. Chain
    /// bookkeeping lives in [`NeighborChains`], shared with the scan walk.
    fn neighbor_walk(&mut self, key: &Key, dir: Direction) -> Result<NeighborSearch, SuiteError> {
        let quorum = self.collect_quorum(QuorumKind::Read, Some(key))?;
        let batch = self.neighbor_batch;
        let mut walk = NeighborChains::new(dir, key, quorum.len());

        let mut probe = key.clone();
        let mut max_gap_version = Version::ZERO;
        let mut steps = 0u32;
        let mut rpc_calls = 0u32;
        loop {
            steps += 1;
            // Drop buffered elements the walk has already passed, then
            // refill every exhausted-but-advanceable chain together in one
            // concurrent wave.
            walk.discard_passed(&probe, &mut max_gap_version);
            let refills = walk.refills();
            if !refills.is_empty() {
                rpc_calls += refills.len() as u32;
                let targets: Vec<usize> = refills.iter().map(|&(qi, _)| quorum[qi]).collect();
                let refills_ref = &refills;
                let waves = self.scatter(&targets, |slot, c| {
                    let from = &refills_ref[slot].1;
                    match dir {
                        Direction::Pred => c.predecessor_chain(from, batch),
                        Direction::Succ => c.successor_chain(from, batch),
                    }
                });
                for (slot, wave) in waves.into_iter().enumerate() {
                    walk.integrate(refills[slot].0, wave?, &probe, &mut max_gap_version);
                }
            }
            let candidate = walk.candidate(&mut max_gap_version);
            let looked = self.lookup(&candidate)?;
            if looked.present {
                return Ok(NeighborSearch {
                    key: candidate,
                    version: looked.version,
                    value: looked.value,
                    max_gap_version,
                    steps,
                    rpc_calls,
                });
            }
            probe = candidate;
        }
    }

    /// `DirSuiteDelete(x)` (Fig. 13): locates the real predecessor and real
    /// successor of `x`, copies them into any write-quorum member lacking
    /// them, and coalesces the range between them with a version exceeding
    /// every version previously associated with any key in the range.
    ///
    /// # Errors
    ///
    /// * [`SuiteError::SentinelKey`] if `key` is a sentinel.
    /// * [`SuiteError::NotFound`] if the suite has no entry for `key`.
    /// * Quorum and representative failures.
    pub fn delete(&mut self, key: &Key) -> Result<DeleteOutcome, SuiteError> {
        self.require_user_key(key)?;
        let _span = self.obs.registry.span("suite.delete");
        // The whole copy+coalesce chain runs under one session scope: the
        // read quorum pinned by the opening lookup serves both neighbor
        // searches and their inner lookups, and the write quorum is pinned
        // for the probe/copy/coalesce waves.
        self.with_session_scope(|s| s.delete_locked(key))
    }

    fn delete_locked(&mut self, key: &Key) -> Result<DeleteOutcome, SuiteError> {
        // Fig. 13 folds DirSuiteLookup(x) into `ver` mid-flow; checking it
        // up front additionally rejects deletes of absent keys before any
        // mutation.
        let target = self.lookup(key)?;
        if !target.present {
            return Err(SuiteError::NotFound { key: key.clone() });
        }
        self.delete_apply(key, target.version)
    }

    /// The mutation phase of Fig. 13: neighbor searches, copies, coalesce.
    /// Deliberately presence-agnostic — [`delete_many`](DirSuite::delete_many)
    /// re-drives it for a half-coalesced key, where the merged lookup may
    /// already answer absent, and the coalesce removes whatever remains.
    fn delete_apply(
        &mut self,
        key: &Key,
        target_version: Version,
    ) -> Result<DeleteOutcome, SuiteError> {
        let write_quorum = self.collect_quorum(QuorumKind::Write, Some(key))?;
        let succ = self.real_successor(key)?;
        let pred = self.real_predecessor(key)?;

        // "The version number of the coalesced gap must be higher than the
        // maximum of any version numbers in the range coalesced."
        let ver = succ
            .max_gap_version
            .max(pred.max_gap_version)
            .max(target_version);

        // "Make sure the predecessor and successor exist in every member of
        // the quorum." Sentinels are always present, so they are never
        // copied. Probed as one concurrent wave of lookups over every
        // (member, neighbor) pair, then one wave of inserts for the pairs
        // found missing — the per-member lookups are independent, and
        // copying a neighbor into one member never changes whether another
        // (member, neighbor) pair is present.
        let mut probes: Vec<(usize, &NeighborSearch)> = Vec::new();
        for &i in &write_quorum {
            for nb in [&succ, &pred] {
                probes.push((i, nb));
            }
        }
        let targets: Vec<usize> = probes.iter().map(|&(i, _)| i).collect();
        let probes_ref = &probes;
        let present = self.scatter(&targets, |slot, c| {
            c.lookup(&probes_ref[slot].1.key).map(|r| r.is_present())
        });
        let mut missing: Vec<(usize, &NeighborSearch)> = Vec::new();
        for (slot, reply) in present.into_iter().enumerate() {
            if !reply? {
                missing.push(probes[slot]);
            }
        }
        let copies_inserted = missing.len() as u32;
        if !missing.is_empty() {
            let targets: Vec<usize> = missing.iter().map(|&(i, _)| i).collect();
            let missing_ref = &missing;
            for outcome in self.scatter(&targets, |slot, c| {
                let nb = missing_ref[slot].1;
                let value = nb
                    .value
                    .clone()
                    .expect("non-sentinel real neighbor carries a value");
                c.insert(&nb.key, nb.version, &value)
            }) {
                outcome?;
            }
        }

        // "Coalesce the range in each member" — one concurrent wave.
        let gap_version = ver.next();
        let mut entries_in_range = Vec::with_capacity(write_quorum.len());
        let mut ghosts_deleted = 0u32;
        let outcomes = self.scatter(&write_quorum, |_, c| {
            c.coalesce(&pred.key, &succ.key, gap_version)
        });
        for (slot, outcome) in outcomes.into_iter().enumerate() {
            let out = outcome?;
            let i = write_quorum[slot];
            entries_in_range.push((self.members[i].client.id(), out.removed.len()));
            ghosts_deleted += out
                .removed
                .iter()
                .filter(|r| Key::User(r.key.clone()) != *key)
                .count() as u32;
        }

        let quorum = self.ids_of(&write_quorum);
        Ok(DeleteOutcome {
            predecessor: pred.key,
            successor: succ.key,
            gap_version,
            copies_inserted,
            entries_in_range,
            ghosts_deleted,
            pred_steps: pred.steps,
            succ_steps: succ.steps,
            pred_rpcs: pred.rpc_calls,
            succ_rpcs: succ.rpc_calls,
            quorum,
        })
    }

    /// Enumerates every entry in the suite in key order, by walking
    /// real-successor hops from `LOW` to `HIGH`. Ghosts are skipped exactly
    /// as deletion's searches skip them, so the result is the suite's
    /// logical contents.
    ///
    /// Listing a directory is a directory's bread and butter; the paper's
    /// operation set implies it through `DirRepSuccessor` without spelling
    /// it out.
    ///
    /// # Errors
    ///
    /// Quorum and representative failures.
    pub fn scan(&mut self) -> Result<Vec<(crate::key::UserKey, Value)>, SuiteError> {
        let _span = self.obs.registry.span("suite.scan");
        if !self.session_reuse {
            return self.scan_per_hop();
        }
        self.with_session_scope(|s| s.with_session_retries(|s| s.scan_walk()))
    }

    /// The pre-session scan: one full `real_successor` search — fresh
    /// quorum, fresh chains, separate lookup hop — per entry. Kept verbatim
    /// as the baseline the equivalence tests and `scan_bench` compare the
    /// session walk against.
    fn scan_per_hop(&mut self) -> Result<Vec<(crate::key::UserKey, Value)>, SuiteError> {
        let mut out = Vec::new();
        let mut probe = Key::Low;
        loop {
            let nb = self.real_successor(&probe)?;
            match nb.key {
                Key::High => return Ok(out),
                Key::User(u) => {
                    let value = nb.value.expect("user entries carry values");
                    out.push((u.clone(), value));
                    probe = Key::User(u);
                }
                Key::Low => unreachable!("a successor is never LOW"),
            }
        }
    }

    /// One session-quorum sweep from `LOW` to `HIGH`. The quorum is
    /// collected once and held ([`QuorumSession`]); every hop costs one
    /// batched envelope per member carrying the candidate's lookup plus,
    /// for members whose chain the hop drains, the next chain refill — so a
    /// failure-free scan pays one quorum collection and roughly one RPC
    /// round-trip per entry instead of the per-hop baseline's three-plus.
    fn scan_walk(&mut self) -> Result<Vec<(crate::key::UserKey, Value)>, SuiteError> {
        let batch = self.neighbor_batch;
        let dir = Direction::Succ;
        let quorum = self.collect_quorum(QuorumKind::Read, None)?;
        let mut walk = NeighborChains::new(dir, &Key::Low, quorum.len());
        let mut out = Vec::new();
        let mut probe = Key::Low;
        // The scan reports logical contents only, but gap versions fold the
        // same way the searches fold them, keeping the chain bookkeeping
        // identical.
        let mut max_gap_version = Version::ZERO;
        loop {
            // Re-assert the session each hop: a cached, no-RPC check while
            // the session holds. `suite.session.reuse` counts the ping
            // waves this saved over per-hop collection.
            let hop_quorum = self.collect_quorum(QuorumKind::Read, None)?;
            debug_assert_eq!(hop_quorum, quorum, "session quorum changed mid-walk");
            walk.discard_passed(&probe, &mut max_gap_version);
            let refills = walk.refills();
            if !refills.is_empty() {
                let targets: Vec<usize> = refills.iter().map(|&(qi, _)| quorum[qi]).collect();
                let refills_ref = &refills;
                let waves = self.scatter(&targets, |slot, c| {
                    c.successor_chain(&refills_ref[slot].1, batch)
                });
                for (slot, wave) in waves.into_iter().enumerate() {
                    walk.integrate(refills[slot].0, wave?, &probe, &mut max_gap_version);
                }
            }
            let candidate = match walk.candidate(&mut max_gap_version) {
                // The HIGH sentinel is unconditionally present at every
                // representative, so unlike the searches the scan skips its
                // closing lookup: it carries no information.
                Key::High => return Ok(out),
                other => other,
            };
            // One envelope per member: the candidate's lookup, plus a chain
            // prefetch for members this hop leaves dry so the next hop
            // needs no separate refill wave.
            let envelopes: Vec<Vec<BatchRequest>> = (0..quorum.len())
                .map(|qi| {
                    let mut reqs = vec![BatchRequest::Lookup(candidate.clone())];
                    if let Some(from) = walk.prefetch_from(qi, &candidate) {
                        reqs.push(BatchRequest::SuccessorChain(from, batch));
                    }
                    reqs
                })
                .collect();
            let envelopes_ref = &envelopes;
            let waves = self.scatter(&quorum, |slot, c| c.batch(&envelopes_ref[slot]));
            // Every member's lookup participates in the merge — ghost
            // detection needs the full quorum's votes, exactly as
            // `DirSuiteLookup` merges them.
            let mut best: Option<LookupReply> = None;
            for (qi, wave) in waves.into_iter().enumerate() {
                let mut parts = wave?.into_iter();
                match parts.next() {
                    Some(BatchReply::Lookup(reply)) => {
                        best = Some(match best {
                            None => reply,
                            Some(cur) => pick_reply(cur, reply),
                        });
                    }
                    _ => return Err(protocol_violation("batch envelope missing lookup reply")),
                }
                if envelopes[qi].len() > 1 {
                    match parts.next() {
                        Some(BatchReply::Chain(chain)) => {
                            walk.integrate(qi, chain, &probe, &mut max_gap_version);
                        }
                        _ => return Err(protocol_violation("batch envelope missing chain reply")),
                    }
                }
            }
            if let LookupReply::Present { value, .. } = best.expect("quorum is never empty") {
                if let Key::User(u) = &candidate {
                    out.push((u.clone(), value));
                }
            }
            probe = candidate;
        }
    }

    fn require_user_key(&self, key: &Key) -> Result<(), SuiteError> {
        if key.is_sentinel() {
            Err(SuiteError::SentinelKey { key: key.clone() })
        } else {
            Ok(())
        }
    }

    fn write_entry(
        &mut self,
        key: &Key,
        version: Version,
        value: &Value,
    ) -> Result<WriteOutcome, SuiteError> {
        let _span = self.obs.registry.span("suite.write");
        let quorum = self.collect_quorum(QuorumKind::Write, Some(key))?;
        for outcome in self.scatter(&quorum, |_, c| c.insert(key, version, value)) {
            outcome?;
        }
        if self.write_through_weak {
            let weak: Vec<usize> = (0..self.members.len())
                .filter(|&i| self.members[i].votes == 0)
                .collect();
            if !weak.is_empty() {
                // Weak representatives are hints: ignore failures.
                let _ = self.scatter(&weak, |_, c| c.insert(key, version, value));
            }
        }
        Ok(WriteOutcome {
            version,
            quorum: self.ids_of(&quorum),
        })
    }

    /// `CollectReadQuorum`/`CollectWriteQuorum`: pings candidates along the
    /// policy's preference order until the vote threshold is met.
    ///
    /// Pings go out in concurrent *waves*: each wave is the minimal run of
    /// further candidates whose votes would reach the threshold if every
    /// ping succeeds — exactly the members the sequential walk would ping
    /// next — so `ping_counts` is identical to the sequential
    /// implementation's. Within a wave the first `needed` votes to *arrive*
    /// win; the chosen quorum is then sorted back into preference order so
    /// downstream waves address members deterministically.
    fn collect_quorum(
        &mut self,
        kind: QuorumKind,
        hint: Option<&Key>,
    ) -> Result<Vec<usize>, SuiteError> {
        // Session fast path: a bulk operation already collected this quorum
        // and no member has failed since — answer from cache, no pings.
        if let Some(session) = self.session(kind) {
            let members = session.members.clone();
            self.obs.session_reuse.inc();
            return Ok(members);
        }
        let n = self.members.len();
        let order = self.policy.candidates(kind, n, hint);
        let chosen = self.collect_quorum_ordered(kind, order)?;
        self.store_session(kind, chosen.clone(), 0);
        Ok(chosen)
    }

    /// Rebuilds the session quorum for `kind` after a held member failed
    /// mid-walk: one ping wave over the prior members re-confirms the
    /// survivors (they head the candidate order, so the first wave is
    /// exactly them), and only the votes that fail are re-collected from
    /// the policy's further candidates. A dead majority surfaces
    /// [`SuiteError::QuorumUnavailable`] — the walk fails rather than
    /// hanging.
    fn revalidate_session(&mut self, kind: QuorumKind) -> Result<Vec<usize>, SuiteError> {
        self.obs.session_revalidate.inc();
        let (mut order, epoch) = match self.take_session(kind) {
            Some(prior) => (prior.members, prior.epoch + 1),
            None => (Vec::new(), 1),
        };
        let n = self.members.len();
        order.extend(self.policy.candidates(kind, n, None));
        let chosen = self.collect_quorum_ordered(kind, order)?;
        self.store_session(kind, chosen.clone(), epoch);
        Ok(chosen)
    }

    fn collect_quorum_ordered(
        &mut self,
        kind: QuorumKind,
        mut order: Vec<usize>,
    ) -> Result<Vec<usize>, SuiteError> {
        let n = self.members.len();
        let needed = match kind {
            QuorumKind::Read => self.config.read_quorum(),
            QuorumKind::Write => self.config.write_quorum(),
        };
        let _collect_span = self.obs.registry.span(match kind {
            QuorumKind::Read => "quorum.collect.read",
            QuorumKind::Write => "quorum.collect.write",
        });
        // Fall back to index order for members the caller did not mention,
        // and drop duplicates/out-of-range indices defensively.
        let mut mentioned = vec![false; n];
        order.retain(|&i| i < n && !std::mem::replace(&mut mentioned[i], true));
        for (i, seen) in mentioned.iter().enumerate() {
            if !seen {
                order.push(i);
            }
        }
        // Preference-order position of each member, for the final sort.
        let mut pos = vec![usize::MAX; n];
        for (p, &i) in order.iter().enumerate() {
            pos[i] = p;
        }

        let mut chosen = if self.adaptive_waves {
            self.collect_votes_adaptive(kind, needed, &order)?
        } else {
            self.collect_votes_minimal(kind, needed, &order)?
        };
        chosen.sort_by_key(|&i| pos[i]);
        Ok(chosen)
    }

    /// The minimal-prefix baseline: each wave is exactly the candidates the
    /// sequential walk would ping next, assuming every ping succeeds, so
    /// any down member guarantees a full extra round. Kept verbatim behind
    /// [`set_adaptive_waves`](DirSuite::set_adaptive_waves)`(false)` as the
    /// counter- and latency baseline.
    fn collect_votes_minimal(
        &mut self,
        kind: QuorumKind,
        needed: u32,
        order: &[usize],
    ) -> Result<Vec<usize>, SuiteError> {
        let mut chosen = Vec::new();
        let mut votes = 0u32;
        let mut cursor = 0usize;
        while votes < needed {
            let mut wave = Vec::new();
            let mut assumed = votes;
            while cursor < order.len() && assumed < needed {
                let i = order[cursor];
                cursor += 1;
                if self.members[i].votes == 0 {
                    continue;
                }
                assumed += self.members[i].votes;
                wave.push(i);
            }
            if wave.is_empty() {
                return Err(SuiteError::QuorumUnavailable {
                    kind,
                    needed,
                    gathered: votes,
                });
            }
            self.obs.waves.inc();
            for &i in &wave {
                self.obs.pings[i].inc();
            }
            let members = &self.members;
            let obs = &self.obs;
            let wave_ref = &wave;
            let arrivals = fan_out_arrival(members, &wave, self.fanout, |slot, c| {
                let pong = obs.registry.time(
                    |d| {
                        obs.reply[wave_ref[slot]].record(d);
                        obs.reply_hist.record(d);
                    },
                    || c.ping(),
                );
                obs.avail[wave_ref[slot]].record(pong.is_ok());
                pong
            });
            for (slot, pong) in arrivals {
                if votes >= needed {
                    // Late votes beyond the threshold are discarded, exactly
                    // as the sequential walk would not have pinged past it
                    // had these arrivals been its successes. (A wave only
                    // reaches the threshold when every ping in it succeeds —
                    // it is the minimal prefix — so no miss is ever skipped
                    // here and the miss counter is mode-independent.)
                    break;
                }
                if pong.is_ok() {
                    votes += self.members[wave[slot]].votes;
                    chosen.push(wave[slot]);
                } else {
                    // A preferred candidate was pinged and failed to vote:
                    // for a sticky policy this is a remembered member that
                    // stopped responding, forcing fresh collection.
                    self.obs.sticky_miss.inc();
                    self.obs.penalize(wave[slot], self.penalty_sample);
                }
            }
        }
        Ok(chosen)
    }

    /// Member `i`'s observed availability; members with no recorded
    /// outcomes are assumed fully available, which makes the adaptive wave
    /// exactly the minimal prefix on a fabric that has never failed.
    fn avail_of(&self, i: usize) -> f64 {
        self.obs.avail[i].rate().unwrap_or(1.0)
    }

    /// The delay after which a straggling hedged RPC is duplicated:
    /// the explicit override if set, else `3 × p50` of the suite's
    /// reply-time histogram clamped below at 500 µs. The median is the
    /// right anchor on a flaky fabric — the reply distribution is bimodal
    /// (fast answers vs. timeouts), so p95/p99 sit inside the timeout mass
    /// and would never fire. `None` (no samples yet) disables hedging.
    fn effective_hedge_delay(&self) -> Option<Duration> {
        const MIN_HEDGE_DELAY: Duration = Duration::from_micros(500);
        if let Some(delay) = self.hedge_delay {
            return Some(delay);
        }
        let p50 = self.obs.reply_hist.quantile_us(0.5)?;
        Some(Duration::from_micros(p50.saturating_mul(3)).max(MIN_HEDGE_DELAY))
    }

    /// Adaptive wave provisioning with optional hedging: each wave is the
    /// minimal prefix *extended* until the expected (availability-weighted)
    /// vote yield covers the deficit, bounded by the over-provision cap;
    /// the concurrent executor counts arrivals as they land and returns at
    /// the vote threshold, leaving stragglers to detached worker threads.
    fn collect_votes_adaptive(
        &mut self,
        kind: QuorumKind,
        needed: u32,
        order: &[usize],
    ) -> Result<Vec<usize>, SuiteError> {
        let hedge_delay = if self.hedge && self.fanout {
            self.effective_hedge_delay()
        } else {
            None
        };
        let mut chosen = Vec::new();
        let mut votes = 0u32;
        let mut cursor = 0usize;
        while votes < needed {
            let deficit = needed - votes;
            let cap = (f64::from(deficit) * self.max_overprovision).ceil() as u32;
            let mut wave = Vec::new();
            // Full-vote yield: the minimal prefix is sized exactly as the
            // baseline sizes it, so a never-failed fabric pings the same
            // members in the same waves.
            let mut assumed = 0u32;
            // Availability-weighted yield and the ping budget.
            let mut expected = 0.0f64;
            let mut provisioned = 0u32;
            while cursor < order.len() && assumed < deficit {
                let i = order[cursor];
                cursor += 1;
                if self.members[i].votes == 0 {
                    continue;
                }
                assumed += self.members[i].votes;
                provisioned += self.members[i].votes;
                expected += f64::from(self.members[i].votes) * self.avail_of(i);
                wave.push(i);
            }
            // Over-provision: pull further candidates forward while the
            // expected yield still falls short of the deficit, within the
            // cap. ceil(needed / avail) for uniform single-vote members.
            while cursor < order.len() && expected < f64::from(deficit) && provisioned < cap {
                let i = order[cursor];
                cursor += 1;
                if self.members[i].votes == 0 {
                    continue;
                }
                provisioned += self.members[i].votes;
                expected += f64::from(self.members[i].votes) * self.avail_of(i);
                wave.push(i);
            }
            if wave.is_empty() {
                return Err(SuiteError::QuorumUnavailable {
                    kind,
                    needed,
                    gathered: votes,
                });
            }
            self.obs.waves.inc();
            for &i in &wave {
                self.obs.pings[i].inc();
            }
            if self.fanout {
                self.run_adaptive_wave(
                    &wave,
                    needed,
                    &mut votes,
                    &mut chosen,
                    &mut cursor,
                    order,
                    provisioned,
                    cap,
                    hedge_delay,
                );
            } else {
                // Sequential baseline of the same wave: every provisioned
                // ping is issued (they were already counted), successes
                // beyond the threshold are discarded exactly as the
                // concurrent executor ignores stragglers.
                for &i in &wave {
                    let pong = self.timed_ping(i);
                    if votes >= needed {
                        continue;
                    }
                    if pong.is_ok() {
                        votes += self.members[i].votes;
                        chosen.push(i);
                    } else {
                        self.obs.sticky_miss.inc();
                        self.obs.penalize(i, self.penalty_sample);
                    }
                }
            }
        }
        Ok(chosen)
    }

    /// One timed, availability-recorded ping, inline on this thread.
    fn timed_ping(&self, i: usize) -> RepResult<()> {
        let obs = &self.obs;
        let pong = obs.registry.time(
            |d| {
                obs.reply[i].record(d);
                obs.reply_hist.record(d);
            },
            || self.members[i].client.ping(),
        );
        obs.avail[i].record(pong.is_ok());
        pong
    }

    /// Compares each member's lookup vote against the merged winner and
    /// queues the stale ones for the repair layer. A member is stale when
    /// its reply version (entry or gap) is strictly below the winner's: by
    /// the version rule, equal versions carry identical data, so only a
    /// strict gap means the member missed a write.
    fn note_stale_votes(&mut self, key: &Key, best: &LookupReply, votes: &[(usize, LookupReply)]) {
        if !self.repair {
            return;
        }
        let latest = best.version();
        for (member, reply) in votes {
            let seen = reply.version();
            if seen < latest {
                self.obs.stale_votes.inc();
                let vote = StaleVote {
                    member: *member,
                    key: key.clone(),
                    seen,
                    latest,
                };
                match &self.stale_sink {
                    Some(sink) => sink.push(vote),
                    // Coalesce per (member, key), keeping the latest
                    // observation: a key that is read repeatedly while
                    // stale must cost one targeted pull, not one per read.
                    None => match self
                        .stale_votes
                        .iter_mut()
                        .find(|v| v.member == *member && v.key == *key)
                    {
                        Some(existing) => *existing = vote,
                        None => self.stale_votes.push(vote),
                    },
                }
            }
        }
    }

    /// Spawns a detached worker that runs `call` against member `i` and
    /// reports `(i, result)` on `tx`. Unlike the scoped [`fan_out`]
    /// threads, the worker owns clones of the client and the obs handles,
    /// so it keeps recording (EWMA, reply histogram, availability, failure
    /// penalty) even after the coordinator stopped listening at the vote
    /// threshold; its send simply fails once the receiver is gone. A
    /// panicking client scores as [`RepError::Unavailable`] — out here it
    /// is indistinguishable from a dead one — rather than poisoning the
    /// coordinator.
    fn spawn_rpc_worker<T, F>(
        &self,
        i: usize,
        tx: crate::channel::Sender<(usize, RepResult<T>)>,
        call: F,
    ) where
        T: Send + 'static,
        F: FnOnce(&C) -> RepResult<T> + Send + 'static,
    {
        let client = Arc::clone(&self.members[i].client);
        let registry = self.obs.registry.clone();
        let ewma = self.obs.reply[i].clone();
        let hist = self.obs.reply_hist.clone();
        let avail = self.obs.avail[i].clone();
        let penalty = self.penalty_sample;
        std::thread::Builder::new()
            .name(format!("repdir-hedge-{i}"))
            .spawn(move || {
                let result = registry
                    .time(
                        |d| {
                            ewma.record(d);
                            hist.record(d);
                        },
                        || {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                call(client.as_ref())
                            }))
                        },
                    )
                    .unwrap_or(Err(RepError::Unavailable));
                let ok = result.is_ok();
                avail.record(ok);
                if !ok {
                    ewma.record(penalty);
                }
                let _ = tx.send((i, result));
            })
            .expect("spawn rpc worker");
    }

    /// Runs one provisioned wave concurrently: counts arrivals until the
    /// vote threshold, hedging stragglers to further candidates when a
    /// hedge delay is armed. Members consumed for hedges advance `cursor`,
    /// so a later wave never re-pings them.
    #[allow(clippy::too_many_arguments)]
    fn run_adaptive_wave(
        &mut self,
        wave: &[usize],
        needed: u32,
        votes: &mut u32,
        chosen: &mut Vec<usize>,
        cursor: &mut usize,
        order: &[usize],
        mut provisioned: u32,
        cap: u32,
        hedge_delay: Option<Duration>,
    ) {
        use crate::channel::RecvTimeoutError;
        let (tx, rx) = crate::channel::unbounded();
        for &i in wave {
            self.spawn_rpc_worker(i, tx.clone(), |c| c.ping());
        }
        let mut outstanding = wave.len();
        let mut hedged: Vec<usize> = Vec::new();
        let mut hedges_won = 0u64;
        while outstanding > 0 && *votes < needed {
            let arrival = match hedge_delay {
                Some(delay) => match rx.recv_timeout(delay) {
                    Ok(pair) => Some(pair),
                    Err(RecvTimeoutError::Timeout) => {
                        // The wave straggles: duplicate work to the next
                        // spare candidate, if the budget allows one.
                        while *cursor < order.len() && provisioned < cap {
                            let i = order[*cursor];
                            *cursor += 1;
                            if self.members[i].votes == 0 {
                                continue;
                            }
                            provisioned += self.members[i].votes;
                            self.obs.pings[i].inc();
                            self.obs.hedge_issued.inc();
                            hedged.push(i);
                            self.spawn_rpc_worker(i, tx.clone(), |c| c.ping());
                            outstanding += 1;
                            break;
                        }
                        continue;
                    }
                    // We hold `tx`, so disconnection is impossible; treat
                    // it as wave exhaustion defensively.
                    Err(RecvTimeoutError::Disconnected) => None,
                },
                None => rx.recv().ok(),
            };
            let Some((i, pong)) = arrival else { break };
            outstanding -= 1;
            if pong.is_ok() {
                *votes += self.members[i].votes;
                chosen.push(i);
                if hedged.contains(&i) {
                    self.obs.hedge_won.inc();
                    hedges_won += 1;
                }
            } else {
                // Workers record availability and the EWMA penalty
                // themselves; the algorithmic miss count stays with the
                // coordinator, mirroring the baseline.
                self.obs.sticky_miss.inc();
            }
        }
        self.obs.hedge_wasted.add(hedged.len() as u64 - hedges_won);
    }

    /// Issues one RPC wave: counts a data message per target, then runs `f`
    /// against every target concurrently (or serially with fan-out
    /// disabled). Results come back in target order. Counters are bumped
    /// only here in the coordinator, before the wave launches, which is
    /// what keeps the message counts exact under concurrency: every wave is
    /// a known set of RPCs regardless of reply order. Each member's call is
    /// timed into its reply-time EWMA (skipped when the registry is
    /// disarmed).
    fn scatter<T: Send>(
        &mut self,
        targets: &[usize],
        f: impl Fn(usize, &C) -> RepResult<T> + Sync,
    ) -> Vec<RepResult<T>> {
        for &i in targets {
            self.obs.msgs[i].inc();
        }
        let obs = &self.obs;
        let results = fan_out(&self.members, targets, self.fanout, |slot, c| {
            let result = obs.registry.time(
                |d| {
                    obs.reply[targets[slot]].record(d);
                    obs.reply_hist.record(d);
                },
                || f(slot, c),
            );
            obs.avail[targets[slot]].record(result.is_ok());
            result
        });
        for (slot, result) in results.iter().enumerate() {
            if result.is_err() {
                self.obs.penalize(targets[slot], self.penalty_sample);
            }
        }
        results
    }

    fn ids_of(&self, indices: &[usize]) -> Vec<RepId> {
        indices
            .iter()
            .map(|&i| self.members[i].client.id())
            .collect()
    }
}

impl<C: RepClient> std::fmt::Debug for DirSuite<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirSuite")
            .field("config", &self.config)
            .field("members", &self.members.len())
            .field("write_through_weak", &self.write_through_weak)
            .finish_non_exhaustive()
    }
}

impl DirSuite<LocalRep> {
    /// Builds a suite of fresh in-process representatives with uniformly
    /// random quorum selection — the paper's §4 simulation setup.
    ///
    /// # Errors
    ///
    /// Never fails for a valid [`SuiteConfig`]; the `Result` mirrors
    /// [`DirSuite::new`].
    pub fn in_process(config: SuiteConfig, seed: u64) -> Result<Self, ConfigError> {
        let clients = (0..config.member_count())
            .map(|i| LocalRep::new(RepId(i as u32)))
            .collect();
        DirSuite::new(clients, config, Box::new(RandomPolicy::new(seed)))
    }
}

/// Which way a neighbor search walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Toward `LOW` (real predecessor).
    Pred,
    /// Toward `HIGH` (real successor).
    Succ,
}

impl Direction {
    /// The sentinel the walk terminates at.
    fn terminal(self) -> Key {
        match self {
            Direction::Pred => Key::Low,
            Direction::Succ => Key::High,
        }
    }

    /// Whether `a` lies strictly beyond `b` in walk direction (closer to
    /// the terminal side boundary, i.e. a valid next step from probe `b`).
    fn beyond(self, a: &Key, b: &Key) -> bool {
        match self {
            Direction::Pred => a < b,
            Direction::Succ => a > b,
        }
    }

    /// Whether `a` is closer to the start than `b` (a better candidate:
    /// the max for predecessor walks, the min for successor walks).
    fn closer(self, a: &Key, b: &Key) -> bool {
        match self {
            Direction::Pred => a > b,
            Direction::Succ => a < b,
        }
    }
}

/// Keeps the reply with the larger version; on a tie, prefers the present
/// reply. (The correctness argument in §3.3 guarantees current data carries
/// a strictly larger version than any non-current data for the same key, so
/// ties never decide between conflicting answers; preferring presence is
/// defensive.)
fn pick_reply(a: LookupReply, b: LookupReply) -> LookupReply {
    use std::cmp::Ordering;
    match b.version().cmp(&a.version()) {
        Ordering::Greater => b,
        Ordering::Less => a,
        Ordering::Equal => {
            if b.is_present() && !a.is_present() {
                b
            } else {
                a
            }
        }
    }
}

/// Scatter-gather executor: runs `f(slot, client)` for every target member
/// and returns the results in target (slot) order.
///
/// With `concurrent` set and more than one target, each call runs on its own
/// scoped thread — `RepClient: Send + Sync` is exactly what makes lending
/// `&C` across threads sound — so the wave costs the slowest member's
/// latency. Otherwise the calls run inline in slot order, which is the
/// sequential baseline with identical semantics.
fn fan_out<C, T, F>(
    members: &[Member<C>],
    targets: &[usize],
    concurrent: bool,
    f: F,
) -> Vec<RepResult<T>>
where
    C: RepClient,
    T: Send,
    F: Fn(usize, &C) -> RepResult<T> + Sync,
{
    if !concurrent || targets.len() <= 1 {
        return targets
            .iter()
            .enumerate()
            .map(|(slot, &i)| f(slot, members[i].client.as_ref()))
            .collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = targets
            .iter()
            .enumerate()
            .map(|(slot, &i)| {
                let client = members[i].client.as_ref();
                scope.spawn(move || f(slot, client))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    })
}

/// Like [`fan_out`], but yields `(slot, result)` pairs in *arrival* order,
/// so a caller collecting quorum votes can stop caring about stragglers the
/// moment the vote threshold is met. In sequential mode arrival order is
/// slot order.
fn fan_out_arrival<C, T, F>(
    members: &[Member<C>],
    targets: &[usize],
    concurrent: bool,
    f: F,
) -> Vec<(usize, RepResult<T>)>
where
    C: RepClient,
    T: Send,
    F: Fn(usize, &C) -> RepResult<T> + Sync,
{
    if !concurrent || targets.len() <= 1 {
        return targets
            .iter()
            .enumerate()
            .map(|(slot, &i)| (slot, f(slot, members[i].client.as_ref())))
            .collect();
    }
    std::thread::scope(|scope| {
        let (tx, rx) = crate::channel::unbounded();
        let f = &f;
        for (slot, &i) in targets.iter().enumerate() {
            let client = members[i].client.as_ref();
            let tx = tx.clone();
            scope.spawn(move || {
                let _ = tx.send((slot, f(slot, client)));
            });
        }
        drop(tx);
        let mut out = Vec::with_capacity(targets.len());
        while let Ok(pair) = rx.recv() {
            out.push(pair);
        }
        out
    })
}

/// Consumes buffered chain elements the neighbor walk has already passed
/// (keys not strictly beyond `probe` in walk direction), folding their gap
/// versions into `max_gap_version`: passed elements lie inside the searched
/// range, so folding them keeps the eventual coalesce version safely
/// dominant over everything the range ever held.
fn discard_passed(
    chain: &mut std::collections::VecDeque<crate::gapmap::NeighborReply>,
    dir: Direction,
    probe: &Key,
    max_gap_version: &mut Version,
) {
    while let Some(front) = chain.front() {
        if dir.beyond(&front.key, probe) {
            break;
        }
        let consumed = chain.pop_front().expect("front exists");
        *max_gap_version = (*max_gap_version).max(consumed.gap_version);
    }
}

fn protocol_violation(what: &str) -> SuiteError {
    SuiteError::Rep(RepError::Storage(format!("protocol violation: {what}")))
}

/// The per-member chain buffers a Fig. 12 walk holds: for each quorum slot,
/// successive [`NeighborReply`](crate::gapmap::NeighborReply)s not yet
/// consumed (keys strictly monotonic toward the terminal) plus the key the
/// member's next chain RPC continues from. Shared by the neighbor searches
/// and the session scan so the discard/refill bookkeeping lives in one
/// place.
struct NeighborChains {
    dir: Direction,
    chains: Vec<std::collections::VecDeque<crate::gapmap::NeighborReply>>,
    next_probe: Vec<Key>,
}

impl NeighborChains {
    fn new(dir: Direction, start: &Key, slots: usize) -> Self {
        NeighborChains {
            dir,
            chains: vec![std::collections::VecDeque::new(); slots],
            next_probe: vec![start.clone(); slots],
        }
    }

    /// Applies [`discard_passed`] to every slot.
    fn discard_passed(&mut self, probe: &Key, max_gap_version: &mut Version) {
        for chain in &mut self.chains {
            discard_passed(chain, self.dir, probe, max_gap_version);
        }
    }

    /// Slots whose buffer ran dry but whose member can still advance:
    /// `(slot, continue-from key)` pairs, ready for one refill wave.
    fn refills(&self) -> Vec<(usize, Key)> {
        let terminal = self.dir.terminal();
        (0..self.chains.len())
            .filter(|&qi| self.chains[qi].front().is_none() && self.next_probe[qi] != terminal)
            .map(|qi| (qi, self.next_probe[qi].clone()))
            .collect()
    }

    /// Folds one refill (or prefetch) result into `slot`: advances the
    /// continue-from key — an empty chain means the member is exhausted —
    /// then re-discards elements the walk has already passed.
    fn integrate(
        &mut self,
        slot: usize,
        chain: Vec<crate::gapmap::NeighborReply>,
        probe: &Key,
        max_gap_version: &mut Version,
    ) {
        self.next_probe[slot] = match chain.last() {
            Some(last) => last.key.clone(),
            None => self.dir.terminal(),
        };
        self.chains[slot].extend(chain);
        discard_passed(&mut self.chains[slot], self.dir, probe, max_gap_version);
    }

    /// Each slot's answer for the current probe — the terminal with version
    /// zero for an exhausted member — folded into the closest answer across
    /// the quorum, with every answer's gap version folded into
    /// `max_gap_version`.
    fn candidate(&self, max_gap_version: &mut Version) -> Key {
        let terminal = self.dir.terminal();
        let mut candidate = terminal.clone();
        for chain in &self.chains {
            let answer = match chain.front() {
                Some(front) => front.clone(),
                None => crate::gapmap::NeighborReply {
                    key: terminal.clone(),
                    entry_version: Version::ZERO,
                    gap_version: Version::ZERO,
                },
            };
            *max_gap_version = (*max_gap_version).max(answer.gap_version);
            if self.dir.closer(&answer.key, &candidate) {
                candidate = answer.key;
            }
        }
        candidate
    }

    /// Where `slot`'s next refill would continue from, iff consuming
    /// `candidate` leaves its buffer dry while the member can still
    /// advance. The scan walk piggybacks that refill onto the candidate's
    /// lookup envelope, sparing the next hop a separate refill wave.
    fn prefetch_from(&self, slot: usize, candidate: &Key) -> Option<Key> {
        if self.next_probe[slot] == self.dir.terminal() {
            return None;
        }
        let chain = &self.chains[slot];
        let consuming = chain.front().is_some_and(|front| front.key == *candidate);
        if chain.len() <= usize::from(consuming) {
            Some(self.next_probe[slot].clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RepError;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    fn suite_322(seed: u64) -> DirSuite<LocalRep> {
        DirSuite::in_process(SuiteConfig::symmetric(3, 2, 2).unwrap(), seed).unwrap()
    }

    fn fixed(order: &[usize]) -> Box<dyn QuorumPolicy + Send> {
        Box::new(FixedPolicy::with_order(order.to_vec()))
    }

    #[test]
    fn empty_suite_lookup_absent() {
        let mut s = suite_322(1);
        let out = s.lookup(&k("x")).unwrap();
        assert!(!out.present);
        assert_eq!(out.version, Version::ZERO);
        assert_eq!(out.value, None);
        assert_eq!(out.quorum.len(), 2);
    }

    #[test]
    fn insert_then_lookup_any_quorum() {
        let mut s = suite_322(2);
        s.insert(&k("b"), &val("B")).unwrap();
        // Whatever read quorum is drawn, it intersects the write quorum.
        for _ in 0..20 {
            let out = s.lookup(&k("b")).unwrap();
            assert!(out.present);
            assert_eq!(out.value, Some(val("B")));
            assert_eq!(out.version, Version::new(1));
        }
    }

    #[test]
    fn insert_duplicate_rejected() {
        let mut s = suite_322(3);
        s.insert(&k("b"), &val("B")).unwrap();
        assert_eq!(
            s.insert(&k("b"), &val("B2")),
            Err(SuiteError::AlreadyExists { key: k("b") })
        );
    }

    #[test]
    fn update_requires_existing_entry() {
        let mut s = suite_322(4);
        assert_eq!(
            s.update(&k("b"), &val("B")),
            Err(SuiteError::NotFound { key: k("b") })
        );
        s.insert(&k("b"), &val("B")).unwrap();
        let out = s.update(&k("b"), &val("B2")).unwrap();
        assert_eq!(out.version, Version::new(2));
        let found = s.lookup(&k("b")).unwrap();
        assert_eq!(found.value, Some(val("B2")));
        assert_eq!(found.version, Version::new(2));
    }

    #[test]
    fn delete_requires_existing_entry() {
        let mut s = suite_322(5);
        assert_eq!(s.delete(&k("b")), Err(SuiteError::NotFound { key: k("b") }));
    }

    #[test]
    fn sentinel_keys_rejected_by_mutators() {
        let mut s = suite_322(6);
        for key in [Key::Low, Key::High] {
            assert!(matches!(
                s.insert(&key, &val("x")),
                Err(SuiteError::SentinelKey { .. })
            ));
            assert!(matches!(
                s.update(&key, &val("x")),
                Err(SuiteError::SentinelKey { .. })
            ));
            assert!(matches!(
                s.delete(&key),
                Err(SuiteError::SentinelKey { .. })
            ));
        }
        assert!(matches!(
            s.real_predecessor(&Key::Low),
            Err(SuiteError::SentinelKey { .. })
        ));
        assert!(matches!(
            s.real_successor(&Key::High),
            Err(SuiteError::SentinelKey { .. })
        ));
    }

    #[test]
    fn figure_2_3_ambiguity_resolved_by_gap_versions() {
        // Figures 4-5: insert "b" into reps {A, B}, then delete it via
        // {B, C}; a read quorum {A, C} must still answer correctly even
        // though A retains the ghost of "b".
        let mut s = suite_322(0);
        s.set_policy(fixed(&[0, 1, 2]));
        s.insert(&k("a"), &val("A")).unwrap(); // on A, B
        s.insert(&k("c"), &val("C")).unwrap(); // on A, B
        s.insert(&k("b"), &val("B")).unwrap(); // on A, B — version 1

        // Read quorum {A, C}: A says present v1, C says absent v0.
        s.set_policy(fixed(&[0, 2, 1]));
        let out = s.lookup(&k("b")).unwrap();
        assert!(out.present, "gap version lets the present reply win");
        assert_eq!(out.version, Version::new(1));

        // Delete "b" via {B, C}. (B holds a, b, c; C is empty, so the
        // delete copies the real neighbors into C.)
        s.set_policy(fixed(&[1, 2, 0]));
        let del = s.delete(&k("b")).unwrap();
        assert_eq!(del.predecessor, k("a"));
        assert_eq!(del.successor, k("c"));

        // Figure 5's acid test: read quorum {A, C} again. A still has the
        // ghost "b" v1; C now reports the coalesced gap with version 2.
        s.set_policy(fixed(&[0, 2, 1]));
        let out = s.lookup(&k("b")).unwrap();
        assert!(
            !out.present,
            "absent-with-v2 must beat ghost present-with-v1"
        );
        assert_eq!(out.version, del.gap_version);
    }

    #[test]
    fn real_neighbors_skip_ghosts() {
        let mut s = suite_322(0);
        s.set_policy(fixed(&[0, 1, 2]));
        for key in ["a", "b", "c"] {
            s.insert(&k(key), &val(key)).unwrap(); // all on A, B
        }
        // Delete "b" via {A, B}: no ghosts anywhere yet.
        let del = s.delete(&k("b")).unwrap();
        assert_eq!(del.ghosts_deleted, 0);

        // Now "a" and "c" are adjacent; real predecessor of "c" is "a".
        let pred = s.real_predecessor(&k("c")).unwrap();
        assert_eq!(pred.key, k("a"));
        let succ = s.real_successor(&k("a")).unwrap();
        assert_eq!(succ.key, k("c"));
        // Neighbors of the extremes are the sentinels.
        let pred = s.real_predecessor(&k("a")).unwrap();
        assert_eq!(pred.key, Key::Low);
        assert_eq!(pred.version, Version::ZERO);
        let succ = s.real_successor(&k("c")).unwrap();
        assert_eq!(succ.key, Key::High);
    }

    #[test]
    fn delete_copies_neighbors_into_lacking_members() {
        let mut s = suite_322(0);
        s.set_policy(fixed(&[0, 1, 2]));
        for key in ["a", "b", "c"] {
            s.insert(&k(key), &val(key)).unwrap(); // all on A, B
        }
        // Delete "b" via {B, C}: C lacks both neighbors "a" and "c".
        s.set_policy(fixed(&[1, 2, 0]));
        let del = s.delete(&k("b")).unwrap();
        assert_eq!(del.copies_inserted, 2);
        // C now holds copies of "a" and "c" at their current versions.
        let c = s.member(2);
        assert!(c.lookup(&k("a")).unwrap().is_present());
        assert!(c.lookup(&k("c")).unwrap().is_present());
        assert_eq!(c.lookup(&k("a")).unwrap().version(), Version::new(1));
    }

    #[test]
    fn delete_eliminates_ghosts_and_counts_them() {
        // Build a ghost of "b" on A (insert on {A,B}, delete via {B,C}),
        // then delete "a" via a quorum containing A and verify the ghost is
        // coalesced away and counted.
        let mut s = suite_322(0);
        s.set_policy(fixed(&[0, 1, 2]));
        s.insert(&k("a"), &val("A")).unwrap();
        s.insert(&k("b"), &val("B")).unwrap();
        s.set_policy(fixed(&[1, 2, 0]));
        s.delete(&k("b")).unwrap(); // ghost "b" remains on A

        assert!(s.member(0).lookup(&k("b")).unwrap().is_present());

        s.set_policy(fixed(&[0, 2, 1]));
        let del = s.delete(&k("a")).unwrap();
        assert_eq!(del.ghosts_deleted, 1, "ghost of b removed from A");
        assert!(!s.member(0).lookup(&k("b")).unwrap().is_present());
        // The coalesce spanned LOW..HIGH since nothing else exists.
        assert_eq!(del.predecessor, Key::Low);
        assert_eq!(del.successor, Key::High);
    }

    #[test]
    fn quorum_unavailable_when_too_many_reps_down() {
        let mut s = suite_322(7);
        s.insert(&k("a"), &val("A")).unwrap();
        s.member(0).set_available(false);
        s.member(1).set_available(false);
        // One rep up: read quorum of 2 votes unreachable.
        let err = s.lookup(&k("a")).unwrap_err();
        assert_eq!(
            err,
            SuiteError::QuorumUnavailable {
                kind: QuorumKind::Read,
                needed: 2,
                gathered: 1
            }
        );
    }

    #[test]
    fn suite_tolerates_single_failure_in_322() {
        let mut s = suite_322(8);
        s.insert(&k("a"), &val("A")).unwrap();
        for down in 0..3 {
            s.member(down).set_available(false);
            let out = s.lookup(&k("a")).unwrap();
            assert!(out.present, "read must survive one failure");
            s.update(&k("a"), &val("A2")).unwrap();
            s.member(down).set_available(true);
        }
    }

    /// Wrapper that forwards to a [`LocalRep`] but, once armed, marks the
    /// rep unavailable *immediately after* it answers a ping — the exact
    /// ping-then-call window: the member votes into the quorum, then every
    /// data RPC addressed to it fails.
    struct DiesAfterPing {
        inner: LocalRep,
        armed: std::sync::atomic::AtomicBool,
    }

    impl DiesAfterPing {
        fn new(inner: LocalRep, armed: bool) -> Self {
            Self {
                inner,
                armed: std::sync::atomic::AtomicBool::new(armed),
            }
        }
    }

    impl RepClient for DiesAfterPing {
        fn id(&self) -> RepId {
            self.inner.id()
        }
        fn ping(&self) -> RepResult<()> {
            let pong = self.inner.ping();
            if pong.is_ok() && self.armed.swap(false, std::sync::atomic::Ordering::SeqCst) {
                self.inner.set_available(false);
            }
            pong
        }
        fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
            self.inner.lookup(key)
        }
        fn predecessor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.inner.predecessor(key)
        }
        fn successor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.inner.successor(key)
        }
        fn insert(
            &self,
            key: &Key,
            version: Version,
            value: &Value,
        ) -> RepResult<crate::gapmap::InsertOutcome> {
            self.inner.insert(key, version, value)
        }
        fn coalesce(
            &self,
            low: &Key,
            high: &Key,
            version: Version,
        ) -> RepResult<crate::gapmap::CoalesceOutcome> {
            self.inner.coalesce(low, high, version)
        }
    }

    #[test]
    fn member_death_between_collect_and_call_surfaces_unavailable() {
        // Member 0 dies the instant it finishes voting: the subsequent
        // quorum data wave must surface Rep(Unavailable) — the retryable
        // error ReplicatedDirectory::run backs off on — not panic or hang.
        let clients: Vec<DiesAfterPing> = (0..3)
            .map(|i| DiesAfterPing::new(LocalRep::new(RepId(i)), i == 0))
            .collect();
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let mut s = DirSuite::new(clients, cfg, fixed(&[0, 1, 2])).unwrap();
        assert_eq!(
            s.lookup(&k("a")),
            Err(SuiteError::Rep(RepError::Unavailable))
        );
        // The trap disarmed itself, so a retry collects a fresh quorum from
        // the survivors and succeeds — the recovery path the retry loop
        // relies on.
        let out = s.lookup(&k("a")).unwrap();
        assert!(!out.present);
        assert_eq!(out.quorum, vec![RepId(1), RepId(2)]);
    }

    #[test]
    fn revalidate_session_dead_majority_surfaces_accurate_gathered() {
        // A held session whose majority died must fail re-validation with
        // QuorumUnavailable reporting exactly the votes the survivors still
        // muster — not hang, and not undercount the survivor.
        for adaptive in [true, false] {
            let mut s = suite_322(31);
            s.set_adaptive_waves(adaptive);
            s.insert(&k("a"), &val("A")).unwrap();
            let err = s
                .with_session_scope(|s| {
                    s.collect_quorum(QuorumKind::Read, None)?;
                    s.member(0).set_available(false);
                    s.member(1).set_available(false);
                    s.revalidate_session(QuorumKind::Read).map(|_| ())
                })
                .unwrap_err();
            assert_eq!(
                err,
                SuiteError::QuorumUnavailable {
                    kind: QuorumKind::Read,
                    needed: 2,
                    gathered: 1
                },
                "adaptive={adaptive}"
            );
        }
    }

    #[test]
    fn revalidate_session_bumps_epoch_exactly_once_each_time() {
        // Each re-validation advances the session epoch by exactly one and
        // records exactly one `suite.session.revalidate` tick — the pair of
        // ledgers the bulk-walk retry budget and the tests lean on.
        let mut s = suite_322(32);
        s.insert(&k("a"), &val("A")).unwrap();
        let reval = s.obs().counter("suite.session.revalidate");
        s.with_session_scope(|s| -> Result<(), SuiteError> {
            s.collect_quorum(QuorumKind::Read, None)?;
            assert_eq!(s.session(QuorumKind::Read).unwrap().epoch, 0);
            assert_eq!(reval.get(), 0, "fresh collection is not a re-validation");
            for expected in 1..=3u64 {
                s.revalidate_session(QuorumKind::Read)?;
                assert_eq!(s.session(QuorumKind::Read).unwrap().epoch, expected);
                assert_eq!(reval.get(), expected);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn dirty_candidate_orders_collect_identical_quorums_and_pings() {
        // Duplicate and out-of-range candidate indices must scrub down to
        // the clean order: same quorum, same ping spend, in both wave
        // modes. (`usize::MAX` additionally guards the hygiene pass against
        // indexing before bounds-checking.)
        let clean: &[usize] = &[2, 0, 1];
        let dirty: [&[usize]; 3] = [
            &[2, 2, 0, 2, 1, 0],
            &[9, 2, 0, usize::MAX, 1, 100],
            &[2, 0, 1, 2, 0, 1, 7],
        ];
        for adaptive in [true, false] {
            let run = |order: &[usize]| {
                let mut s = suite_322(33);
                s.set_adaptive_waves(adaptive);
                let chosen = s
                    .collect_quorum_ordered(QuorumKind::Read, order.to_vec())
                    .unwrap();
                (chosen, s.ping_counts())
            };
            let baseline = run(clean);
            for order in dirty {
                assert_eq!(run(order), baseline, "order {order:?} adaptive={adaptive}");
            }
        }
    }

    #[test]
    fn zero_vote_members_in_the_order_change_nothing() {
        // Weak (zero-vote) representatives may appear anywhere in a
        // candidate order — mentioned or not, duplicated or not — without
        // being pinged, chosen, or shifting the quorum.
        let cfg = SuiteConfig::new(vec![1, 0, 1, 1], 2, 2).unwrap();
        for adaptive in [true, false] {
            let run = |order: &[usize]| {
                let clients: Vec<LocalRep> = (0..4).map(|i| LocalRep::new(RepId(i))).collect();
                let mut s = DirSuite::new(clients, cfg.clone(), fixed(&[0, 1, 2, 3])).unwrap();
                s.set_adaptive_waves(adaptive);
                let chosen = s
                    .collect_quorum_ordered(QuorumKind::Read, order.to_vec())
                    .unwrap();
                (chosen, s.ping_counts())
            };
            let baseline = run(&[0, 2, 3]);
            for order in [&[0usize, 1, 2, 3][..], &[1, 0, 1, 2, 9, 3]] {
                assert_eq!(run(order), baseline, "order {order:?} adaptive={adaptive}");
                assert_eq!(baseline.1[1], 0, "weak member must never be pinged");
            }
        }
    }

    #[test]
    fn adaptive_waves_overprovision_around_a_flaky_member() {
        // Once a member's availability estimate drops, the next collection
        // folds the recovery candidate into the first wave instead of
        // paying a guaranteed extra round — the tentpole behavior.
        let mut s = suite_322(34);
        s.set_policy(fixed(&[0, 1, 2]));
        s.member(0).set_available(false);
        let waves = s.obs().counter("suite.quorum.waves");

        // First collection: member 0 is unsampled, so the wave is the
        // minimal prefix and its failure costs a second round.
        s.lookup(&k("a")).unwrap();
        let discovery = waves.get();
        assert!(discovery >= 2, "discovery collection pays the extra round");

        // Second collection: avail(0) is now 0, so the first wave already
        // over-provisions member 2 and the quorum lands in one round.
        let out = s.lookup(&k("a")).unwrap();
        assert_eq!(out.quorum, vec![RepId(1), RepId(2)]);
        assert_eq!(waves.get(), discovery + 1, "one over-provisioned wave");
    }

    /// Forwards to a [`LocalRep`] with configurable per-operation lag — the
    /// straggler the hedging tests race against.
    struct Laggy {
        inner: LocalRep,
        ping_delay: Duration,
        lookup_delay: Duration,
    }

    impl Laggy {
        fn new(id: u32, ping_delay: Duration, lookup_delay: Duration) -> Self {
            Self {
                inner: LocalRep::new(RepId(id)),
                ping_delay,
                lookup_delay,
            }
        }
    }

    impl RepClient for Laggy {
        fn id(&self) -> RepId {
            self.inner.id()
        }
        fn ping(&self) -> RepResult<()> {
            std::thread::sleep(self.ping_delay);
            self.inner.ping()
        }
        fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
            std::thread::sleep(self.lookup_delay);
            self.inner.lookup(key)
        }
        fn predecessor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.inner.predecessor(key)
        }
        fn successor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.inner.successor(key)
        }
        fn insert(
            &self,
            key: &Key,
            version: Version,
            value: &Value,
        ) -> RepResult<crate::gapmap::InsertOutcome> {
            self.inner.insert(key, version, value)
        }
        fn coalesce(
            &self,
            low: &Key,
            high: &Key,
            version: Version,
        ) -> RepResult<crate::gapmap::CoalesceOutcome> {
            self.inner.coalesce(low, high, version)
        }
    }

    #[test]
    fn hedged_ping_wave_wins_with_a_spare_over_a_straggler() {
        // Member 0 answers pings 80ms late; with a 2ms hedge delay the
        // wave must duplicate to member 2 and close the quorum without
        // waiting out the straggler.
        let clients = vec![
            Laggy::new(0, Duration::from_millis(80), Duration::ZERO),
            Laggy::new(1, Duration::ZERO, Duration::ZERO),
            Laggy::new(2, Duration::ZERO, Duration::ZERO),
        ];
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let mut s = DirSuite::new(clients, cfg, fixed(&[0, 1, 2])).unwrap();
        s.set_hedge(true);
        s.set_hedge_delay(Some(Duration::from_millis(2)));
        let issued = s.obs().counter("suite.hedge.issued");

        let start = std::time::Instant::now();
        let out = s.lookup(&k("a")).unwrap();
        assert!(!out.present);
        assert_eq!(out.quorum, vec![RepId(1), RepId(2)]);
        assert!(issued.get() >= 1, "the straggling ping must be hedged");
        assert!(
            start.elapsed() < Duration::from_millis(80),
            "the quorum must not wait out the straggler"
        );
        assert_eq!(s.ping_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn hedged_lookup_substitutes_a_spare_for_a_straggler() {
        // Member 0 pings fast but serves lookups 80ms late: it wins a seat
        // in the read quorum, then straggles on the data RPC. The hedged
        // read must assemble R votes from member 1 plus the spare member 2
        // and return the exact answer.
        let clients = vec![
            Laggy::new(0, Duration::ZERO, Duration::from_millis(80)),
            Laggy::new(1, Duration::ZERO, Duration::ZERO),
            Laggy::new(2, Duration::ZERO, Duration::ZERO),
        ];
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let mut s = DirSuite::new(clients, cfg, fixed(&[0, 1, 2])).unwrap();
        s.insert(&k("a"), &val("A")).unwrap();
        s.set_hedge(true);
        s.set_hedge_delay(Some(Duration::from_millis(2)));
        let issued = s.obs().counter("suite.hedge.issued");
        let won = s.obs().counter("suite.hedge.won");

        let out = s.lookup(&k("a")).unwrap();
        assert!(out.present);
        assert_eq!(out.value, Some(val("A")));
        assert_eq!(
            out.quorum,
            vec![RepId(1), RepId(2)],
            "the spare's reply substitutes for the straggler's"
        );
        assert!(issued.get() >= 1);
        assert!(won.get() >= 1, "the substituted spare counts as a win");
        // The straggler was still asked — hedging duplicates, not cancels.
        // (Members 0 and 1 carry two messages each from the insert's read
        // and write quorums; the hedged read adds one more to each quorum
        // member and one to the spare.)
        assert_eq!(s.message_counts(), vec![3, 3, 1]);
    }

    #[test]
    fn sequential_mode_matches_fanout_results_and_counters() {
        // The same scripted workload, fanned out and serialized, must agree
        // on every answer and land identical per-member message counters:
        // waves are the same RPC sets either way.
        let run = |fanout: bool| {
            let mut s = suite_322(42);
            s.set_fanout(fanout);
            let mut log = Vec::new();
            log.push(format!("{:?}", s.insert(&k("a"), &val("A"))));
            log.push(format!("{:?}", s.insert(&k("c"), &val("C"))));
            log.push(format!("{:?}", s.insert(&k("b"), &val("B"))));
            log.push(format!("{:?}", s.update(&k("b"), &val("B2"))));
            log.push(format!("{:?}", s.lookup(&k("b"))));
            log.push(format!("{:?}", s.delete(&k("b"))));
            log.push(format!("{:?}", s.real_successor(&k("a"))));
            log.push(format!("{:?}", s.real_predecessor(&k("c"))));
            log.push(format!("{:?}", s.scan()));
            (log, s.message_counts().to_vec(), s.ping_counts().to_vec())
        };
        let (log_fan, msgs_fan, pings_fan) = run(true);
        let (log_seq, msgs_seq, pings_seq) = run(false);
        assert_eq!(log_fan, log_seq);
        assert_eq!(msgs_fan, msgs_seq);
        assert_eq!(pings_fan, pings_seq);
    }

    #[test]
    fn sticky_policy_revalidates_dead_favorite_and_counts_the_miss() {
        // §5's sticky quorums remember a preferred permutation, but the
        // suite still pings every candidate before counting its votes. When
        // the remembered favorite dies, collection must fall back to the
        // live members and record the stale preference as a sticky miss.
        let mut s = suite_322(11);
        s.set_policy(Box::new(StickyPolicy::new(9, 0.0)));
        s.insert(&k("a"), &val("A")).unwrap();
        let favorite = s.lookup(&k("a")).unwrap().quorum[0];
        let misses = s.obs().counter("suite.quorum.sticky_miss");
        assert_eq!(misses.get(), 0, "healthy suite: preferences all verify");

        s.member(favorite.0 as usize).set_available(false);
        let out = s.lookup(&k("a")).unwrap();
        assert!(out.present);
        assert!(
            !out.quorum.contains(&favorite),
            "dead favorite must not vote: {:?}",
            out.quorum
        );
        assert!(misses.get() >= 1, "failed re-validation counts as a miss");

        // The favorite recovers: the unchanged sticky order finds it first
        // again, with no further misses.
        s.member(favorite.0 as usize).set_available(true);
        let before = misses.get();
        let out = s.lookup(&k("a")).unwrap();
        assert_eq!(out.quorum[0], favorite);
        assert_eq!(misses.get(), before);
    }

    #[test]
    fn obs_registry_counters_back_message_and_ping_accessors() {
        // message_counts()/ping_counts() are documented as views over the
        // named obs counters; a scripted workload must leave the accessor
        // vectors and the registry's `suite.member.{i}.*` counters in exact
        // agreement, and the operations must have recorded spans.
        let mut s = suite_322(12);
        s.set_policy(fixed(&[0, 1, 2]));
        s.insert(&k("a"), &val("A")).unwrap();
        s.insert(&k("c"), &val("C")).unwrap();
        s.update(&k("a"), &val("A2")).unwrap();
        s.lookup(&k("a")).unwrap();
        s.delete(&k("c")).unwrap();

        let msgs = s.message_counts();
        let pings = s.ping_counts();
        assert!(msgs.iter().sum::<u64>() > 0);
        assert!(pings.iter().sum::<u64>() > 0);
        let snap = s.obs().snapshot();
        for i in 0..3 {
            assert_eq!(snap.counter(&format!("suite.member.{i}.msgs")), msgs[i]);
            assert_eq!(snap.counter(&format!("suite.member.{i}.pings")), pings[i]);
        }
        // One collection wave per quorum: five ops, each collecting one
        // read and/or write quorum, so at least five waves.
        assert!(snap.counter("suite.quorum.waves") >= 5);
        let spans = s.obs().spans();
        for name in ["suite.lookup", "suite.write", "suite.delete"] {
            assert!(
                spans.iter().any(|e| e.name == name),
                "missing span {name:?}"
            );
        }

        // reset_message_counts zeroes the registry counters themselves,
        // not a shadow copy.
        s.reset_message_counts();
        let snap = s.obs().snapshot();
        for i in 0..3 {
            assert_eq!(snap.counter(&format!("suite.member.{i}.msgs")), 0);
            assert_eq!(snap.counter(&format!("suite.member.{i}.pings")), 0);
        }
    }

    #[test]
    fn weighted_votes_respected() {
        // Rep 0 holds 2 votes: alone it satisfies R=2.
        let cfg = SuiteConfig::new(vec![2, 1, 1], 2, 3).unwrap();
        let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
        let mut s = DirSuite::new(clients, cfg, fixed(&[0, 1, 2])).unwrap();
        s.insert(&k("a"), &val("A")).unwrap();
        let out = s.lookup(&k("a")).unwrap();
        assert_eq!(
            out.quorum,
            vec![RepId(0)],
            "2-vote rep alone is a read quorum"
        );
    }

    #[test]
    fn zero_vote_weak_rep_never_joins_quorum_but_gets_write_through() {
        let cfg = SuiteConfig::new(vec![1, 1, 0], 2, 2).unwrap();
        let clients: Vec<LocalRep> = (0..3).map(|i| LocalRep::new(RepId(i))).collect();
        let weak = clients[2].clone();
        let mut s = DirSuite::new(clients, cfg, fixed(&[2, 0, 1])).unwrap();
        s.set_write_through_weak(true);
        let out = s.insert(&k("a"), &val("A")).unwrap();
        assert!(!out.quorum.contains(&RepId(2)));
        // ... but the weak rep received the entry as a hint.
        assert!(weak.lookup(&k("a")).unwrap().is_present());
    }

    #[test]
    fn member_count_mismatch_rejected() {
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let clients = vec![LocalRep::new(RepId(0))];
        assert_eq!(
            DirSuite::new(clients, cfg, fixed(&[0])).err(),
            Some(ConfigError::MemberCountMismatch {
                clients: 1,
                votes: 3
            })
        );
    }

    #[test]
    fn message_counters_track_rpcs() {
        let mut s = suite_322(10);
        s.set_policy(fixed(&[0, 1, 2]));
        s.insert(&k("a"), &val("A")).unwrap();
        let data: u64 = s.message_counts().iter().sum();
        let pings: u64 = s.ping_counts().iter().sum();
        // insert = lookup (2 RPCs) + 2 writes, plus 2 pings per quorum.
        assert_eq!(data, 4);
        assert_eq!(pings, 4);
        s.reset_message_counts();
        assert!(s.message_counts().iter().all(|&c| c == 0));
        assert!(s.ping_counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn lookup_version_matches_expectation_for_users_of_fig9() {
        // Insert uses lookup's version + 1 even when the key was deleted
        // before: versions never move backwards.
        let mut s = suite_322(0);
        s.set_policy(fixed(&[0, 1, 2]));
        s.insert(&k("b"), &val("B1")).unwrap(); // v1
        s.delete(&k("b")).unwrap(); // gap v2
        let out = s.insert(&k("b"), &val("B2")).unwrap();
        assert_eq!(out.version, Version::new(3));
    }

    #[test]
    fn pick_reply_prefers_higher_version_then_presence() {
        let present = LookupReply::Present {
            version: Version::new(2),
            value: val("x"),
        };
        let absent = LookupReply::Absent {
            gap_version: Version::new(3),
        };
        assert_eq!(pick_reply(present.clone(), absent.clone()), absent);
        let absent_low = LookupReply::Absent {
            gap_version: Version::new(1),
        };
        assert_eq!(pick_reply(absent_low.clone(), present.clone()), present);
        // Tie: presence wins either way.
        let absent_tie = LookupReply::Absent {
            gap_version: Version::new(2),
        };
        assert_eq!(pick_reply(absent_tie.clone(), present.clone()), present);
        assert_eq!(pick_reply(present.clone(), absent_tie), present);
    }

    #[test]
    fn empty_string_key_is_a_legal_user_key() {
        // "" sorts above LOW and below every other user key; the whole
        // lifecycle must work, including deletion (real predecessor LOW).
        let mut s = suite_322(4);
        let empty = Key::from("");
        s.insert(&empty, &val("root")).unwrap();
        assert!(s.lookup(&empty).unwrap().present);
        s.insert(&k("a"), &val("A")).unwrap();
        let pred = s.real_predecessor(&k("a")).unwrap();
        assert_eq!(pred.key, empty);
        let del = s.delete(&empty).unwrap();
        assert_eq!(del.predecessor, Key::Low);
        assert!(!s.lookup(&empty).unwrap().present);
        assert!(s.lookup(&k("a")).unwrap().present);
    }

    #[test]
    fn scan_lists_logical_contents_skipping_ghosts() {
        let mut s = suite_322(0);
        s.set_policy(fixed(&[0, 1, 2]));
        for key in ["d", "a", "c", "b"] {
            s.insert(&k(key), &val(key)).unwrap();
        }
        // Delete "b" via {B, C}: ghost of b stays on A.
        s.set_policy(fixed(&[1, 2, 0]));
        s.delete(&k("b")).unwrap();
        // Scan with a quorum including the ghost-holding A.
        s.set_policy(fixed(&[0, 2, 1]));
        let entries = s.scan().unwrap();
        let keys: Vec<String> = entries.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["a", "c", "d"], "ghost b must not appear");
        for (key, value) in entries {
            assert_eq!(value, val(&key.to_string()));
        }
        // Empty suite scans empty.
        let mut empty = suite_322(1);
        assert!(empty.scan().unwrap().is_empty());
    }

    #[test]
    fn batched_search_returns_identical_answers_with_fewer_rpcs() {
        // Build a directory with a run of ghosts so the searches must walk
        // several steps, then compare batch sizes 1 and 3 on clones of the
        // same representative state.
        let build = || {
            let mut s = suite_322(0);
            s.set_policy(fixed(&[0, 1, 2]));
            for key in ["a", "b", "c", "d", "e", "f"] {
                s.insert(&k(key), &val(key)).unwrap();
            }
            // Delete the middle run via {B, C}: ghosts of b..e pile on A.
            s.set_policy(fixed(&[1, 2, 0]));
            for key in ["e", "d", "c", "b"] {
                s.delete(&k(key)).unwrap();
            }
            // Search with read quorum {A, B}: A's ghosts force a walk.
            s.set_policy(fixed(&[0, 1, 2]));
            s
        };

        let mut unbatched = build();
        unbatched.set_neighbor_batch(1);
        let u = unbatched.real_predecessor(&k("f")).unwrap();

        let mut batched = build();
        batched.set_neighbor_batch(3);
        let b = batched.real_predecessor(&k("f")).unwrap();

        assert_eq!(u.key, b.key, "same real predecessor");
        assert_eq!(u.version, b.version);
        assert_eq!(u.steps, b.steps, "same logical walk");
        assert!(
            u.max_gap_version <= b.max_gap_version,
            "batched may fold extra in-range gaps, never fewer"
        );
        assert!(
            b.rpc_calls < u.rpc_calls,
            "batch 3 must issue fewer chain RPCs: {} vs {}",
            b.rpc_calls,
            u.rpc_calls
        );
        // Unbatched: at most one RPC per member per step (buffered answers
        // are reused across probes, so it can be fewer than Fig. 12's
        // literal step * member count).
        assert!(u.rpc_calls <= u.steps * 2);
        assert!(u.rpc_calls > 2, "the ghost walk needs several rounds");

        // Deletes behave identically under batching.
        let da = unbatched.delete(&k("a")).unwrap();
        let db = batched.delete(&k("a")).unwrap();
        assert_eq!(da.predecessor, db.predecessor);
        assert_eq!(da.successor, db.successor);
        assert_eq!(da.ghosts_deleted, db.ghosts_deleted);
    }

    #[test]
    fn batched_search_model_agreement_over_workload() {
        // A full random workload with batch 3 must agree with the model,
        // exactly like the unbatched suite.
        use std::collections::BTreeMap;
        let mut model: BTreeMap<String, u64> = BTreeMap::new();
        let mut s = suite_322(77);
        s.set_neighbor_batch(3);
        let mut rng = crate::rng::SplitMix64::new(5);
        for step in 0..500u64 {
            let key = format!("k{}", rng.next_below(16));
            let kk = k(&key);
            match rng.next_below(4) {
                0 | 1 => {
                    if model.insert(key.clone(), step).is_some() {
                        s.update(&kk, &val(&step.to_string())).unwrap();
                    } else {
                        s.insert(&kk, &val(&step.to_string())).unwrap();
                    }
                }
                2 => {
                    if model.remove(&key).is_some() {
                        s.delete(&kk).unwrap();
                    }
                }
                _ => {
                    let out = s.lookup(&kk).unwrap();
                    assert_eq!(out.present, model.contains_key(&key), "step {step}");
                }
            }
        }
        for key in model.keys() {
            assert!(s.lookup(&k(key)).unwrap().present);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_neighbor_batch_rejected() {
        let mut s = suite_322(0);
        s.set_neighbor_batch(0);
    }

    #[test]
    fn scan_session_pays_one_quorum_collection() {
        // The tentpole claim: a failure-free session scan collects its read
        // quorum exactly once — one ping wave, one ping per quorum member —
        // no matter how many entries it walks; every per-hop re-assert is
        // answered from the session cache.
        let mut s = suite_322(31);
        s.set_policy(fixed(&[0, 1, 2]));
        for key in ["a", "b", "c", "d", "e"] {
            s.insert(&k(key), &val(key)).unwrap();
        }
        s.reset_message_counts();
        let before = s.obs().snapshot();
        let listed = s.scan().unwrap();
        assert_eq!(listed.len(), 5);
        let after = s.obs().snapshot();
        assert_eq!(
            after.counter("suite.quorum.waves") - before.counter("suite.quorum.waves"),
            1,
            "failure-free scan must collect exactly one quorum"
        );
        assert_eq!(
            s.ping_counts(),
            vec![1, 1, 0],
            "one ping per read-quorum member, none elsewhere"
        );
        assert!(
            after.counter("suite.session.reuse") > before.counter("suite.session.reuse"),
            "per-hop re-asserts must come from the session"
        );
        assert_eq!(
            after.counter("suite.session.revalidate"),
            before.counter("suite.session.revalidate"),
            "no failure, no re-validation"
        );
        // Sessions never outlive the operation that pinned them.
        assert!(s.session(QuorumKind::Read).is_none());
        assert!(s.session(QuorumKind::Write).is_none());
    }

    #[test]
    fn scan_baseline_matches_session_output_with_more_traffic() {
        // `set_session_reuse(false)` restores the per-hop baseline: same
        // listing, strictly more quorum collections, pings, and data RPCs.
        let run = |reuse: bool| {
            let mut s = suite_322(32);
            s.set_policy(fixed(&[0, 1, 2]));
            s.set_session_reuse(reuse);
            for key in ["a", "b", "c", "d"] {
                s.insert(&k(key), &val(key)).unwrap();
            }
            s.reset_message_counts();
            let waves_before = s.obs().snapshot().counter("suite.quorum.waves");
            let listed = s.scan().unwrap();
            let waves = s.obs().snapshot().counter("suite.quorum.waves") - waves_before;
            let msgs: u64 = s.message_counts().iter().sum();
            let pings: u64 = s.ping_counts().iter().sum();
            (listed, waves, msgs, pings)
        };
        let (session, s_waves, s_msgs, s_pings) = run(true);
        let (baseline, b_waves, b_msgs, b_pings) = run(false);
        assert_eq!(session, baseline, "both modes list the same contents");
        assert_eq!(s_waves, 1);
        assert!(b_waves > 1, "baseline re-collects per hop");
        assert!(s_pings < b_pings);
        assert!(
            s_msgs < b_msgs,
            "session+batched scan must send fewer data RPCs ({s_msgs} vs {b_msgs})"
        );
    }

    #[test]
    fn delete_session_collects_one_read_and_one_write_quorum() {
        // Delete's copy+coalesce chain under a session: the opening lookup
        // pins the read quorum both neighbor searches then reuse, and the
        // write quorum is collected exactly once.
        let mut s = suite_322(33);
        s.set_policy(fixed(&[0, 1, 2]));
        for key in ["a", "b", "c"] {
            s.insert(&k(key), &val(key)).unwrap();
        }
        s.reset_message_counts();
        let before = s.obs().snapshot();
        s.delete(&k("b")).unwrap();
        let after = s.obs().snapshot();
        assert_eq!(
            after.counter("suite.quorum.waves") - before.counter("suite.quorum.waves"),
            2,
            "one read + one write collection for the whole delete"
        );
        assert_eq!(s.ping_counts(), vec![2, 2, 0]);
        assert!(
            after.counter("suite.session.reuse") - before.counter("suite.session.reuse") >= 2,
            "both searches must reuse the pinned read session"
        );
        assert!(s.session(QuorumKind::Write).is_none());
    }

    #[test]
    fn neighbor_chains_ghost_skip_reaches_high() {
        // The chain helper at the keyspace's edge: one member still buffers
        // a trailing ghost, the other is exhausted. The ghost is the
        // candidate (closer than HIGH); once the walk passes it every chain
        // is dry, the candidate is HIGH, and the ghost's gap version stays
        // folded — never lost.
        let reply = |key: &Key, ev: u64, gv: u64| crate::gapmap::NeighborReply {
            key: key.clone(),
            entry_version: Version::from(ev),
            gap_version: Version::from(gv),
        };
        let mut walk = NeighborChains::new(Direction::Succ, &k("w"), 2);
        let mut max_gap = Version::ZERO;
        walk.integrate(0, vec![reply(&k("z"), 3, 5)], &k("w"), &mut max_gap);
        walk.integrate(1, vec![], &k("w"), &mut max_gap);
        assert_eq!(walk.candidate(&mut max_gap), k("z"));
        // Consuming the ghost leaves slot 0 dry with chain left to fetch;
        // slot 1 is exhausted at HIGH and must not prefetch.
        assert_eq!(walk.prefetch_from(0, &k("z")), Some(k("z")));
        assert_eq!(walk.prefetch_from(1, &k("z")), None);
        walk.discard_passed(&k("z"), &mut max_gap);
        walk.integrate(0, vec![], &k("z"), &mut max_gap);
        assert_eq!(walk.candidate(&mut max_gap), Key::High);
        assert!(walk.refills().is_empty(), "no member can advance past HIGH");
        assert_eq!(max_gap, Version::from(5));
    }

    /// Forwards to a [`LocalRep`] but kills the rep once a shared fuse
    /// counts down to zero across data RPCs — the mid-walk failure window
    /// session re-validation exists for. Pings never tick the fuse, so the
    /// fixture controls exactly how deep into a walk the member dies.
    struct DiesAfterCalls {
        inner: LocalRep,
        fuse: std::sync::Arc<std::sync::atomic::AtomicI64>,
    }

    impl DiesAfterCalls {
        fn tick(&self) {
            if self.fuse.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) == 1 {
                self.inner.set_available(false);
            }
        }
    }

    impl RepClient for DiesAfterCalls {
        fn id(&self) -> RepId {
            self.inner.id()
        }
        fn ping(&self) -> RepResult<()> {
            self.inner.ping()
        }
        fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
            self.tick();
            self.inner.lookup(key)
        }
        fn predecessor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.tick();
            self.inner.predecessor(key)
        }
        fn successor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.tick();
            self.inner.successor(key)
        }
        fn insert(
            &self,
            key: &Key,
            version: Version,
            value: &Value,
        ) -> RepResult<crate::gapmap::InsertOutcome> {
            self.tick();
            self.inner.insert(key, version, value)
        }
        fn coalesce(
            &self,
            low: &Key,
            high: &Key,
            version: Version,
        ) -> RepResult<crate::gapmap::CoalesceOutcome> {
            self.tick();
            self.inner.coalesce(low, high, version)
        }
    }

    fn fused_suite() -> (
        DirSuite<DiesAfterCalls>,
        Vec<std::sync::Arc<std::sync::atomic::AtomicI64>>,
    ) {
        // Fuses start deeply negative: effectively disarmed through setup.
        let fuses: Vec<std::sync::Arc<std::sync::atomic::AtomicI64>> = (0..3)
            .map(|_| std::sync::Arc::new(std::sync::atomic::AtomicI64::new(i64::MIN / 2)))
            .collect();
        let clients: Vec<DiesAfterCalls> = fuses
            .iter()
            .enumerate()
            .map(|(i, fuse)| DiesAfterCalls {
                inner: LocalRep::new(RepId(i as u32)),
                fuse: fuse.clone(),
            })
            .collect();
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let mut s = DirSuite::new(clients, cfg, fixed(&[0, 1, 2])).unwrap();
        for key in ["a", "b", "c", "d", "e", "f"] {
            s.insert(&k(key), &val(key)).unwrap();
        }
        (s, fuses)
    }

    #[test]
    fn mid_scan_member_failure_revalidates_once_and_completes() {
        use std::sync::atomic::Ordering;
        let (mut s, fuses) = fused_suite();
        // Member 0 dies three data RPCs into the scan: after the session
        // quorum {0, 1} was collected and already used for a hop or two.
        fuses[0].store(3, Ordering::SeqCst);
        let listed = s.scan().unwrap();
        assert_eq!(
            listed
                .iter()
                .map(|(u, _)| u.to_string())
                .collect::<Vec<_>>(),
            vec!["a", "b", "c", "d", "e", "f"],
            "scan must complete correctly through the failure"
        );
        let snap = s.obs().snapshot();
        assert_eq!(
            snap.counter("suite.session.revalidate"),
            1,
            "exactly one re-validation for one member failure"
        );
        assert!(s.session(QuorumKind::Read).is_none());
    }

    #[test]
    fn dead_majority_mid_scan_surfaces_quorum_unavailable() {
        use std::sync::atomic::Ordering;
        let (mut s, fuses) = fused_suite();
        // Members 0 and 1 both die early in the scan: re-validation finds
        // only member 2 alive (one vote of the two needed) and the scan
        // must fail with QuorumUnavailable rather than hang or loop.
        fuses[0].store(2, Ordering::SeqCst);
        fuses[1].store(2, Ordering::SeqCst);
        let err = s.scan().unwrap_err();
        assert!(
            matches!(
                err,
                SuiteError::QuorumUnavailable {
                    kind: QuorumKind::Read,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn bulk_insert_pays_one_quorum_pair_and_batched_envelopes() {
        let mut s = suite_322(60);
        s.set_policy(fixed(&[0, 1, 2]));
        s.reset_message_counts();
        let before = s.obs().snapshot();
        let entries: Vec<(Key, Value)> = (0..8).map(|i| (k(&format!("k{i}")), val("v"))).collect();
        let out = s.insert_many(&entries).unwrap();
        let after = s.obs().snapshot();
        assert_eq!(out.versions, vec![Version::new(1); 8]);
        assert_eq!(
            after.counter("suite.quorum.waves") - before.counter("suite.quorum.waves"),
            2,
            "one read + one write collection for the whole batch"
        );
        assert_eq!(s.ping_counts(), vec![2, 2, 0]);
        // One discovery envelope and one write envelope per quorum member.
        assert_eq!(s.message_counts(), vec![2, 2, 0]);
        assert_eq!(
            after.counter("suite.bulk.ops") - before.counter("suite.bulk.ops"),
            1
        );
        assert_eq!(
            after.counter("suite.bulk.keys") - before.counter("suite.bulk.keys"),
            8
        );
        assert_eq!(
            after.counter("suite.bulk.resumed"),
            before.counter("suite.bulk.resumed")
        );
        // Sessions never outlive the batch.
        assert!(s.session(QuorumKind::Read).is_none());
        assert!(s.session(QuorumKind::Write).is_none());
        for (key, _) in &entries {
            assert!(s.lookup(key).unwrap().present);
        }
    }

    #[test]
    fn bulk_insert_matches_the_per_key_baseline() {
        let run = |reuse: bool| {
            let mut s = suite_322(61);
            s.set_policy(fixed(&[0, 1, 2]));
            s.set_session_reuse(reuse);
            let entries: Vec<(Key, Value)> = (0..20)
                .map(|i| (k(&format!("e{i:02}")), val(&format!("v{i}"))))
                .collect();
            let out = s.insert_many(&entries).unwrap();
            (out, s.scan().unwrap())
        };
        let (bulk, bulk_scan) = run(true);
        let (base, base_scan) = run(false);
        assert_eq!(bulk, base, "bulk assigns the versions the loop would");
        assert_eq!(bulk_scan, base_scan);
    }

    #[test]
    fn bulk_insert_applies_the_exact_prefix_before_the_offending_key() {
        let mut s = suite_322(62);
        s.insert(&k("dup"), &val("old")).unwrap();
        // Pre-existing key mid-batch: its error surfaces, the prefix is
        // applied, the tail is not — exactly the per-key loop's outcome.
        let batch = vec![
            (k("p0"), val("v")),
            (k("p1"), val("v")),
            (k("dup"), val("v")),
            (k("p2"), val("v")),
        ];
        assert_eq!(
            s.insert_many(&batch),
            Err(SuiteError::AlreadyExists { key: k("dup") })
        );
        assert!(s.lookup(&k("p0")).unwrap().present);
        assert!(s.lookup(&k("p1")).unwrap().present);
        assert!(!s.lookup(&k("p2")).unwrap().present);
        assert_eq!(s.lookup(&k("dup")).unwrap().value, Some(val("old")));
        // An in-batch duplicate offends at its later occurrence.
        let batch = vec![(k("q0"), val("v")), (k("q0"), val("v"))];
        assert_eq!(
            s.insert_many(&batch),
            Err(SuiteError::AlreadyExists { key: k("q0") })
        );
        assert!(
            s.lookup(&k("q0")).unwrap().present,
            "first occurrence applied"
        );
        // Sentinels are rejected in position, not up front.
        let batch = vec![(k("r0"), val("v")), (Key::High, val("v"))];
        assert!(matches!(
            s.insert_many(&batch),
            Err(SuiteError::SentinelKey { .. })
        ));
        assert!(s.lookup(&k("r0")).unwrap().present);
        // Empty batches are no-ops.
        assert_eq!(s.insert_many(&[]).unwrap().versions, Vec::<Version>::new());
        assert_eq!(s.delete_many(&[]).unwrap().versions, Vec::<Version>::new());
    }

    #[test]
    fn bulk_delete_matches_the_per_key_baseline() {
        let run = |reuse: bool| {
            let mut s = suite_322(63);
            s.set_policy(fixed(&[0, 1, 2]));
            let entries: Vec<(Key, Value)> =
                (0..10).map(|i| (k(&format!("d{i}")), val("v"))).collect();
            s.insert_many(&entries).unwrap();
            s.set_session_reuse(reuse);
            let keys: Vec<Key> = entries.iter().map(|(key, _)| key.clone()).collect();
            let out = s.delete_many(&keys).unwrap();
            (out, s.scan().unwrap())
        };
        let (bulk, bulk_scan) = run(true);
        let (base, base_scan) = run(false);
        assert_eq!(bulk, base, "bulk coalesces at the versions the loop would");
        assert!(bulk_scan.is_empty());
        assert_eq!(bulk_scan, base_scan);
        // NotFound mid-batch stops with the prefix deleted.
        let mut s = suite_322(64);
        s.insert_many(&[(k("x"), val("v")), (k("y"), val("v"))])
            .unwrap();
        assert_eq!(
            s.delete_many(&[k("x"), k("ghost"), k("y")]),
            Err(SuiteError::NotFound { key: k("ghost") })
        );
        assert!(!s.lookup(&k("x")).unwrap().present);
        assert!(s.lookup(&k("y")).unwrap().present);
    }

    #[test]
    fn mid_batch_insert_failure_resumes_at_the_same_versions() {
        use std::sync::atomic::Ordering;
        let (mut s, fuses) = fused_suite();
        // Member 0 dies inside the write envelope: the chunk's 8 discovery
        // lookups tick first, so a fuse of 10 fires on its second insert —
        // after the versions were assigned and after member 1 (fanned out
        // concurrently) may have applied the whole envelope.
        fuses[0].store(10, Ordering::SeqCst);
        let entries: Vec<(Key, Value)> = (0..8).map(|i| (k(&format!("n{i}")), val("v"))).collect();
        let out = s.insert_many(&entries).unwrap();
        // Every key landed exactly once, at the version assigned before the
        // failure — a write re-applied from a fresh discovery would show
        // version 2 (its lookup would now find the entry present).
        assert_eq!(out.versions, vec![Version::new(1); 8]);
        for (key, _) in &entries {
            let got = s.lookup(key).unwrap();
            assert!(got.present, "{key:?} lost");
            assert_eq!(got.version, Version::new(1), "{key:?} double-applied");
        }
        let snap = s.obs().snapshot();
        assert!(snap.counter("suite.session.revalidate") >= 1);
        assert_eq!(snap.counter("suite.bulk.resumed"), 1);
    }

    #[test]
    fn mid_batch_delete_failure_resumes_without_false_not_found() {
        use std::sync::atomic::Ordering;
        let (mut s, fuses) = fused_suite();
        // Member 0 dies a few data RPCs into the batch — inside some key's
        // lookup/search/copy/coalesce chain, possibly leaving that key
        // half-coalesced at the surviving members.
        fuses[0].store(6, Ordering::SeqCst);
        let keys = [k("a"), k("b"), k("c")];
        s.delete_many(&keys).unwrap();
        for key in &keys {
            assert!(!s.lookup(key).unwrap().present, "{key:?} survived");
        }
        let listed = s.scan().unwrap();
        assert_eq!(
            listed
                .iter()
                .map(|(u, _)| u.to_string())
                .collect::<Vec<_>>(),
            vec!["d", "e", "f"],
            "only the batch was deleted"
        );
        let snap = s.obs().snapshot();
        assert!(snap.counter("suite.session.revalidate") >= 1);
        assert!(snap.counter("suite.bulk.resumed") >= 1);
    }

    /// Forwards to a [`LocalRep`] but panics on the first data RPC after
    /// being armed — the fault-injection client for the session-scope
    /// unwind-safety regression test.
    struct PanicsOnLookup {
        inner: LocalRep,
        armed: std::sync::atomic::AtomicBool,
    }

    impl PanicsOnLookup {
        fn arm(&self) {
            self.armed.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl RepClient for PanicsOnLookup {
        fn id(&self) -> RepId {
            self.inner.id()
        }
        fn ping(&self) -> RepResult<()> {
            self.inner.ping()
        }
        fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
            if self.armed.swap(false, std::sync::atomic::Ordering::SeqCst) {
                panic!("injected fault: representative panicked mid-lookup");
            }
            self.inner.lookup(key)
        }
        fn predecessor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.inner.predecessor(key)
        }
        fn successor(&self, key: &Key) -> RepResult<crate::gapmap::NeighborReply> {
            self.inner.successor(key)
        }
        fn insert(
            &self,
            key: &Key,
            version: Version,
            value: &Value,
        ) -> RepResult<crate::gapmap::InsertOutcome> {
            self.inner.insert(key, version, value)
        }
        fn coalesce(
            &self,
            low: &Key,
            high: &Key,
            version: Version,
        ) -> RepResult<crate::gapmap::CoalesceOutcome> {
            self.inner.coalesce(low, high, version)
        }
    }

    #[test]
    fn panicking_body_does_not_leak_the_session_scope() {
        // Regression: the old session_begin/session_end pair leaked
        // session_depth when the body unwound, pinning a stale quorum
        // session for the suite's lifetime. The RAII scope guard must
        // restore depth and clear sessions on panic.
        let clients: Vec<PanicsOnLookup> = (0..3)
            .map(|i| PanicsOnLookup {
                inner: LocalRep::new(RepId(i)),
                armed: std::sync::atomic::AtomicBool::new(false),
            })
            .collect();
        let cfg = SuiteConfig::symmetric(3, 2, 2).unwrap();
        let mut s = DirSuite::new(clients, cfg, fixed(&[0, 1, 2])).unwrap();
        // Inline scatter, so the injected panic unwinds through the suite's
        // own frames rather than a scoped worker thread.
        s.set_fanout(false);
        s.insert(&k("a"), &val("A")).unwrap();
        s.member(0).arm();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.scan();
        }))
        .is_err();
        assert!(unwound, "the armed client must have panicked");
        assert!(s.session(QuorumKind::Read).is_none());
        assert!(s.session(QuorumKind::Write).is_none());
        // A leaked depth would make this ordinary lookup pin its quorum as
        // a session; a balanced scope leaves nothing behind.
        s.lookup(&k("a")).unwrap();
        assert!(
            s.session(QuorumKind::Read).is_none(),
            "session depth leaked through the unwind"
        );
        // And the suite still answers correctly afterwards.
        let listed = s.scan().unwrap();
        assert_eq!(listed.len(), 1);
    }

    #[test]
    fn failed_member_ewma_is_penalized_so_latency_policy_demotes_it() {
        // Regression: a dead member kept its stale fast reply-time EWMA, so
        // LatencyPolicy kept ordering it first and every collection burned a
        // ping on the corpse. A failed RPC (or ping miss) now records a
        // penalty sample, demoting the member below any live one.
        let mut s = suite_322(77);
        let policy = s.latency_policy();
        s.set_policy(Box::new(policy));
        s.insert(&k("a"), &val("A")).unwrap();
        // Unsampled members sort first, so a few lookups sample all three.
        for _ in 0..6 {
            s.lookup(&k("a")).unwrap();
        }
        let favorite = s.lookup(&k("a")).unwrap().quorum[0];
        let dead = favorite.0 as usize;
        s.member(dead).set_available(false);
        // Discovery: the stale-fast favorite is pinged once more, misses,
        // and its EWMA takes the failure penalty.
        s.lookup(&k("a")).unwrap();
        let pings_after_discovery = s.ping_counts()[dead];
        for _ in 0..8 {
            assert!(s.lookup(&k("a")).unwrap().present);
        }
        assert_eq!(
            s.ping_counts()[dead],
            pings_after_discovery,
            "a penalized member must sort behind the live ones and not be \
             pinged on every collection"
        );
    }

    #[test]
    fn in_process_runs_random_quorums_consistently() {
        // Smoke-test the random policy end to end: a mixed workload where
        // the suite must agree with a sequential model.
        use std::collections::BTreeMap;
        let mut model: BTreeMap<String, String> = BTreeMap::new();
        let mut s = suite_322(123);
        let keys = ["a", "b", "c", "d", "e", "f"];
        let mut rng = crate::rng::SplitMix64::new(99);
        for step in 0..400 {
            let key = keys[rng.next_below(keys.len() as u64) as usize];
            let kk = k(key);
            match rng.next_below(3) {
                0 => {
                    let vv = format!("v{step}");
                    if model.contains_key(key) {
                        s.update(&kk, &val(&vv)).unwrap();
                        model.insert(key.into(), vv);
                    } else {
                        s.insert(&kk, &val(&vv)).unwrap();
                        model.insert(key.into(), vv);
                    }
                }
                1 => {
                    if model.remove(key).is_some() {
                        s.delete(&kk).unwrap();
                    } else {
                        assert!(matches!(s.delete(&kk), Err(SuiteError::NotFound { .. })));
                    }
                }
                _ => {
                    let out = s.lookup(&kk).unwrap();
                    assert_eq!(out.present, model.contains_key(key), "step {step}");
                    if out.present {
                        assert_eq!(
                            out.value.as_ref().unwrap().as_bytes(),
                            model[key].as_bytes()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stale_vote_observed_when_read_quorum_straddles_the_write() {
        let mut s = suite_322(61);
        let registry = Registry::new();
        s.set_obs_registry(registry.clone());
        // Write lands on members {0, 1}; the read quorum {1, 2} includes
        // member 2, which never saw the insert.
        s.set_policy(fixed(&[0, 1]));
        s.insert(&k("b"), &val("B")).unwrap();
        s.set_policy(fixed(&[1, 2]));
        let out = s.lookup(&k("b")).unwrap();
        assert!(out.present);
        assert_eq!(out.version, Version::new(1));
        let votes = s.take_stale_votes();
        assert_eq!(
            votes,
            vec![StaleVote {
                member: 2,
                key: k("b"),
                seen: Version::ZERO,
                latest: Version::new(1),
            }]
        );
        assert_eq!(registry.counter("repair.stale_votes_observed").get(), 1);
        // Drained: a second drain without new reads yields nothing.
        assert!(s.take_stale_votes().is_empty());
        // A fresh read re-observes the still-stale member.
        s.lookup(&k("b")).unwrap();
        assert_eq!(s.take_stale_votes().len(), 1);
    }

    #[test]
    fn repeated_stale_reads_coalesce_to_one_queued_vote() {
        // Regression: repeated lookups of the same stale key used to queue
        // one StaleVote per read, so the repair layer issued one redundant
        // bucket pull per read. The queue must coalesce per (member, key),
        // keeping the latest observation.
        let mut s = suite_322(66);
        let registry = Registry::new();
        s.set_obs_registry(registry.clone());
        s.set_policy(fixed(&[0, 1]));
        s.insert(&k("b"), &val("B")).unwrap();
        s.set_policy(fixed(&[1, 2]));
        for _ in 0..5 {
            s.lookup(&k("b")).unwrap();
        }
        // Every observation is counted, but the queue holds one vote.
        assert_eq!(registry.counter("repair.stale_votes_observed").get(), 5);
        let votes = s.take_stale_votes();
        assert_eq!(
            votes,
            vec![StaleVote {
                member: 2,
                key: k("b"),
                seen: Version::ZERO,
                latest: Version::new(1),
            }]
        );
        // The member falls further behind; the coalesced vote must carry
        // the *latest* winner, not the first one observed.
        s.set_policy(fixed(&[0, 1]));
        s.update(&k("b"), &val("B2")).unwrap();
        s.set_policy(fixed(&[1, 2]));
        s.lookup(&k("b")).unwrap();
        s.set_policy(fixed(&[0, 1]));
        s.update(&k("b"), &val("B3")).unwrap();
        s.set_policy(fixed(&[1, 2]));
        s.lookup(&k("b")).unwrap();
        let votes = s.take_stale_votes();
        assert_eq!(votes.len(), 1);
        assert_eq!(votes[0].latest, Version::new(3));
    }

    #[test]
    fn stale_votes_route_to_a_shared_sink_and_wake_the_member() {
        let mut s = suite_322(67);
        s.set_policy(fixed(&[0, 1]));
        s.insert(&k("b"), &val("B")).unwrap();
        let queue = Arc::new(StaleVoteQueue::new());
        let woken = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let count = Arc::clone(&woken);
        queue.set_waker(
            2,
            Some(Box::new(move || {
                count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            })),
        );
        s.set_stale_vote_sink(Some(Arc::clone(&queue)));
        s.set_policy(fixed(&[1, 2]));
        for _ in 0..3 {
            s.lookup(&k("b")).unwrap();
        }
        // Votes bypass the local queue, land (coalesced) in the sink, and
        // each observation fires the stale member's waker.
        assert!(s.take_stale_votes().is_empty());
        assert_eq!(woken.load(std::sync::atomic::Ordering::SeqCst), 3);
        assert!(queue.drain_member(0).is_empty());
        let votes = queue.drain_member(2);
        assert_eq!(votes.len(), 1);
        assert_eq!(votes[0].key, k("b"));
        assert!(queue.is_empty());
        // Uninstalling the sink restores the suite-local queue.
        s.set_stale_vote_sink(None);
        s.lookup(&k("b")).unwrap();
        assert_eq!(s.take_stale_votes().len(), 1);
        assert!(queue.is_empty());
    }

    #[test]
    fn stale_vote_queue_coalesces_and_drains_per_member() {
        let queue = StaleVoteQueue::new();
        let vote = |member: usize, key: &str, latest: u64| StaleVote {
            member,
            key: k(key),
            seen: Version::ZERO,
            latest: Version::new(latest),
        };
        queue.push(vote(0, "a", 1));
        queue.push(vote(1, "a", 1));
        queue.push(vote(0, "b", 2));
        queue.push(vote(0, "a", 5)); // coalesces with (0, "a"), keeps latest
        assert_eq!(queue.len(), 3);
        let m0 = queue.drain_member(0);
        assert_eq!(m0.len(), 2);
        assert_eq!(m0[0].key, k("a"));
        assert_eq!(m0[0].latest, Version::new(5));
        assert_eq!(m0[1].key, k("b"));
        assert_eq!(queue.drain_all(), vec![vote(1, "a", 1)]);
        assert!(queue.is_empty());
    }

    #[test]
    fn stale_vote_detection_covers_the_hedged_read_path() {
        let mut s = suite_322(62);
        s.set_policy(fixed(&[0, 1]));
        s.insert(&k("b"), &val("B")).unwrap();
        s.set_policy(fixed(&[1, 2]));
        s.set_hedge(true);
        s.set_hedge_delay(Some(Duration::from_millis(50)));
        let out = s.lookup(&k("b")).unwrap();
        assert!(out.present);
        let votes = s.take_stale_votes();
        assert_eq!(votes.len(), 1);
        assert_eq!(votes[0].member, 2);
        assert_eq!(votes[0].latest, Version::new(1));
    }

    #[test]
    fn set_repair_false_disables_stale_vote_tracking() {
        let mut s = suite_322(63);
        assert!(s.repair_enabled());
        s.set_policy(fixed(&[0, 1]));
        s.insert(&k("b"), &val("B")).unwrap();
        s.set_policy(fixed(&[1, 2]));
        s.lookup(&k("b")).unwrap();
        assert_eq!(s.take_stale_votes().len(), 1);
        s.set_repair(false);
        assert!(!s.repair_enabled());
        s.lookup(&k("b")).unwrap();
        assert!(s.take_stale_votes().is_empty());
        // Re-arming drops nothing that was observed while disarmed.
        s.set_repair(true);
        assert!(s.take_stale_votes().is_empty());
    }

    #[test]
    fn equal_version_votes_are_not_stale() {
        let mut s = suite_322(64);
        s.insert(&k("b"), &val("B")).unwrap();
        // Every member saw the write (write quorum 2 of 3, then read the
        // same members via the fixed policy).
        s.set_policy(fixed(&[0, 1, 2]));
        for _ in 0..5 {
            s.lookup(&k("b")).unwrap();
        }
        // Reads may straddle the original write quorum, so filter to votes
        // that matched the winner exactly: none of those may be queued.
        for v in s.take_stale_votes() {
            assert!(v.seen < v.latest, "non-stale vote queued: {v:?}");
        }
    }

    #[test]
    fn penalty_sample_is_tunable() {
        let mut s = suite_322(65);
        s.set_policy(fixed(&[0, 1, 2]));
        s.set_penalty_sample(Duration::from_millis(5));
        s.member(0).set_available(false);
        // Member 0 misses the quorum ping; its EWMA takes the custom 5 ms
        // penalty, not the 1 s default.
        s.lookup(&k("x")).unwrap();
        let ewma = s.member_reply_ewmas()[0].value_us().unwrap();
        assert!(
            ewma < 100_000.0,
            "penalty sample not applied: EWMA {ewma} µs"
        );
        // The tunable survives a registry rebind.
        s.set_obs_registry(Registry::new());
        s.member(1).set_available(false);
        s.member(0).set_available(true);
        s.lookup(&k("x")).unwrap();
        let ewma = s.member_reply_ewmas()[1].value_us().unwrap();
        assert!(
            ewma < 100_000.0,
            "penalty sample lost on registry rebind: EWMA {ewma} µs"
        );
    }
}
