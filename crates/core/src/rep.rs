//! Directory representatives: the abstract interface the suite algorithm
//! talks to, and a simple in-process implementation.
//!
//! In the paper (§3.1) "each directory representative is an instance of an
//! abstract object that stores one copy of the directory data", reached via
//! remote procedure calls (`Send(...) to (...)`). [`RepClient`] is that RPC
//! surface. The suite algorithm is generic over it, so the same code runs
//! against:
//!
//! * [`LocalRep`] — an in-process representative (used by the paper-style
//!   simulations, where only algorithmic counts matter),
//! * `repdir-replica`'s transactional representative (range locks + undo
//!   logging + write-ahead log), served directly or across `repdir-net`'s
//!   simulated network.

use std::fmt;
use std::sync::{Arc, RwLock};

use crate::error::RepError;
use crate::gapmap::{CoalesceOutcome, GapMap, InsertOutcome, LookupReply, NeighborReply};
use crate::key::Key;
use crate::value::Value;
use crate::version::Version;

/// Identifies one representative within a suite.
///
/// Representatives are numbered `0..n` in suite order. The paper's figures
/// label them A, B, C, …; [`RepId::letter`] renders that form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RepId(pub u32);

impl RepId {
    /// Renders the id in the paper's figure style: `0 → "A"`, `1 → "B"`, …
    /// Ids past `25` fall back to `R<n>`.
    pub fn letter(self) -> String {
        if self.0 < 26 {
            char::from(b'A' + self.0 as u8).to_string()
        } else {
            format!("R{}", self.0)
        }
    }
}

impl fmt::Debug for RepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rep{}", self.0)
    }
}

impl fmt::Display for RepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Result alias for representative operations.
pub type RepResult<T> = Result<T, RepError>;

/// One sub-request inside a batched scatter envelope
/// ([`RepClient::batch`]). Only the operations the suite packs together on
/// its bulk-walk hot paths are representable: a point lookup, the §4
/// neighbor chains, and the versioned insert that bulk ingest scatters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchRequest {
    /// `DirRepLookup(x)`.
    Lookup(Key),
    /// Up to `limit` successive `DirRepPredecessor` results from the key.
    PredecessorChain(Key, usize),
    /// Up to `limit` successive `DirRepSuccessor` results from the key.
    SuccessorChain(Key, usize),
    /// `DirRepInsert(x, v, z)` — the write half of bulk ingest. Carries the
    /// explicit version the suite assigned, so replaying the same envelope
    /// after a session re-validation overwrites idempotently.
    Insert(Key, Version, Value),
}

/// The reply to one [`BatchRequest`], in request order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchReply {
    /// Reply to [`BatchRequest::Lookup`].
    Lookup(LookupReply),
    /// Reply to either chain request.
    Chain(Vec<NeighborReply>),
    /// Reply to [`BatchRequest::Insert`].
    Insert(InsertOutcome),
}

/// The remote-procedure-call surface of a directory representative
/// (paper Fig. 6).
///
/// Implementations must be usable from a shared reference: a suite fans one
/// logical operation out to several representatives, and the concurrent
/// implementations in `repdir-replica` serve many transactions at once.
/// The `Send + Sync` supertraits let the suite's scatter-gather executor
/// issue one wave of member RPCs from scoped threads — a quorum round costs
/// the *slowest* member's latency, not the sum.
///
/// Every method may return [`RepError::Unavailable`] if the representative
/// is down or unreachable; the suite treats that as a vote it cannot collect.
pub trait RepClient: Send + Sync {
    /// This representative's identity within the suite.
    fn id(&self) -> RepId;

    /// Cheap reachability probe used during quorum collection.
    ///
    /// # Errors
    ///
    /// [`RepError::Unavailable`] if the representative cannot currently
    /// serve requests.
    fn ping(&self) -> RepResult<()>;

    /// `DirRepLookup(x)` — entry version and value, or containing-gap
    /// version (Fig. 6). Sets a `RepLookup(x, x)` lock in transactional
    /// implementations.
    fn lookup(&self, key: &Key) -> RepResult<LookupReply>;

    /// `DirRepPredecessor(x)` — greatest entry below `x` plus the
    /// intervening gap version. Sets `RepLookup(y, x)` where `y` is the key
    /// returned.
    fn predecessor(&self, key: &Key) -> RepResult<NeighborReply>;

    /// `DirRepSuccessor(x)` — least entry above `x` plus the intervening gap
    /// version. Sets `RepLookup(x, y)` where `y` is the key returned.
    fn successor(&self, key: &Key) -> RepResult<NeighborReply>;

    /// Up to `limit` *successive* `DirRepPredecessor` results in one call —
    /// the §4 batching optimization ("three successive DirRepPredecessor …
    /// in a single message"). The default forwards to
    /// [`predecessor`](RepClient::predecessor) repeatedly; networked
    /// implementations override it to save round trips.
    ///
    /// # Errors
    ///
    /// As [`predecessor`](RepClient::predecessor).
    fn predecessor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.predecessor(&probe)?;
            let done = nb.key == Key::Low;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// Up to `limit` successive `DirRepSuccessor` results in one call
    /// (mirror of [`predecessor_chain`](RepClient::predecessor_chain)).
    ///
    /// # Errors
    ///
    /// As [`successor`](RepClient::successor).
    fn successor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.successor(&probe)?;
            let done = nb.key == Key::High;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// `DirRepInsert(x, v, z)` — create or overwrite the entry. Sets
    /// `RepModify(x, x)`.
    fn insert(&self, key: &Key, version: Version, value: &Value) -> RepResult<InsertOutcome>;

    /// `DirRepCoalesce(l, h, v)` — delete entries strictly inside `(l, h)`
    /// and give the resulting gap version `v`. Sets `RepModify(l, h)`.
    fn coalesce(&self, low: &Key, high: &Key, version: Version) -> RepResult<CoalesceOutcome>;

    /// Executes several requests as one envelope, returning the
    /// replies in request order. The default runs them sequentially —
    /// correct for in-process representatives, where a "message" is a
    /// method call — while networked implementations override it to pack
    /// the whole batch into a single RPC frame, so a suite wave costs one
    /// round trip regardless of how many probes it carries.
    ///
    /// The first failing sub-request fails the whole envelope: callers
    /// treat an envelope like any other member RPC.
    ///
    /// # Errors
    ///
    /// As the corresponding single-request methods.
    fn batch(&self, reqs: &[BatchRequest]) -> RepResult<Vec<BatchReply>> {
        reqs.iter()
            .map(|req| {
                Ok(match req {
                    BatchRequest::Lookup(key) => BatchReply::Lookup(self.lookup(key)?),
                    BatchRequest::PredecessorChain(key, limit) => {
                        BatchReply::Chain(self.predecessor_chain(key, *limit)?)
                    }
                    BatchRequest::SuccessorChain(key, limit) => {
                        BatchReply::Chain(self.successor_chain(key, *limit)?)
                    }
                    BatchRequest::Insert(key, version, value) => {
                        BatchReply::Insert(self.insert(key, *version, value)?)
                    }
                })
            })
            .collect()
    }
}

/// Blanket implementation so `&C`, `Arc<C>`, `Box<C>`, … are themselves
/// clients.
impl<T: RepClient + ?Sized> RepClient for &T {
    fn id(&self) -> RepId {
        (**self).id()
    }
    fn ping(&self) -> RepResult<()> {
        (**self).ping()
    }
    fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
        (**self).lookup(key)
    }
    fn predecessor(&self, key: &Key) -> RepResult<NeighborReply> {
        (**self).predecessor(key)
    }
    fn successor(&self, key: &Key) -> RepResult<NeighborReply> {
        (**self).successor(key)
    }
    fn predecessor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        (**self).predecessor_chain(key, limit)
    }
    fn successor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        (**self).successor_chain(key, limit)
    }
    fn insert(&self, key: &Key, version: Version, value: &Value) -> RepResult<InsertOutcome> {
        (**self).insert(key, version, value)
    }
    fn coalesce(&self, low: &Key, high: &Key, version: Version) -> RepResult<CoalesceOutcome> {
        (**self).coalesce(low, high, version)
    }
    fn batch(&self, reqs: &[BatchRequest]) -> RepResult<Vec<BatchReply>> {
        (**self).batch(reqs)
    }
}

impl<T: RepClient + ?Sized> RepClient for Arc<T> {
    fn id(&self) -> RepId {
        (**self).id()
    }
    fn ping(&self) -> RepResult<()> {
        (**self).ping()
    }
    fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
        (**self).lookup(key)
    }
    fn predecessor(&self, key: &Key) -> RepResult<NeighborReply> {
        (**self).predecessor(key)
    }
    fn successor(&self, key: &Key) -> RepResult<NeighborReply> {
        (**self).successor(key)
    }
    fn predecessor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        (**self).predecessor_chain(key, limit)
    }
    fn successor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        (**self).successor_chain(key, limit)
    }
    fn insert(&self, key: &Key, version: Version, value: &Value) -> RepResult<InsertOutcome> {
        (**self).insert(key, version, value)
    }
    fn coalesce(&self, low: &Key, high: &Key, version: Version) -> RepResult<CoalesceOutcome> {
        (**self).coalesce(low, high, version)
    }
    fn batch(&self, reqs: &[BatchRequest]) -> RepResult<Vec<BatchReply>> {
        (**self).batch(reqs)
    }
}

#[derive(Debug)]
struct LocalRepInner {
    state: GapMap,
    available: bool,
}

/// An in-process directory representative.
///
/// `LocalRep` executes each operation atomically under an internal lock and
/// supports failure injection via [`set_available`](LocalRep::set_available).
/// It is the representative used by the paper-style simulations (§4), where
/// the statistics of interest are algorithmic counts rather than wall-clock
/// behaviour. Clones share the same underlying state, like multiple client
/// stubs for one server.
///
/// # Examples
///
/// ```
/// use repdir_core::{Key, LocalRep, RepClient, Value, Version};
///
/// let rep = LocalRep::new(repdir_core::RepId(0));
/// rep.insert(&Key::from("a"), Version::new(1), &Value::from("A"))?;
/// assert!(rep.lookup(&Key::from("a"))?.is_present());
/// # Ok::<(), repdir_core::RepError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LocalRep {
    id: RepId,
    inner: Arc<RwLock<LocalRepInner>>,
}

impl LocalRep {
    /// Creates an empty, available representative.
    pub fn new(id: RepId) -> Self {
        LocalRep {
            id,
            inner: Arc::new(RwLock::new(LocalRepInner {
                state: GapMap::new(),
                available: true,
            })),
        }
    }

    /// Creates a representative with pre-loaded state (for tests and the
    /// worked figures of the paper).
    pub fn with_state(id: RepId, state: GapMap) -> Self {
        LocalRep {
            id,
            inner: Arc::new(RwLock::new(LocalRepInner {
                state,
                available: true,
            })),
        }
    }

    /// Injects or heals a failure: while unavailable, every operation —
    /// including [`ping`](RepClient::ping) — returns
    /// [`RepError::Unavailable`].
    pub fn set_available(&self, available: bool) {
        self.write().available = available;
    }

    /// Whether the representative is currently serving requests.
    pub fn is_available(&self) -> bool {
        self.read().available
    }

    /// Returns a copy of the representative's current state. Intended for
    /// test assertions and the simulation driver's statistics.
    pub fn snapshot(&self) -> GapMap {
        self.read().state.clone()
    }

    /// Runs a closure against the live state without copying (read-only).
    pub fn inspect<R>(&self, f: impl FnOnce(&GapMap) -> R) -> R {
        f(&self.read().state)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.read().state.len()
    }

    /// Whether the representative stores no entries.
    pub fn is_empty(&self) -> bool {
        self.read().state.is_empty()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, LocalRepInner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, LocalRepInner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    fn check_up(inner: &LocalRepInner) -> RepResult<()> {
        if inner.available {
            Ok(())
        } else {
            Err(RepError::Unavailable)
        }
    }
}

impl RepClient for LocalRep {
    fn id(&self) -> RepId {
        self.id
    }

    fn ping(&self) -> RepResult<()> {
        Self::check_up(&self.read())
    }

    fn lookup(&self, key: &Key) -> RepResult<LookupReply> {
        let g = self.read();
        Self::check_up(&g)?;
        Ok(g.state.lookup(key))
    }

    fn predecessor(&self, key: &Key) -> RepResult<NeighborReply> {
        let g = self.read();
        Self::check_up(&g)?;
        g.state.predecessor(key)
    }

    fn successor(&self, key: &Key) -> RepResult<NeighborReply> {
        let g = self.read();
        Self::check_up(&g)?;
        g.state.successor(key)
    }

    fn predecessor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        let g = self.read();
        Self::check_up(&g)?;
        g.state.predecessor_chain(key, limit)
    }

    fn successor_chain(&self, key: &Key, limit: usize) -> RepResult<Vec<NeighborReply>> {
        let g = self.read();
        Self::check_up(&g)?;
        g.state.successor_chain(key, limit)
    }

    fn insert(&self, key: &Key, version: Version, value: &Value) -> RepResult<InsertOutcome> {
        let mut g = self.write();
        Self::check_up(&g)?;
        g.state.insert(key, version, value.clone())
    }

    fn coalesce(&self, low: &Key, high: &Key, version: Version) -> RepResult<CoalesceOutcome> {
        let mut g = self.write();
        Self::check_up(&g)?;
        g.state.coalesce(low, high, version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn rep_id_letters() {
        assert_eq!(RepId(0).letter(), "A");
        assert_eq!(RepId(2).letter(), "C");
        assert_eq!(RepId(25).letter(), "Z");
        assert_eq!(RepId(26).letter(), "R26");
        assert_eq!(format!("{:?}", RepId(3)), "rep3");
        assert_eq!(RepId(1).to_string(), "B");
    }

    #[test]
    fn local_rep_round_trip() {
        let rep = LocalRep::new(RepId(0));
        rep.ping().unwrap();
        rep.insert(&k("a"), Version::new(1), &Value::from("A"))
            .unwrap();
        let r = rep.lookup(&k("a")).unwrap();
        assert!(r.is_present());
        assert_eq!(r.version(), Version::new(1));
        assert_eq!(rep.len(), 1);
        assert!(!rep.is_empty());
    }

    #[test]
    fn unavailable_rep_fails_every_operation() {
        let rep = LocalRep::new(RepId(1));
        rep.insert(&k("a"), Version::new(1), &Value::from("A"))
            .unwrap();
        rep.set_available(false);
        assert!(!rep.is_available());
        assert_eq!(rep.ping(), Err(RepError::Unavailable));
        assert_eq!(rep.lookup(&k("a")), Err(RepError::Unavailable));
        assert_eq!(rep.predecessor(&k("z")), Err(RepError::Unavailable));
        assert_eq!(rep.successor(&Key::Low), Err(RepError::Unavailable));
        assert_eq!(
            rep.insert(&k("b"), Version::new(1), &Value::empty()),
            Err(RepError::Unavailable)
        );
        assert_eq!(
            rep.coalesce(&Key::Low, &Key::High, Version::new(1)),
            Err(RepError::Unavailable)
        );
        // Healing restores service with state intact.
        rep.set_available(true);
        assert!(rep.lookup(&k("a")).unwrap().is_present());
    }

    #[test]
    fn clones_share_state() {
        let rep = LocalRep::new(RepId(0));
        let stub = rep.clone();
        stub.insert(&k("x"), Version::new(1), &Value::from("X"))
            .unwrap();
        assert!(rep.lookup(&k("x")).unwrap().is_present());
    }

    #[test]
    fn snapshot_is_detached_copy() {
        let rep = LocalRep::new(RepId(0));
        rep.insert(&k("x"), Version::new(1), &Value::from("X"))
            .unwrap();
        let snap = rep.snapshot();
        rep.coalesce(&Key::Low, &Key::High, Version::new(2))
            .unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(rep.len(), 0);
        assert_eq!(rep.inspect(|s| s.len()), 0);
    }

    #[test]
    fn trait_usable_through_references_and_arcs() {
        fn exercise<C: RepClient>(c: C) {
            c.ping().unwrap();
            assert_eq!(c.id(), RepId(7));
        }
        let rep = LocalRep::new(RepId(7));
        exercise(&rep);
        exercise(Arc::new(rep.clone()));
        exercise(rep);
    }

    #[test]
    fn default_batch_matches_individual_calls() {
        let rep = LocalRep::new(RepId(0));
        rep.insert(&k("a"), Version::new(1), &Value::from("A"))
            .unwrap();
        rep.insert(&k("c"), Version::new(2), &Value::from("C"))
            .unwrap();
        let replies = rep
            .batch(&[
                BatchRequest::Lookup(k("a")),
                BatchRequest::SuccessorChain(Key::Low, 3),
                BatchRequest::PredecessorChain(Key::High, 2),
                BatchRequest::Lookup(k("b")),
            ])
            .unwrap();
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0], BatchReply::Lookup(rep.lookup(&k("a")).unwrap()));
        assert_eq!(
            replies[1],
            BatchReply::Chain(rep.successor_chain(&Key::Low, 3).unwrap())
        );
        assert_eq!(
            replies[2],
            BatchReply::Chain(rep.predecessor_chain(&Key::High, 2).unwrap())
        );
        assert_eq!(replies[3], BatchReply::Lookup(rep.lookup(&k("b")).unwrap()));
        // Write sub-requests apply through the same dispatch.
        let replies = rep
            .batch(&[BatchRequest::Insert(
                k("b"),
                Version::new(3),
                Value::from("B"),
            )])
            .unwrap();
        assert_eq!(
            replies,
            vec![BatchReply::Insert(InsertOutcome::Created {
                split_gap_version: Version::ZERO,
            })]
        );
        let b = rep.lookup(&k("b")).unwrap();
        assert!(b.is_present());
        assert_eq!(b.version(), Version::new(3));
        // An empty envelope is a no-op.
        assert_eq!(rep.batch(&[]).unwrap(), vec![]);
        // The first failing sub-request fails the envelope.
        rep.set_available(false);
        assert_eq!(
            rep.batch(&[BatchRequest::Lookup(k("a"))]),
            Err(RepError::Unavailable)
        );
    }

    #[test]
    fn with_state_preloads_entries() {
        let mut m = GapMap::new();
        m.insert(&k("a"), Version::new(1), Value::from("A"))
            .unwrap();
        let rep = LocalRep::with_state(RepId(0), m);
        assert_eq!(rep.len(), 1);
    }
}
