//! A tiny deterministic pseudo-random number generator.
//!
//! The core crate is dependency-free, but quorum policies need a source of
//! randomness (the paper's simulations select quorum members "randomly from a
//! uniform distribution", §4). `SplitMix64` is small, fast, well-distributed,
//! and — critically for reproducible experiments — fully deterministic from
//! its seed.

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) pseudo-random number
/// generator.
///
/// # Examples
///
/// ```
/// use repdir_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic from seed
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry to stay unbiased.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Forks an independent generator, advancing this one.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_bool_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..50 {
            assert!(!r.next_bool(0.0));
            assert!(r.next_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SplitMix64::new(13);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.next_below(10) as usize] += 1;
        }
        let expected = n / 10;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (c as i64 - expected as i64).abs() as f64 / expected as f64;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }
}
