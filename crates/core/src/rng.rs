//! A tiny deterministic pseudo-random number generator.
//!
//! The core crate is dependency-free, but quorum policies need a source of
//! randomness (the paper's simulations select quorum members "randomly from a
//! uniform distribution", §4). `SplitMix64` is small, fast, well-distributed,
//! and — critically for reproducible experiments — fully deterministic from
//! its seed.

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) pseudo-random number
/// generator.
///
/// # Examples
///
/// ```
/// use repdir_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic from seed
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry to stay unbiased.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    ///
    /// `p = 1.0` is certain and `p = 0.0` is impossible. The draw is
    /// consumed unconditionally, so the stream advances identically for
    /// every `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Draws within ~2^11 of u64::MAX round to exactly 1.0 when
        // converted to f64, and `1.0 < 1.0` is false — so a strict
        // comparison alone lets a "certain" event occasionally fail
        // (observed as set_node_drop(1.0) still delivering packets).
        let draw = self.next_u64() as f64 / u64::MAX as f64;
        draw < p || p >= 1.0
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Forks an independent generator, advancing this one.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// A seeded generator with `rand`-style convenience methods.
///
/// The workload generators, simulators, and fault injectors were written
/// against `rand::rngs::StdRng`; this in-tree replacement (a thin wrapper
/// over [`SplitMix64`]) keeps those call sites intact — `seed_from_u64`,
/// [`gen`](StdRng::gen), [`gen_bool`](StdRng::gen_bool),
/// [`gen_range`](StdRng::gen_range) — while making every stream
/// reproducible from its seed with no external dependency. The streams are
/// *not* bit-compatible with the `rand` crate's; only determinism per seed
/// is promised.
///
/// # Examples
///
/// ```
/// use repdir_core::rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let die = rng.gen_range(1u8..7);
/// assert!((1..7).contains(&die));
/// let p: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    inner: SplitMix64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            inner: SplitMix64::new(seed),
        }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniformly distributed value of `T` (integers over their
    /// full domain, `f64` in `[0, 1)`).
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.next_bool(p)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        self.inner.shuffle(items);
    }
}

/// Types [`StdRng::gen`] can sample over their natural domain.
pub trait Standard {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`StdRng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! uniform_uint_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.inner.next_below(span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range over empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                start + rng.inner.next_below(span + 1) as $t
            }
        }
    )*};
}
uniform_uint_range!(u8, u16, u32, u64, usize);

impl UniformRange for core::ops::Range<i32> {
    type Output = i32;
    fn sample_from(self, rng: &mut StdRng) -> i32 {
        assert!(self.start < self.end, "gen_range over empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.inner.next_below(span) as i64) as i32
    }
}

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_bool_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..50 {
            assert!(!r.next_bool(0.0));
            assert!(r.next_bool(1.0));
        }
    }

    #[test]
    fn next_bool_certain_even_when_draw_rounds_to_one() {
        // The quotient `next_u64() / u64::MAX` rounds to exactly 1.0 for
        // draws in the top ~2^11 of the range; `draw < 1.0` is then false.
        // p = 1.0 must be certain regardless, via the inclusive branch.
        let top = u64::MAX as f64 / u64::MAX as f64;
        assert!(top >= 1.0, "rounding premise");
        assert!(top < 1.0 || 1.0f64 >= 1.0, "inclusive comparison holds");
        let mut r = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..100_000 {
            assert!(r.next_bool(1.0));
        }
    }

    #[test]
    fn next_bool_consumes_exactly_one_draw_for_any_p() {
        // The stream must advance identically whatever p is, so seeded
        // replays stay bit-identical across probability changes.
        for p in [0.0, 0.3, 1.0] {
            let mut a = SplitMix64::new(77);
            let mut b = SplitMix64::new(77);
            a.next_bool(p);
            b.next_u64();
            assert_eq!(a, b, "p = {p}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SplitMix64::new(13);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }

    #[test]
    fn stdrng_deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..500 {
            assert!((0..16).contains(&a.gen_range(0u8..16)));
            assert!((5..=9).contains(&a.gen_range(5u64..=9)));
            assert!((0.0..1.0).contains(&a.gen_range(0.0f64..1.0)));
            assert!((-3..4).contains(&a.gen_range(-3i32..4)));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn stdrng_gen_bool_extremes_and_rates() {
        let mut r = StdRng::seed_from_u64(21);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 hit {hits}/10000");
    }

    #[test]
    fn stdrng_inclusive_range_covers_endpoints() {
        let mut r = StdRng::seed_from_u64(33);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(99);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.next_below(10) as usize] += 1;
        }
        let expected = n / 10;
        for (i, &c) in buckets.iter().enumerate() {
            let dev = (c as i64 - expected as i64).abs() as f64 / expected as f64;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }
}
