//! Directory entry values.

use std::fmt;
use std::sync::Arc;

/// The value half of a directory `(key, value)` entry: an opaque byte string.
///
/// Values are cheap to clone (reference-counted) because the suite's delete
/// operation copies real-predecessor/real-successor values into quorum
/// members that lack them (paper Fig. 13).
///
/// # Examples
///
/// ```
/// use repdir_core::Value;
///
/// let v = Value::from("inode-17");
/// assert_eq!(v.as_bytes(), b"inode-17");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(Arc<[u8]>);

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Self {
        Value(bytes.into())
    }

    /// An empty value.
    pub fn empty() -> Self {
        Value::default()
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is the empty byte string.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "val{s:?}"),
            _ => write!(f, "val<{} bytes>", self.0.len()),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Arc::from(s.as_bytes()))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value(Arc::from(s.into_bytes().into_boxed_slice()))
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value(Arc::from(b))
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value(Arc::from(b.into_boxed_slice()))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Value::from("abc");
        assert_eq!(v.as_bytes(), b"abc");
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!(Value::empty().is_empty());
    }

    #[test]
    fn equality_and_clone_share_bytes() {
        let v = Value::from(vec![1u8, 2, 3]);
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(w.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", Value::from("x")), "val\"x\"");
        let bin = format!("{:?}", Value::from(vec![0u8, 159]));
        assert!(bin.contains("bytes"), "{bin}");
        assert!(!format!("{:?}", Value::empty()).is_empty());
    }
}
