//! Error types for representative and suite operations.
//!
//! The paper's pseudocode elides error responses ("error responses, such as
//! timeouts, are not considered in these examples", §3); a real system cannot,
//! so every failure mode of the algorithm is represented here.

use std::error::Error;
use std::fmt;

use crate::key::Key;

/// Errors returned by operations on a single directory representative
/// (`DirRep*` in the paper's Fig. 6).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepError {
    /// `DirRepCoalesce(l, h, ..)` requires entries (or sentinels) at both
    /// boundaries; `key` had none ("An error is indicated if entries do not
    /// exist for keys l and h", Fig. 6).
    NoSuchBoundary {
        /// The boundary key that had no entry.
        key: Key,
    },
    /// The operation attempted to mutate a sentinel (`LOW`/`HIGH`), or asked
    /// for the predecessor of `LOW` / successor of `HIGH`.
    SentinelViolation {
        /// The offending key.
        key: Key,
        /// The operation that rejected it.
        op: &'static str,
    },
    /// A range operation received boundaries out of order (`l >= h`).
    InvalidRange {
        /// Lower boundary supplied.
        low: Key,
        /// Upper boundary supplied.
        high: Key,
    },
    /// The representative is down, partitioned away, or timed out. Quorum
    /// collection skips such representatives.
    Unavailable,
    /// A lock could not be granted within the deadline (possible deadlock or
    /// long-running conflicting transaction); the caller should abort and
    /// retry.
    LockTimeout,
    /// The lock manager detected that granting the lock would deadlock and
    /// chose this transaction as the victim.
    Deadlock,
    /// The enclosing transaction was already aborted.
    TransactionAborted,
    /// The underlying storage failed (simulated I/O error, crashed disk, …).
    Storage(String),
}

impl fmt::Display for RepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepError::NoSuchBoundary { key } => {
                write!(f, "coalesce boundary {key:?} has no entry")
            }
            RepError::SentinelViolation { key, op } => {
                write!(f, "operation {op} not permitted on sentinel {key:?}")
            }
            RepError::InvalidRange { low, high } => {
                write!(f, "invalid range: {low:?} is not below {high:?}")
            }
            RepError::Unavailable => f.write_str("representative unavailable"),
            RepError::LockTimeout => f.write_str("lock wait timed out"),
            RepError::Deadlock => f.write_str("deadlock detected; transaction chosen as victim"),
            RepError::TransactionAborted => f.write_str("transaction already aborted"),
            RepError::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl Error for RepError {}

/// Which quorum could not be gathered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuorumKind {
    /// A read quorum of `R` votes.
    Read,
    /// A write quorum of `W` votes.
    Write,
}

impl fmt::Display for QuorumKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumKind::Read => f.write_str("read"),
            QuorumKind::Write => f.write_str("write"),
        }
    }
}

/// Errors returned by operations on a directory suite (`DirSuite*` in the
/// paper's §3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SuiteError {
    /// Not enough representatives were reachable to assemble the quorum.
    QuorumUnavailable {
        /// Read or write quorum.
        kind: QuorumKind,
        /// Votes required.
        needed: u32,
        /// Votes actually gathered from reachable representatives.
        gathered: u32,
    },
    /// `insert` found an existing entry for the key (paper Fig. 9
    /// `ReportError`).
    AlreadyExists {
        /// The key that already has an entry.
        key: Key,
    },
    /// `update`/`delete` found no entry for the key.
    NotFound {
        /// The key that has no entry.
        key: Key,
    },
    /// The operation was given a sentinel key; only user keys may be stored.
    SentinelKey {
        /// The offending key.
        key: Key,
    },
    /// A representative operation failed mid-quorum and the suite could not
    /// complete the operation.
    Rep(RepError),
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::QuorumUnavailable {
                kind,
                needed,
                gathered,
            } => write!(
                f,
                "cannot gather {kind} quorum: need {needed} votes, only {gathered} reachable"
            ),
            SuiteError::AlreadyExists { key } => write!(f, "entry already exists for {key:?}"),
            SuiteError::NotFound { key } => write!(f, "no entry for {key:?}"),
            SuiteError::SentinelKey { key } => {
                write!(f, "sentinel {key:?} cannot be used as an entry key")
            }
            SuiteError::Rep(e) => write!(f, "representative operation failed: {e}"),
        }
    }
}

impl Error for SuiteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SuiteError::Rep(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RepError> for SuiteError {
    fn from(e: RepError) -> Self {
        SuiteError::Rep(e)
    }
}

/// Errors constructing a suite configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `R + W` must exceed the total votes so every read quorum intersects
    /// every write quorum (Gifford's rule, §2).
    ReadWriteTooSmall {
        /// Configured read quorum size.
        read: u32,
        /// Configured write quorum size.
        write: u32,
        /// Sum of all representative votes.
        total: u32,
    },
    /// `2W` must exceed the total votes so any two write quorums intersect.
    WriteWriteTooSmall {
        /// Configured write quorum size.
        write: u32,
        /// Sum of all representative votes.
        total: u32,
    },
    /// A suite needs at least one representative with at least one vote.
    NoVotes,
    /// A quorum size of zero is meaningless.
    ZeroQuorum,
    /// The number of representative clients does not match the number of
    /// vote assignments in the configuration.
    MemberCountMismatch {
        /// Representative clients supplied.
        clients: usize,
        /// Vote assignments in the configuration.
        votes: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ReadWriteTooSmall { read, write, total } => write!(
                f,
                "R + W must exceed total votes: {read} + {write} <= {total}"
            ),
            ConfigError::WriteWriteTooSmall { write, total } => {
                write!(f, "2W must exceed total votes: 2*{write} <= {total}")
            }
            ConfigError::NoVotes => f.write_str("suite has no votes assigned"),
            ConfigError::ZeroQuorum => f.write_str("quorum sizes must be at least 1"),
            ConfigError::MemberCountMismatch { clients, votes } => write!(
                f,
                "{clients} representative clients but {votes} vote assignments"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rep_error_display_mentions_key() {
        let e = RepError::NoSuchBoundary {
            key: Key::from("b"),
        };
        assert!(e.to_string().contains('b'));
        let e = RepError::SentinelViolation {
            key: Key::Low,
            op: "insert",
        };
        assert!(e.to_string().contains("insert"));
        assert!(e.to_string().contains("LOW"));
    }

    #[test]
    fn suite_error_wraps_rep_error_with_source() {
        let e = SuiteError::from(RepError::Unavailable);
        assert!(matches!(e, SuiteError::Rep(RepError::Unavailable)));
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("unavailable"));
    }

    #[test]
    fn quorum_unavailable_display() {
        let e = SuiteError::QuorumUnavailable {
            kind: QuorumKind::Write,
            needed: 2,
            gathered: 1,
        };
        let s = e.to_string();
        assert!(s.contains("write"));
        assert!(s.contains('2'));
        assert!(s.contains('1'));
    }

    #[test]
    fn config_errors_display() {
        assert!(ConfigError::ReadWriteTooSmall {
            read: 1,
            write: 1,
            total: 3
        }
        .to_string()
        .contains("R + W"));
        assert!(ConfigError::WriteWriteTooSmall { write: 1, total: 3 }
            .to_string()
            .contains("2W"));
        assert!(!ConfigError::NoVotes.to_string().is_empty());
        assert!(!ConfigError::ZeroQuorum.to_string().is_empty());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RepError>();
        assert_send_sync::<SuiteError>();
        assert_send_sync::<ConfigError>();
    }
}
