//! The gap-versioned directory state held by one representative.
//!
//! This is the paper's central data structure (§2–3): the key space is
//! dynamically partitioned so that **every possible key** has a version
//! number —
//!
//! * each stored entry is a partition by itself, carrying its own version, and
//! * each *gap* (the open range of keys between two adjacent entries, or
//!   between a sentinel and its adjacent entry) is a partition carrying a
//!   single version number.
//!
//! Following the paper's §5 suggestion ("version numbers for gaps could be
//! stored in fields in their bounding entries"), each entry record stores the
//! version of the gap *after* it, and the map stores the version of the first
//! gap (the one after `LOW`) directly.
//!
//! Invariant: a map with `n` entries has exactly `n + 1` gaps, which tile the
//! open intervals between consecutive members of
//! `{LOW} ∪ entries ∪ {HIGH}`.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Bound;

use crate::error::RepError;
use crate::key::{Key, UserKey};
use crate::value::Value;
use crate::version::Version;

/// Reply to a lookup: either the entry's version and value, or the version of
/// the gap that contains the key (paper Fig. 6, `DirRepLookup`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupReply {
    /// An entry exists for the key.
    Present {
        /// The entry's version number.
        version: Version,
        /// The entry's value.
        value: Value,
    },
    /// No entry exists; the key falls in a gap.
    Absent {
        /// The version number of the gap containing the key.
        gap_version: Version,
    },
}

impl LookupReply {
    /// The version associated with the key, whether entry or gap.
    pub fn version(&self) -> Version {
        match self {
            LookupReply::Present { version, .. } => *version,
            LookupReply::Absent { gap_version } => *gap_version,
        }
    }

    /// Whether an entry exists for the key.
    pub fn is_present(&self) -> bool {
        matches!(self, LookupReply::Present { .. })
    }

    /// The entry's value, if present.
    pub fn value(&self) -> Option<&Value> {
        match self {
            LookupReply::Present { value, .. } => Some(value),
            LookupReply::Absent { .. } => None,
        }
    }
}

/// Reply to a predecessor/successor query (paper Fig. 6,
/// `DirRepPredecessor` / `DirRepSuccessor`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborReply {
    /// The neighboring entry's key; may be a sentinel.
    pub key: Key,
    /// The neighboring entry's version ([`Version::ZERO`] for sentinels).
    pub entry_version: Version,
    /// The version of the gap between the queried key and the neighbor.
    pub gap_version: Version,
}

/// Outcome of [`GapMap::insert`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new entry was created, splitting a gap. Both halves of the split gap
    /// retain the old gap's version (§2: "insertion operations split a gap").
    Created {
        /// Version of the gap that was split.
        split_gap_version: Version,
    },
    /// The key already had an entry; its version and value were replaced
    /// (`DirRepInsert` "updates the entry for key x if one already exists",
    /// Fig. 6).
    Updated {
        /// The version the entry had before the update.
        old_version: Version,
        /// The value the entry had before the update.
        old_value: Value,
    },
}

impl InsertOutcome {
    /// Whether the insert created a new entry.
    pub fn created(&self) -> bool {
        matches!(self, InsertOutcome::Created { .. })
    }
}

/// A full record of an entry removed by [`GapMap::coalesce`], sufficient to
/// undo the removal (used by transaction rollback and write-ahead-log
/// recovery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemovedEntry {
    /// The removed entry's key.
    pub key: UserKey,
    /// The removed entry's version.
    pub version: Version,
    /// The removed entry's value.
    pub value: Value,
    /// The version of the gap that followed the removed entry.
    pub gap_after: Version,
}

/// Outcome of [`GapMap::coalesce`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoalesceOutcome {
    /// Entries that were removed (strictly between the boundaries), in key
    /// order. Exposing the full records lets callers compute the paper's
    /// "deletions while coalescing" statistic and lets transactions undo the
    /// operation.
    pub removed: Vec<RemovedEntry>,
    /// The version of the gap immediately after the lower boundary before the
    /// coalesce (needed to undo).
    pub old_gap_version: Version,
}

/// One gap in the partition: the open interval `(lower, upper)` and its
/// version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GapInfo {
    /// Lower bounding key (an entry or `LOW`), exclusive.
    pub lower: Key,
    /// Upper bounding key (an entry or `HIGH`), exclusive.
    pub upper: Key,
    /// The gap's version number.
    pub version: Version,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct EntryRecord {
    version: Version,
    value: Value,
    /// Version of the gap between this entry and its successor.
    gap_after: Version,
}

/// The gap-versioned ordered map held by one directory representative.
///
/// A fresh map has no entries and a single `(LOW, HIGH)` gap with version
/// [`Version::ZERO`].
///
/// # Examples
///
/// Reproducing the paper's Figure 4: inserting `"b"` into the version-0 gap
/// between `"a"` and `"c"` gives `"b"` version 1 = gap version + 1, and both
/// halves of the split gap keep version 0.
///
/// ```
/// use repdir_core::{GapMap, Key, Value, Version};
///
/// let mut rep = GapMap::new();
/// rep.insert(&Key::from("a"), Version::new(1), Value::from("A"))?;
/// rep.insert(&Key::from("c"), Version::new(1), Value::from("C"))?;
///
/// let gap = rep.lookup(&Key::from("b"));
/// assert!(!gap.is_present());
/// assert_eq!(gap.version(), Version::ZERO);
///
/// rep.insert(&Key::from("b"), gap.version().next(), Value::from("B"))?;
/// assert_eq!(rep.lookup(&Key::from("b")).version(), Version::new(1));
/// # Ok::<(), repdir_core::RepError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct GapMap {
    /// Version of the gap immediately after `LOW`.
    low_gap: Version,
    entries: BTreeMap<UserKey, EntryRecord>,
}

impl Default for GapMap {
    fn default() -> Self {
        Self::new()
    }
}

impl GapMap {
    /// Creates an empty map: one `(LOW, HIGH)` gap with version zero.
    pub fn new() -> Self {
        GapMap {
            low_gap: Version::ZERO,
            entries: BTreeMap::new(),
        }
    }

    /// Number of stored entries (sentinels are not counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an entry exists for `key`. Sentinels are always "present".
    pub fn contains(&self, key: &Key) -> bool {
        match key {
            Key::Low | Key::High => true,
            Key::User(u) => self.entries.contains_key(u.as_bytes()),
        }
    }

    /// The version associated with *any* key — the entry's version if an
    /// entry exists, otherwise the containing gap's version. Sentinels report
    /// [`Version::ZERO`].
    ///
    /// This total function over the key space is the paper's core idea: no
    /// key is ever without a version.
    pub fn version_of(&self, key: &Key) -> Version {
        self.lookup(key).version()
    }

    /// `DirRepLookup(x)`: if there is an entry for `x` return its version and
    /// value, otherwise the version of the gap containing `x` (Fig. 6).
    ///
    /// Sentinel keys report `Present` with version zero and an empty value,
    /// so the suite's real-predecessor search terminates at the key-space
    /// edge.
    pub fn lookup(&self, key: &Key) -> LookupReply {
        match key {
            Key::Low | Key::High => LookupReply::Present {
                version: Version::ZERO,
                value: Value::empty(),
            },
            Key::User(u) => match self.entries.get(u.as_bytes()) {
                Some(rec) => LookupReply::Present {
                    version: rec.version,
                    value: rec.value.clone(),
                },
                None => LookupReply::Absent {
                    gap_version: self.gap_version_below(u),
                },
            },
        }
    }

    /// `DirRepPredecessor(x)`: the entry (or `LOW`) with the largest key less
    /// than `x`, its version, and the version of the gap between `x` and that
    /// predecessor (Fig. 6). There need not be an entry for `x`.
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `x` is `LOW` (nothing precedes it).
    pub fn predecessor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        let below: Bound<&[u8]> = match key {
            Key::Low => {
                return Err(RepError::SentinelViolation {
                    key: Key::Low,
                    op: "predecessor",
                })
            }
            Key::User(u) => Bound::Excluded(u.as_bytes()),
            Key::High => Bound::Unbounded,
        };
        match self
            .entries
            .range::<[u8], _>((Bound::Unbounded, below))
            .next_back()
        {
            Some((k, rec)) => Ok(NeighborReply {
                key: Key::User(k.clone()),
                entry_version: rec.version,
                // No entries lie between the predecessor and `x`, so the gap
                // between them is exactly the gap after the predecessor.
                gap_version: rec.gap_after,
            }),
            None => Ok(NeighborReply {
                key: Key::Low,
                entry_version: Version::ZERO,
                gap_version: self.low_gap,
            }),
        }
    }

    /// `DirRepSuccessor(x)`: the entry (or `HIGH`) with the smallest key
    /// greater than `x`, its version, and the version of the gap between `x`
    /// and that successor (Fig. 6).
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `x` is `HIGH`.
    pub fn successor(&self, key: &Key) -> Result<NeighborReply, RepError> {
        let above: Bound<&[u8]> = match key {
            Key::Low => Bound::Unbounded,
            Key::User(u) => Bound::Excluded(u.as_bytes()),
            Key::High => {
                return Err(RepError::SentinelViolation {
                    key: Key::High,
                    op: "successor",
                })
            }
        };
        // The gap between `x` and its successor is the gap just above `x`:
        // the gap after `x`'s entry if `x` is stored, otherwise `x`'s
        // containing gap.
        let gap_version = match key {
            Key::Low => self.low_gap,
            Key::User(u) => match self.entries.get(u.as_bytes()) {
                Some(rec) => rec.gap_after,
                None => self.gap_version_below(u),
            },
            Key::High => unreachable!(),
        };
        match self
            .entries
            .range::<[u8], _>((above, Bound::Unbounded))
            .next()
        {
            Some((k, rec)) => Ok(NeighborReply {
                key: Key::User(k.clone()),
                entry_version: rec.version,
                gap_version,
            }),
            None => Ok(NeighborReply {
                key: Key::High,
                entry_version: Version::ZERO,
                gap_version,
            }),
        }
    }

    /// Up to `limit` *successive* predecessors of `key`: the result of
    /// `DirRepPredecessor(key)`, then of the returned key, and so on,
    /// stopping at `LOW`.
    ///
    /// This is the paper's §4 batching optimization — "if each member of a
    /// read quorum sends the results of three successive DirRepPredecessor
    /// and DirRepSuccessor operations in a single message, the real
    /// predecessor and real successor will often be located using one
    /// remote procedure call to each member of the quorum."
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `key` is `LOW`.
    pub fn predecessor_chain(
        &self,
        key: &Key,
        limit: usize,
    ) -> Result<Vec<NeighborReply>, RepError> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.predecessor(&probe)?;
            let done = nb.key == Key::Low;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// Up to `limit` successive successors of `key`, stopping at `HIGH`
    /// (mirror of [`predecessor_chain`](GapMap::predecessor_chain)).
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `key` is `HIGH`.
    pub fn successor_chain(&self, key: &Key, limit: usize) -> Result<Vec<NeighborReply>, RepError> {
        let mut out = Vec::with_capacity(limit);
        let mut probe = key.clone();
        while out.len() < limit {
            let nb = self.successor(&probe)?;
            let done = nb.key == Key::High;
            probe = nb.key.clone();
            out.push(nb);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// `DirRepInsert(x, v, z)`: creates an entry for `x` with version `v` and
    /// value `z`, or updates the entry if one exists (Fig. 6).
    ///
    /// Creating an entry splits the containing gap; both halves keep the old
    /// gap's version (§2).
    ///
    /// # Errors
    ///
    /// [`RepError::SentinelViolation`] if `x` is a sentinel.
    pub fn insert(
        &mut self,
        key: &Key,
        version: Version,
        value: Value,
    ) -> Result<InsertOutcome, RepError> {
        let u = match key {
            Key::User(u) => u.clone(),
            s => {
                return Err(RepError::SentinelViolation {
                    key: s.clone(),
                    op: "insert",
                })
            }
        };
        if let Some(rec) = self.entries.get_mut(u.as_bytes()) {
            let old_version = rec.version;
            let old_value = std::mem::replace(&mut rec.value, value);
            rec.version = version;
            return Ok(InsertOutcome::Updated {
                old_version,
                old_value,
            });
        }
        let split = self.gap_version_below(&u);
        self.entries.insert(
            u,
            EntryRecord {
                version,
                value,
                gap_after: split,
            },
        );
        Ok(InsertOutcome::Created {
            split_gap_version: split,
        })
    }

    /// `DirRepCoalesce(l, h, v)`: deletes all entries strictly between `l`
    /// and `h` and assigns version `v` to the resulting single gap (Fig. 6).
    ///
    /// # Errors
    ///
    /// * [`RepError::InvalidRange`] if `l >= h`.
    /// * [`RepError::NoSuchBoundary`] if a non-sentinel boundary has no entry
    ///   ("An error is indicated if entries do not exist for keys l and h").
    pub fn coalesce(
        &mut self,
        low: &Key,
        high: &Key,
        version: Version,
    ) -> Result<CoalesceOutcome, RepError> {
        if low >= high {
            return Err(RepError::InvalidRange {
                low: low.clone(),
                high: high.clone(),
            });
        }
        if !self.contains(low) {
            return Err(RepError::NoSuchBoundary { key: low.clone() });
        }
        if !self.contains(high) {
            return Err(RepError::NoSuchBoundary { key: high.clone() });
        }

        let lower_bound: Bound<&[u8]> = match low {
            Key::Low => Bound::Unbounded,
            Key::User(u) => Bound::Excluded(u.as_bytes()),
            Key::High => unreachable!("low < high excludes HIGH"),
        };
        let upper_bound: Bound<&[u8]> = match high {
            Key::High => Bound::Unbounded,
            Key::User(u) => Bound::Excluded(u.as_bytes()),
            Key::Low => unreachable!("low < high excludes LOW"),
        };
        let doomed: Vec<UserKey> = self
            .entries
            .range::<[u8], _>((lower_bound, upper_bound))
            .map(|(k, _)| k.clone())
            .collect();
        let removed: Vec<RemovedEntry> = doomed
            .into_iter()
            .map(|k| {
                let rec = self.entries.remove(k.as_bytes()).expect("key just seen");
                RemovedEntry {
                    key: k,
                    version: rec.version,
                    value: rec.value,
                    gap_after: rec.gap_after,
                }
            })
            .collect();

        let old_gap_version = match low {
            Key::Low => std::mem::replace(&mut self.low_gap, version),
            Key::User(u) => {
                let rec = self
                    .entries
                    .get_mut(u.as_bytes())
                    .expect("boundary checked above");
                std::mem::replace(&mut rec.gap_after, version)
            }
            Key::High => unreachable!(),
        };

        Ok(CoalesceOutcome {
            removed,
            old_gap_version,
        })
    }

    /// Iterates over stored entries in key order as
    /// `(key, version, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&UserKey, Version, &Value)> + '_ {
        self.entries.iter().map(|(k, r)| (k, r.version, &r.value))
    }

    /// Version of the leading gap (between `LOW` and the first entry).
    pub fn low_gap(&self) -> Version {
        self.low_gap
    }

    /// Visits stored entries with byte keys in `[low, high)` in key order as
    /// `(key, version, value, gap_after)`. An unbounded side (`None`) runs
    /// to the corresponding sentinel. Unlike [`iter`](GapMap::iter) this
    /// exposes each entry's trailing-gap version, so range summaries (the
    /// repair subsystem's subtree hashes) cover gap-only divergence too.
    pub fn range_scan(
        &self,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        visit: &mut dyn FnMut(&UserKey, Version, &Value, Version),
    ) {
        let lower = match low {
            Some(b) => Bound::Included(b),
            None => Bound::Unbounded,
        };
        let upper = match high {
            Some(b) => Bound::Excluded(b),
            None => Bound::Unbounded,
        };
        for (k, rec) in self.entries.range::<[u8], _>((lower, upper)) {
            visit(k, rec.version, &rec.value, rec.gap_after);
        }
    }

    /// Iterates over the gaps in key order. A map with `n` entries yields
    /// exactly `n + 1` gaps tiling the key space.
    pub fn gaps(&self) -> impl Iterator<Item = GapInfo> + '_ {
        let firsts = std::iter::once((Key::Low, self.low_gap));
        let rest = self
            .entries
            .iter()
            .map(|(k, r)| (Key::User(k.clone()), r.gap_after));
        let lowers: Vec<(Key, Version)> = firsts.chain(rest).collect();
        let uppers: Vec<Key> = self
            .entries
            .keys()
            .map(|k| Key::User(k.clone()))
            .chain(std::iter::once(Key::High))
            .collect();
        lowers
            .into_iter()
            .zip(uppers)
            .map(|((lower, version), upper)| GapInfo {
                lower,
                upper,
                version,
            })
    }

    /// Checks structural invariants; returns a description of the first
    /// violation. Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let gaps: Vec<GapInfo> = self.gaps().collect();
        if gaps.len() != self.len() + 1 {
            return Err(format!(
                "expected {} gaps for {} entries, found {}",
                self.len() + 1,
                self.len(),
                gaps.len()
            ));
        }
        if gaps.first().map(|g| &g.lower) != Some(&Key::Low) {
            return Err("first gap must start at LOW".into());
        }
        if gaps.last().map(|g| &g.upper) != Some(&Key::High) {
            return Err("last gap must end at HIGH".into());
        }
        for w in gaps.windows(2) {
            if w[0].upper != w[1].lower {
                return Err(format!("gaps not contiguous: {:?} then {:?}", w[0], w[1]));
            }
        }
        for g in &gaps {
            if g.lower >= g.upper {
                return Err(format!("empty or inverted gap {g:?}"));
            }
        }
        Ok(())
    }
}

/// Recovery and undo primitives.
///
/// These bypass the `DirRep*` semantics and are meant for the transaction
/// manager's rollback path and write-ahead-log replay, which must restore a
/// representative to a byte-exact prior state.
impl GapMap {
    /// Reinstates an entry with an exact record, as captured in a
    /// [`RemovedEntry`] or an update's old state. Overwrites any existing
    /// record for the key.
    pub fn restore_entry(
        &mut self,
        key: UserKey,
        version: Version,
        value: Value,
        gap_after: Version,
    ) {
        self.entries.insert(
            key,
            EntryRecord {
                version,
                value,
                gap_after,
            },
        );
    }

    /// Rewrites an entry's version and value, leaving its `gap_after`
    /// untouched (undo of an `Updated` insert, whose gap structure never
    /// changed). Returns `false` if no entry exists for the key.
    pub fn update_entry_raw(&mut self, key: &UserKey, version: Version, value: Value) -> bool {
        match self.entries.get_mut(key.as_bytes()) {
            Some(rec) => {
                rec.version = version;
                rec.value = value;
                true
            }
            None => false,
        }
    }

    /// Removes an entry record outright (undo of a `Created` insert). The
    /// containing gap's version is untouched, which exactly reverses the gap
    /// split. Returns `true` if the entry existed.
    pub fn remove_entry_raw(&mut self, key: &UserKey) -> bool {
        self.entries.remove(key.as_bytes()).is_some()
    }

    /// Sets the version of the gap immediately after `low` (undo of a
    /// coalesce's gap assignment). `low` must be `LOW` or an existing entry.
    ///
    /// # Errors
    ///
    /// [`RepError::NoSuchBoundary`] if `low` is a user key with no entry, or
    /// [`RepError::SentinelViolation`] if `low` is `HIGH`.
    pub fn set_gap_after(&mut self, low: &Key, version: Version) -> Result<(), RepError> {
        match low {
            Key::Low => {
                self.low_gap = version;
                Ok(())
            }
            Key::User(u) => match self.entries.get_mut(u.as_bytes()) {
                Some(rec) => {
                    rec.gap_after = version;
                    Ok(())
                }
                None => Err(RepError::NoSuchBoundary { key: low.clone() }),
            },
            Key::High => Err(RepError::SentinelViolation {
                key: Key::High,
                op: "set_gap_after",
            }),
        }
    }

    /// Version of the gap containing a key that is **not** stored — i.e. the
    /// `gap_after` of the closest entry below it, or the first gap's version.
    fn gap_version_below(&self, u: &UserKey) -> Version {
        self.entries
            .range::<[u8], _>((Bound::Unbounded, Bound::Excluded(u.as_bytes())))
            .next_back()
            .map(|(_, rec)| rec.gap_after)
            .unwrap_or(self.low_gap)
    }
}

impl fmt::Debug for GapMap {
    /// Renders the representative in the style of the paper's figures:
    /// `[LOW |0| "a"(v1) |0| "c"(v1) |0| HIGH]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[LOW |{}|", self.low_gap)?;
        for (k, rec) in &self.entries {
            write!(f, " {k:?}(v{}) |{}|", rec.version, rec.gap_after)?;
        }
        write!(f, " HIGH]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn uk(s: &str) -> UserKey {
        UserKey::from(s)
    }
    fn v(n: u64) -> Version {
        Version::new(n)
    }
    fn val(s: &str) -> Value {
        Value::from(s)
    }

    /// Builds the paper's Figure 1 representative: entries "a" and "c" with
    /// version 1, all gaps version 0.
    fn figure1() -> GapMap {
        let mut m = GapMap::new();
        m.insert(&k("a"), v(1), val("A")).unwrap();
        m.insert(&k("c"), v(1), val("C")).unwrap();
        m
    }

    #[test]
    fn new_map_is_single_gap() {
        let m = GapMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        let gaps: Vec<_> = m.gaps().collect();
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].lower, Key::Low);
        assert_eq!(gaps[0].upper, Key::High);
        assert_eq!(gaps[0].version, Version::ZERO);
        m.check_invariants().unwrap();
    }

    #[test]
    fn lookup_present_and_absent() {
        let m = figure1();
        let a = m.lookup(&k("a"));
        assert!(a.is_present());
        assert_eq!(a.version(), v(1));
        assert_eq!(a.value(), Some(&val("A")));

        let b = m.lookup(&k("b"));
        assert!(!b.is_present());
        assert_eq!(b.version(), v(0));
        assert_eq!(b.value(), None);
    }

    #[test]
    fn sentinels_always_present_with_version_zero() {
        let m = figure1();
        for s in [Key::Low, Key::High] {
            let r = m.lookup(&s);
            assert!(r.is_present());
            assert_eq!(r.version(), Version::ZERO);
        }
        assert!(m.contains(&Key::Low));
        assert!(m.contains(&Key::High));
    }

    #[test]
    fn version_of_is_total_over_key_space() {
        let m = figure1();
        assert_eq!(m.version_of(&Key::Low), v(0));
        assert_eq!(m.version_of(&k("0")), v(0)); // gap (LOW, a)
        assert_eq!(m.version_of(&k("a")), v(1)); // entry
        assert_eq!(m.version_of(&k("b")), v(0)); // gap (a, c)
        assert_eq!(m.version_of(&k("c")), v(1)); // entry
        assert_eq!(m.version_of(&k("zzz")), v(0)); // gap (c, HIGH)
        assert_eq!(m.version_of(&Key::High), v(0));
    }

    #[test]
    fn figure4_insert_splits_gap_keeping_version() {
        // Insert "b" with version = gap version + 1; both halves of the
        // split gap keep version 0 (paper Figure 4).
        let mut m = figure1();
        let gap = m.lookup(&k("b")).version();
        let out = m.insert(&k("b"), gap.next(), val("B")).unwrap();
        assert_eq!(
            out,
            InsertOutcome::Created {
                split_gap_version: v(0)
            }
        );
        assert_eq!(m.version_of(&k("b")), v(1));
        // Gap (a, b) and (b, c) both version 0.
        let gaps: Vec<_> = m.gaps().collect();
        assert_eq!(gaps.len(), 4);
        assert!(gaps.iter().all(|g| g.version == v(0)));
        m.check_invariants().unwrap();
    }

    #[test]
    fn figure5_coalesce_after_delete() {
        // Representative B of Figure 4: a(1), b(1), c(1). Deleting "b"
        // coalesces (a, c) with version 2 (paper Figure 5).
        let mut m = figure1();
        m.insert(&k("b"), v(1), val("B")).unwrap();
        let out = m.coalesce(&k("a"), &k("c"), v(2)).unwrap();
        assert_eq!(out.removed.len(), 1);
        assert_eq!(out.removed[0].key, uk("b"));
        assert_eq!(out.removed[0].version, v(1));
        assert_eq!(out.old_gap_version, v(0));
        assert_eq!(m.version_of(&k("b")), v(2));
        assert!(!m.contains(&k("b")));
        m.check_invariants().unwrap();
    }

    #[test]
    fn coalesce_on_representative_without_entry_assigns_gap() {
        // Representative C of Figure 4 never had "b": coalesce still bumps
        // the (a, c) gap version to 2.
        let mut m = figure1();
        let out = m.coalesce(&k("a"), &k("c"), v(2)).unwrap();
        assert!(out.removed.is_empty());
        assert_eq!(m.version_of(&k("b")), v(2));
    }

    #[test]
    fn update_replaces_version_and_value() {
        let mut m = figure1();
        let out = m.insert(&k("a"), v(5), val("A2")).unwrap();
        assert_eq!(
            out,
            InsertOutcome::Updated {
                old_version: v(1),
                old_value: val("A"),
            }
        );
        assert_eq!(m.lookup(&k("a")).version(), v(5));
        assert_eq!(m.lookup(&k("a")).value(), Some(&val("A2")));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_sentinel_rejected() {
        let mut m = GapMap::new();
        for s in [Key::Low, Key::High] {
            let e = m.insert(&s, v(1), val("x")).unwrap_err();
            assert!(matches!(e, RepError::SentinelViolation { .. }));
        }
    }

    #[test]
    fn predecessor_walks_entries_and_sentinel() {
        let m = figure1();
        let p = m.predecessor(&k("b")).unwrap();
        assert_eq!(p.key, k("a"));
        assert_eq!(p.entry_version, v(1));
        assert_eq!(p.gap_version, v(0));

        // Predecessor of an existing entry is the previous entry.
        let p = m.predecessor(&k("c")).unwrap();
        assert_eq!(p.key, k("a"));

        // Below the first entry, the predecessor is LOW.
        let p = m.predecessor(&k("A")).unwrap();
        assert_eq!(p.key, Key::Low);
        assert_eq!(p.entry_version, Version::ZERO);
        assert_eq!(p.gap_version, v(0));

        // Predecessor of HIGH is the last entry.
        let p = m.predecessor(&Key::High).unwrap();
        assert_eq!(p.key, k("c"));
    }

    #[test]
    fn successor_walks_entries_and_sentinel() {
        let m = figure1();
        let s = m.successor(&k("b")).unwrap();
        assert_eq!(s.key, k("c"));
        assert_eq!(s.entry_version, v(1));
        assert_eq!(s.gap_version, v(0));

        let s = m.successor(&k("a")).unwrap();
        assert_eq!(s.key, k("c"));

        let s = m.successor(&k("zzz")).unwrap();
        assert_eq!(s.key, Key::High);

        let s = m.successor(&Key::Low).unwrap();
        assert_eq!(s.key, k("a"));
        assert_eq!(s.gap_version, v(0));
    }

    #[test]
    fn neighbor_of_wrong_sentinel_rejected() {
        let m = figure1();
        assert!(matches!(
            m.predecessor(&Key::Low),
            Err(RepError::SentinelViolation { .. })
        ));
        assert!(matches!(
            m.successor(&Key::High),
            Err(RepError::SentinelViolation { .. })
        ));
    }

    #[test]
    fn neighbor_gap_versions_distinguish_gaps() {
        // Build: a |7| c |9| e  (distinct gap versions via coalesce).
        let mut m = GapMap::new();
        for key in ["a", "c", "e"] {
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        m.coalesce(&k("a"), &k("c"), v(7)).unwrap();
        m.coalesce(&k("c"), &k("e"), v(9)).unwrap();

        let p = m.predecessor(&k("d")).unwrap();
        assert_eq!(p.key, k("c"));
        assert_eq!(p.gap_version, v(9));

        let s = m.successor(&k("b")).unwrap();
        assert_eq!(s.key, k("c"));
        assert_eq!(s.gap_version, v(7));

        // Successor of an entry: the gap after it.
        let s = m.successor(&k("a")).unwrap();
        assert_eq!(s.gap_version, v(7));
        let s = m.successor(&k("c")).unwrap();
        assert_eq!(s.gap_version, v(9));
    }

    #[test]
    fn predecessor_chain_walks_to_low() {
        let mut m = GapMap::new();
        for key in ["b", "d", "f"] {
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        m.coalesce(&k("b"), &k("d"), v(5)).unwrap();
        let chain = m.predecessor_chain(&k("e"), 10).unwrap();
        let keys: Vec<Key> = chain.iter().map(|n| n.key.clone()).collect();
        assert_eq!(keys, vec![k("d"), k("b"), Key::Low]);
        // Gap versions along the walk: e sits in gap (d, f) = v0; the gap
        // (b, d) was coalesced to v5; (LOW, b) is untouched.
        assert_eq!(chain[0].gap_version, v(0), "gap (d, f) contains e");
        assert_eq!(chain[1].key, k("b"));
        assert_eq!(chain[1].gap_version, v(5), "gap (b, d) was coalesced to 5");
        assert_eq!(chain[2].gap_version, v(0), "gap (LOW, b) untouched");
        // Limit respected.
        assert_eq!(m.predecessor_chain(&k("e"), 2).unwrap().len(), 2);
        // Chain equals repeated single calls.
        let mut probe = k("e");
        for nb in m.predecessor_chain(&k("e"), 10).unwrap() {
            assert_eq!(m.predecessor(&probe).unwrap(), nb);
            probe = nb.key;
        }
    }

    #[test]
    fn successor_chain_walks_to_high() {
        let mut m = GapMap::new();
        for key in ["b", "d"] {
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        let chain = m.successor_chain(&k("a"), 10).unwrap();
        let keys: Vec<Key> = chain.iter().map(|n| n.key.clone()).collect();
        assert_eq!(keys, vec![k("b"), k("d"), Key::High]);
        assert_eq!(m.successor_chain(&Key::Low, 1).unwrap().len(), 1);
        // Chain equals repeated single calls.
        let mut probe = Key::Low;
        for nb in m.successor_chain(&Key::Low, 10).unwrap() {
            assert_eq!(m.successor(&probe).unwrap(), nb);
            probe = nb.key;
        }
        // Sentinel start errors mirror the single-call API.
        assert!(m.predecessor_chain(&Key::Low, 3).is_err());
        assert!(m.successor_chain(&Key::High, 3).is_err());
    }

    #[test]
    fn coalesce_requires_existing_boundaries() {
        let mut m = figure1();
        let e = m.coalesce(&k("b"), &k("c"), v(2)).unwrap_err();
        assert_eq!(e, RepError::NoSuchBoundary { key: k("b") });
        let e = m.coalesce(&k("a"), &k("x"), v(2)).unwrap_err();
        assert_eq!(e, RepError::NoSuchBoundary { key: k("x") });
    }

    #[test]
    fn coalesce_rejects_inverted_range() {
        let mut m = figure1();
        let e = m.coalesce(&k("c"), &k("a"), v(2)).unwrap_err();
        assert!(matches!(e, RepError::InvalidRange { .. }));
        let e = m.coalesce(&k("a"), &k("a"), v(2)).unwrap_err();
        assert!(matches!(e, RepError::InvalidRange { .. }));
        let e = m.coalesce(&Key::High, &Key::Low, v(1)).unwrap_err();
        assert!(matches!(e, RepError::InvalidRange { .. }));
    }

    #[test]
    fn coalesce_with_sentinel_boundaries_empties_map() {
        let mut m = figure1();
        let out = m.coalesce(&Key::Low, &Key::High, v(3)).unwrap();
        assert_eq!(out.removed.len(), 2);
        assert!(m.is_empty());
        assert_eq!(m.version_of(&k("anything")), v(3));
        m.check_invariants().unwrap();
    }

    #[test]
    fn coalesce_removes_multiple_ghosts_in_order() {
        let mut m = GapMap::new();
        for key in ["a", "b", "c", "d", "e"] {
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        let out = m.coalesce(&k("a"), &k("e"), v(4)).unwrap();
        let removed: Vec<_> = out.removed.iter().map(|r| r.key.clone()).collect();
        assert_eq!(removed, vec![uk("b"), uk("c"), uk("d")]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.version_of(&k("c")), v(4));
    }

    #[test]
    fn restore_entry_undoes_coalesce() {
        let mut m = GapMap::new();
        for key in ["a", "b", "c"] {
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        let before = m.clone();
        let out = m.coalesce(&k("a"), &k("c"), v(9)).unwrap();
        // Undo: restore removed entries, then the old gap version.
        for r in out.removed {
            m.restore_entry(r.key, r.version, r.value, r.gap_after);
        }
        m.set_gap_after(&k("a"), out.old_gap_version).unwrap();
        assert_eq!(m, before);
    }

    #[test]
    fn remove_entry_raw_undoes_created_insert() {
        let mut m = figure1();
        let before = m.clone();
        m.insert(&k("b"), v(1), val("B")).unwrap();
        assert!(m.remove_entry_raw(&uk("b")));
        assert_eq!(m, before);
        assert!(!m.remove_entry_raw(&uk("b")));
    }

    #[test]
    fn update_entry_raw_undoes_updated_insert() {
        let mut m = figure1();
        let before = m.clone();
        let out = m.insert(&k("a"), v(9), val("A9")).unwrap();
        let InsertOutcome::Updated {
            old_version,
            old_value,
        } = out
        else {
            panic!("expected update")
        };
        assert!(m.update_entry_raw(&uk("a"), old_version, old_value));
        assert_eq!(m, before);
        assert!(!m.update_entry_raw(&uk("missing"), v(1), val("x")));
    }

    #[test]
    fn set_gap_after_validates_boundary() {
        let mut m = figure1();
        assert!(m.set_gap_after(&Key::Low, v(5)).is_ok());
        assert_eq!(m.version_of(&k("0")), v(5));
        assert!(matches!(
            m.set_gap_after(&k("nope"), v(1)),
            Err(RepError::NoSuchBoundary { .. })
        ));
        assert!(matches!(
            m.set_gap_after(&Key::High, v(1)),
            Err(RepError::SentinelViolation { .. })
        ));
    }

    #[test]
    fn gaps_tile_key_space() {
        let mut m = GapMap::new();
        for key in ["d", "b", "f"] {
            m.insert(&k(key), v(1), val(key)).unwrap();
        }
        let gaps: Vec<_> = m.gaps().collect();
        assert_eq!(gaps.len(), 4);
        assert_eq!(gaps[0].lower, Key::Low);
        assert_eq!(gaps[0].upper, k("b"));
        assert_eq!(gaps[1].lower, k("b"));
        assert_eq!(gaps[1].upper, k("d"));
        assert_eq!(gaps[3].upper, Key::High);
        m.check_invariants().unwrap();
    }

    #[test]
    fn debug_render_matches_paper_style() {
        let m = figure1();
        let s = format!("{m:?}");
        assert!(s.starts_with("[LOW |0|"), "{s}");
        assert!(s.contains("k\"a\"(v1)"), "{s}");
        assert!(s.ends_with("HIGH]"), "{s}");
    }

    #[test]
    fn iter_yields_entries_in_key_order() {
        let mut m = GapMap::new();
        for key in ["m", "a", "z"] {
            m.insert(&k(key), v(2), val(key)).unwrap();
        }
        let keys: Vec<String> = m.iter().map(|(k, _, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
        for (_, ver, _) in m.iter() {
            assert_eq!(ver, v(2));
        }
    }
}
